//! Differential correctness harness: random synthetic graphs pushed
//! through the three allocation policies and the parallel sweep engine,
//! with the independent auditor as the oracle.
//!
//! The invariants checked here are *relative*, so they hold for any
//! graph the generator can produce:
//!
//! * the §3.3 dynamic program never buys less total `ΔR` than greedy
//!   (it is optimal in that objective), and neither policy ever needs
//!   more retiming than caching nothing
//!   (`R_max(policy) ≤ R_max(all-eDRAM)`);
//! * every plan, under every policy, passes the full audit against its
//!   own simulation report;
//! * the sweep engine's worker count is invisible in the results.
//!
//! Note what is deliberately *not* asserted: `R_max(DP) ≤
//! R_max(greedy)`. `R_max` is a longest-path sum of per-edge retiming
//! requirements, while the DP maximizes the *total* reduction `Σ ΔR`
//! (the paper's §3.3 objective) — a larger total can still leave more
//! requirement concentrated on one critical path. Random graphs do
//! produce such cases (e.g. 6 vertices / 7 edges, generator seed 42,
//! 16 PEs: the DP buys `Σ ΔR = 10` at `R_max = 7` while greedy buys
//! `Σ ΔR = 9` at `R_max = 6`).

use proptest::prelude::*;

use paraconv::graph::TaskGraph;
use paraconv::pim::{audit, simulate, PimConfig};
use paraconv::sched::{AllocationPolicy, ParaConvScheduler};
use paraconv::synth::{SynthError, SyntheticSpec};
use paraconv::SweepPoint;

/// Random feasible specs: `v` vertices and `e ∈ [v, 2v]` edges satisfy
/// the connectivity minimum; when the auto-chosen level layout caps the
/// forward-pair count below the target (possible for small `v`), the
/// target is clamped to that maximum.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (4usize..24, 0u64..u64::MAX / 2).prop_flat_map(|(v, seed)| {
        (Just(v), v..=2 * v, Just(seed)).prop_map(|(v, e, seed)| {
            match SyntheticSpec::new("diff", v, e).seed(seed).generate() {
                Ok(g) => g,
                Err(SynthError::TooManyEdges { maximum, .. }) => {
                    SyntheticSpec::new("diff", v, maximum)
                        .seed(seed)
                        .generate()
                        .expect("the generator's own maximum is realizable")
                }
                Err(e) => panic!("v..=2v edge targets should be realizable: {e}"),
            }
        })
    })
}

/// Schedules, simulates and audits under one policy, returning
/// `(R_max, total ΔR profit)`.
fn schedule_audited(graph: &TaskGraph, cfg: &PimConfig, policy: AllocationPolicy) -> (u64, u64) {
    let outcome = ParaConvScheduler::new(cfg.clone())
        .with_policy(policy)
        .schedule(graph, 3)
        .expect("schedules");
    let report = simulate(graph, &outcome.plan, cfg).expect("simulates");
    audit(graph, &outcome.plan, cfg, &report).expect("audits clean");
    (outcome.rmax(), outcome.allocation.total_profit())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn policies_order_by_profit_and_audit_clean(
        g in arb_graph(),
        pes in prop::sample::select(vec![2usize, 4, 16]),
    ) {
        let cfg = PimConfig::neurocube(pes).unwrap();
        let (dp_rmax, dp_profit) = schedule_audited(&g, &cfg, AllocationPolicy::DynamicProgram);
        let (gr_rmax, gr_profit) = schedule_audited(&g, &cfg, AllocationPolicy::GreedyByDensity);
        let (ed_rmax, ed_profit) = schedule_audited(&g, &cfg, AllocationPolicy::AllEdram);
        prop_assert!(
            dp_profit >= gr_profit,
            "DP profit {dp_profit} < greedy {gr_profit}: the DP is not optimal"
        );
        prop_assert_eq!(ed_profit, 0, "all-eDRAM must cache nothing");
        prop_assert!(dp_rmax <= ed_rmax, "DP R_max {} > all-eDRAM {}", dp_rmax, ed_rmax);
        prop_assert!(gr_rmax <= ed_rmax, "greedy R_max {} > all-eDRAM {}", gr_rmax, ed_rmax);
    }
}

#[test]
fn sweep_reports_identical_at_any_job_count() {
    // A mixed bag of graph shapes and policies through the sweep
    // engine: jobs=1 (the sequential path) must reproduce jobs=8
    // byte-for-byte at the report level, with auditing on.
    let cfg = PimConfig::neurocube(8).unwrap();
    let mut points = Vec::new();
    for (i, &bench) in paraconv::experiments::quick_suite()[..3].iter().enumerate() {
        let policy = [
            AllocationPolicy::DynamicProgram,
            AllocationPolicy::GreedyByDensity,
            AllocationPolicy::AllEdram,
        ][i % 3];
        points.push(
            SweepPoint::new(bench, cfg.clone(), 5)
                .with_policy(policy)
                .with_audit(true),
        );
    }
    let sequential = paraconv::sweep::run_all_with(&points, 1).unwrap();
    for jobs in [2, 8] {
        let parallel = paraconv::sweep::run_all_with(&points, jobs).unwrap();
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.report, p.report, "jobs={jobs}");
            assert_eq!(s.outcome.rmax(), p.outcome.rmax(), "jobs={jobs}");
        }
    }
}
