//! Failure injection across crate boundaries: every invalid input is
//! rejected with a typed error, never a panic or a silent wrong
//! answer.

use paraconv::graph::{examples, GraphError, NodeId, OpKind, TaskGraphBuilder};
use paraconv::pim::{simulate, ConfigError, ExecutionPlan, PimConfig, SimError};
use paraconv::synth::{SynthError, SyntheticSpec};
use paraconv::{CoreError, ParaConv};

#[test]
fn cyclic_graph_is_rejected_at_build() {
    let mut b = TaskGraphBuilder::new("cycle");
    let x = b.add_node("x", OpKind::Convolution, 1);
    let y = b.add_node("y", OpKind::Convolution, 1);
    b.add_edge(x, y, 1).expect("forward edge ok");
    b.add_edge(y, x, 1).expect("back edge accepted until build");
    assert!(matches!(b.build(), Err(GraphError::Cycle(_))));
}

#[test]
fn zero_pe_architecture_is_rejected() {
    assert_eq!(
        PimConfig::neurocube(0).unwrap_err(),
        ConfigError::NoProcessingEngines
    );
}

#[test]
fn out_of_band_penalty_is_rejected() {
    for penalty in [0u64, 1, 11, 100] {
        assert!(matches!(
            PimConfig::builder(4).edram_penalty(penalty).build(),
            Err(ConfigError::PenaltyOutOfRange(_))
        ));
    }
}

#[test]
fn zero_cache_still_schedules_correctly() {
    // Zero cache is a *valid* degenerate configuration: everything
    // lives in eDRAM and the plan still validates.
    let config = PimConfig::builder(8)
        .per_pe_cache_units(0)
        .build()
        .expect("zero cache is allowed");
    let result = ParaConv::new(config)
        .run(&examples::fork_join(6), 4)
        .expect("runs with everything off-chip");
    assert_eq!(result.outcome.cached_iprs(), 0);
    assert_eq!(result.report.onchip_hits, 0);
    assert!(result.report.offchip_fetches > 0);
}

#[test]
fn zero_iterations_rejected_everywhere() {
    let runner = ParaConv::new(PimConfig::neurocube(4).expect("valid"));
    let g = examples::chain(2);
    assert!(matches!(runner.run(&g, 0), Err(CoreError::Sched(_))));
    assert!(matches!(
        runner.run_baseline(&g, 0),
        Err(CoreError::Sched(_))
    ));
    assert!(matches!(runner.compare(&g, 0), Err(CoreError::Sched(_))));
}

#[test]
fn empty_plan_for_nonempty_graph_fails_validation() {
    // The simulator accepts an empty plan only for a graph whose tasks
    // are all absent — it validates dependency coverage per planned
    // task, so an empty plan technically passes; but a plan missing
    // the producer while planning the consumer must fail.
    let g = examples::chain(2);
    let config = PimConfig::neurocube(4).expect("valid");
    let mut plan = ExecutionPlan::new(1);
    plan.push_task(paraconv::pim::PlannedTask {
        node: NodeId::new(1),
        iteration: 1,
        pe: paraconv::pim::PeId::new(0),
        start: 10,
        duration: 1,
    });
    assert!(matches!(
        simulate(&g, &plan, &config).unwrap_err(),
        SimError::MissingTransfer(_, _)
    ));
}

#[test]
fn infeasible_synthetic_specs_are_typed_errors() {
    assert!(matches!(
        SyntheticSpec::new("x", 0, 0).generate(),
        Err(SynthError::NoVertices)
    ));
    assert!(matches!(
        SyntheticSpec::new("x", 4, 100).generate(),
        Err(SynthError::TooManyEdges { .. })
    ));
    assert!(matches!(
        SyntheticSpec::new("x", 9, 2).levels(3).generate(),
        Err(SynthError::TooFewEdges { .. })
    ));
}

#[test]
fn core_errors_carry_sources() {
    use std::error::Error as _;
    let runner = ParaConv::new(PimConfig::neurocube(4).expect("valid"));
    let err = runner.run(&examples::chain(2), 0).unwrap_err();
    assert!(err.source().is_some());
    assert!(!err.to_string().is_empty());
}

#[test]
fn graph_shape_errors_from_cnn_partitioning() {
    use paraconv::cnn::{Layer, NetworkBuilder, NetworkError, TensorShape};
    let mut b = NetworkBuilder::new("bad", TensorShape::new(1, 2, 2));
    let err = b
        .add(
            "huge-kernel",
            Layer::Conv {
                out_channels: 1,
                kernel: 7,
                stride: 1,
                padding: 0,
            },
            &[],
        )
        .unwrap_err();
    assert!(matches!(err, NetworkError::Shape(_)));
}
