//! Plan-mutation robustness: take a known-valid Para-CONV plan,
//! corrupt one field at a time, and check the simulator either still
//! accepts the plan (benign mutation) or rejects it with a *typed*
//! error — never a panic, never a silently wrong report.

use paraconv::graph::examples;
use paraconv::pim::{
    simulate, ExecutionPlan, PeId, PimConfig, PlannedTask, PlannedTransfer, SimError,
};
use paraconv::sched::ParaConvScheduler;

fn valid_setup() -> (paraconv::graph::TaskGraph, ExecutionPlan, PimConfig) {
    let graph = examples::motivational();
    let config = PimConfig::builder(4)
        .per_pe_cache_units(1)
        .build()
        .expect("valid");
    let plan = ParaConvScheduler::new(config.clone())
        .schedule(&graph, 6)
        .expect("schedules")
        .plan;
    (graph, plan, config)
}

/// Rebuilds a plan with one task replaced.
fn with_task(plan: &ExecutionPlan, index: usize, task: PlannedTask) -> ExecutionPlan {
    let mut out = ExecutionPlan::new(plan.iterations());
    for (i, t) in plan.tasks().iter().enumerate() {
        out.push_task(if i == index { task } else { *t });
    }
    for x in plan.transfers() {
        out.push_transfer(*x);
    }
    out
}

/// Rebuilds a plan with one transfer replaced.
fn with_transfer(plan: &ExecutionPlan, index: usize, transfer: PlannedTransfer) -> ExecutionPlan {
    let mut out = ExecutionPlan::new(plan.iterations());
    for t in plan.tasks() {
        out.push_task(*t);
    }
    for (i, x) in plan.transfers().iter().enumerate() {
        out.push_transfer(if i == index { transfer } else { *x });
    }
    out
}

#[test]
fn baseline_plan_is_valid() {
    let (graph, plan, config) = valid_setup();
    assert!(simulate(&graph, &plan, &config).is_ok());
}

#[test]
fn shifting_any_task_earlier_is_caught_or_benign() {
    let (graph, plan, config) = valid_setup();
    for (i, task) in plan.tasks().iter().enumerate() {
        if task.start == 0 {
            continue;
        }
        let mut mutated = *task;
        mutated.start -= 1;
        let result = simulate(&graph, &with_task(&plan, i, mutated), &config);
        // Either a typed rejection or (rarely) still valid; the call
        // must not panic and must not mis-report the iteration count.
        if let Ok(report) = result {
            assert_eq!(report.iterations, plan.iterations());
        }
    }
}

#[test]
fn stretching_any_task_duration_is_rejected() {
    let (graph, plan, config) = valid_setup();
    for (i, task) in plan.tasks().iter().enumerate().take(20) {
        let mut mutated = *task;
        mutated.duration += 1;
        let err = simulate(&graph, &with_task(&plan, i, mutated), &config)
            .expect_err("wrong duration must be rejected");
        assert!(matches!(err, SimError::WrongTaskDuration { .. }), "{err}");
    }
}

#[test]
fn rerouting_any_transfer_is_rejected() {
    let (graph, plan, config) = valid_setup();
    for (i, x) in plan.transfers().iter().enumerate().take(20) {
        let mut mutated = *x;
        mutated.dst_pe = PeId::new((x.dst_pe.index() as u32 + 1) % 4);
        let err = simulate(&graph, &with_transfer(&plan, i, mutated), &config)
            .expect_err("misrouted transfer must be rejected");
        assert!(matches!(err, SimError::WrongDestination { .. }), "{err}");
    }
}

#[test]
fn shrinking_any_transfer_is_rejected() {
    let (graph, plan, config) = valid_setup();
    for (i, x) in plan.transfers().iter().enumerate().take(20) {
        if x.duration == 0 {
            continue;
        }
        let mut mutated = *x;
        mutated.duration = 0;
        let err = simulate(&graph, &with_transfer(&plan, i, mutated), &config)
            .expect_err("too-short transfer must be rejected");
        assert!(matches!(err, SimError::TransferTooShort { .. }), "{err}");
    }
}

#[test]
fn dropping_any_transfer_is_rejected() {
    let (graph, plan, config) = valid_setup();
    for skip in 0..plan.transfers().len().min(20) {
        let mut out = ExecutionPlan::new(plan.iterations());
        for t in plan.tasks() {
            out.push_task(*t);
        }
        for (i, x) in plan.transfers().iter().enumerate() {
            if i != skip {
                out.push_transfer(*x);
            }
        }
        let err = simulate(&graph, &out, &config).expect_err("missing transfer");
        assert!(matches!(err, SimError::MissingTransfer(_, _)), "{err}");
    }
}

#[test]
fn dropping_any_task_is_rejected() {
    let (graph, plan, config) = valid_setup();
    for skip in 0..plan.tasks().len().min(20) {
        let mut out = ExecutionPlan::new(plan.iterations());
        for (i, t) in plan.tasks().iter().enumerate() {
            if i != skip {
                out.push_task(*t);
            }
        }
        for x in plan.transfers() {
            out.push_transfer(*x);
        }
        let err = simulate(&graph, &out, &config).expect_err("incomplete plan");
        // Either the producer of some transfer is gone, or the
        // completeness check catches the hole (e.g. for sinks).
        assert!(
            matches!(
                err,
                SimError::MissingProducer(_, _)
                    | SimError::MissingTransfer(_, _)
                    | SimError::MissingTask(_, _)
            ),
            "{err}"
        );
    }
}

#[test]
fn duplicating_entries_is_rejected() {
    let (graph, plan, config) = valid_setup();
    // Duplicate first task.
    let mut dup_task = ExecutionPlan::new(plan.iterations());
    for t in plan.tasks() {
        dup_task.push_task(*t);
    }
    dup_task.push_task(plan.tasks()[0]);
    for x in plan.transfers() {
        dup_task.push_transfer(*x);
    }
    assert!(matches!(
        simulate(&graph, &dup_task, &config).unwrap_err(),
        SimError::DuplicateTask(_, _)
    ));
    // Duplicate first transfer.
    let mut dup_xfer = ExecutionPlan::new(plan.iterations());
    for t in plan.tasks() {
        dup_xfer.push_task(*t);
    }
    for x in plan.transfers() {
        dup_xfer.push_transfer(*x);
    }
    dup_xfer.push_transfer(plan.transfers()[0]);
    assert!(matches!(
        simulate(&graph, &dup_xfer, &config).unwrap_err(),
        SimError::DuplicateTransfer(_, _)
    ));
}
