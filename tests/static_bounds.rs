//! The differential link between the static verifier and the runtime:
//!
//! 1. every experiment harness runs clean with `verify: true`, i.e.
//!    the verifier statically proves every Para-CONV plan the whole
//!    evaluation emits;
//! 2. the verifier's steady-state occupancy bounds dominate the
//!    observability layer's recorded high-water marks
//!    (`sim.*.peak_*` gauges) on every benchmark and every model-zoo
//!    network.
//!
//! The obs recorder is process-global, so every test that records or
//! simulates serializes on one lock.

use std::sync::{Mutex, MutexGuard};

use paraconv::experiments::{ablation, cases, energy, fig5, fig6, scalability};
use paraconv::experiments::{table1, table2, zoo, ExperimentConfig};
use paraconv::synth::benchmarks;
use paraconv::verify::verify_outcome;
use paraconv::{obs, ParaConv};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A small verifying harness configuration: one PE count and few
/// iterations keep the full set of experiment functions fast.
fn verifying_config() -> ExperimentConfig {
    ExperimentConfig {
        pe_counts: vec![16],
        iterations: 8,
        verify: true,
        ..ExperimentConfig::quick()
    }
}

#[test]
fn every_experiment_verifies_statically() {
    let _guard = lock();
    let config = verifying_config();
    let suite = &paraconv::experiments::quick_suite()[..2];
    let bench = suite[0];

    ablation::policies(&config, suite).expect("policies verify");
    ablation::contributions(&config, suite).expect("contributions verify");
    ablation::unrolling(&config, suite).expect("unrolling verifies");
    ablation::penalty_sweep(&config, &bench, &[2, 6]).expect("penalty sweep verifies");
    ablation::cache_sweep(&config, &bench, &[2, 8]).expect("cache sweep verifies");
    cases::run(&config, suite).expect("case census verifies");
    energy::run(&config, suite).expect("energy verifies");
    fig5::run(&config, suite).expect("fig5 verifies");
    fig6::run(&config, suite).expect("fig6 verifies");
    table1::run(&config, suite).expect("table1 verifies");
    table2::run(&config, suite).expect("table2 verifies");
    scalability::pe_sweep(&config, &bench, &[8, 16]).expect("pe sweep verifies");
    scalability::fetch_penalty(&config, suite).expect("fetch penalty verifies");
    zoo::run(&config).expect("model zoo verifies");
}

/// Runs one Para-CONV plan with the recorder on and asserts the static
/// bounds dominate every recorded high-water mark.
fn assert_dominates(name: &str, graph: &paraconv::graph::TaskGraph, pes: usize, iters: u64) {
    let cfg = paraconv::pim::PimConfig::neurocube(pes).expect("valid config");
    obs::reset();
    obs::enable();
    // Para-CONV only: the gauges are max-merged across every simulated
    // plan, and a SPARTA baseline run is not covered by the bounds.
    let result = ParaConv::new(cfg.clone())
        .run(graph, iters)
        .expect("schedulable");
    obs::disable();
    let snapshot = obs::snapshot();

    let report = verify_outcome(graph, &result.outcome, &cfg).expect("plan proves");
    let observed = [
        ("sim.cache.peak_occupancy", report.cache_bound),
        ("sim.fifo.peak_occupancy", report.fifo_bound),
        ("sim.vault.peak_concurrency", report.vault_bound),
    ];
    for (gauge, bound) in observed {
        let high_water = snapshot.gauge(gauge);
        assert!(
            bound >= high_water,
            "{name}: static bound {bound} < observed {gauge} = {high_water}"
        );
    }
    // The simulator's own report must agree with the gauges it drove.
    assert!(report.cache_bound >= result.report.peak_cache_occupancy);
    assert!(report.fifo_bound >= result.report.peak_fifo_occupancy as u64);
    assert!(report.vault_bound >= result.report.peak_vault_concurrency as u64);
}

#[test]
fn static_bounds_dominate_observed_peaks_on_the_suite() {
    let _guard = lock();
    for bench in benchmarks::all() {
        let graph = bench.graph().expect("benchmark generates");
        for iters in [1, 8, 40] {
            assert_dominates(bench.name(), &graph, 16, iters);
        }
    }
}

#[test]
fn static_bounds_dominate_observed_peaks_on_the_zoo() {
    let _guard = lock();
    let zoo = paraconv::cnn::zoo::all().expect("zoo builds");
    for (class, network) in &zoo {
        let graph = paraconv::cnn::partition(network, paraconv::cnn::PartitionConfig::default())
            .expect("network partitions");
        assert_dominates(&format!("{class}/{}", network.name()), &graph, 16, 12);
    }
}
