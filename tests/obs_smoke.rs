//! End-to-end smoke tests for the observability layer: metric
//! determinism across worker counts, JSONL schema, and Chrome
//! trace-event schema (the format Perfetto loads).
//!
//! The recorder's aggregate is process-global, so every test
//! serializes on one lock and starts from `obs::reset()`.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use paraconv::alloc::{sort_by_deadline, AllocItem, IncrementalDp};
use paraconv::graph::EdgeId;
use paraconv::obs;
use paraconv::pim::{plan_chrome_trace, PimConfig};
use paraconv::sweep::{self, SweepPoint};
use paraconv::synth::benchmarks;
use paraconv::ParaConv;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn points() -> Vec<SweepPoint> {
    benchmarks::all()[..3]
        .iter()
        .flat_map(|&b| {
            [8usize, 16]
                .iter()
                .map(move |&pes| SweepPoint::new(b, PimConfig::neurocube(pes).unwrap(), 8))
        })
        .collect()
}

/// A deterministic incremental-DP workload: prime a session, then
/// re-solve two one-item perturbations. Runs single-threaded after
/// the sweep so the session counters (`dp.incremental_hits`,
/// `dp.rows_reused`) land identically in every snapshot.
fn drive_incremental_dp() {
    let items = sort_by_deadline(
        (0..32u32)
            .map(|i| {
                AllocItem::new(
                    EdgeId::new(i),
                    1 + u64::from(i) % 5,
                    u64::from(i) % 7,
                    u64::from(i * 3) % 40,
                )
            })
            .collect(),
    );
    let last = *items.last().unwrap();
    let mut perturbed = items.clone();
    *perturbed.last_mut().unwrap() = AllocItem::new(
        last.edge(),
        last.space(),
        last.delta_r() + 1,
        last.deadline(),
    );
    let mut session = IncrementalDp::new();
    session.resolve(&items, 64);
    session.resolve(&perturbed, 64);
    session.resolve(&items, 64);
}

/// Runs the sweep at one worker count and returns the exported JSONL.
fn sweep_jsonl(jobs: usize) -> String {
    obs::reset();
    obs::enable();
    sweep::compare_all_with(&points(), jobs).unwrap();
    drive_incremental_dp();
    obs::disable();
    let snapshot = obs::snapshot();
    obs::reset();
    snapshot.to_jsonl()
}

#[test]
fn metrics_identical_across_worker_counts() {
    let _guard = lock();
    let sequential = sweep_jsonl(1);
    let parallel = sweep_jsonl(4);
    assert!(!sequential.is_empty());
    // The incremental-DP session and batched-replay counters must be
    // part of the identity comparison, not just the legacy set.
    for name in ["dp.incremental_hits", "dp.rows_reused", "sim.batched_steps"] {
        assert!(
            sequential.contains(name),
            "snapshot covers the `{name}` counter"
        );
    }
    assert_eq!(
        sequential, parallel,
        "merged metrics must not depend on how work was split"
    );
}

#[test]
fn metrics_jsonl_parses_and_matches_schema() {
    let _guard = lock();
    obs::reset();
    obs::enable();
    let runner = ParaConv::new(PimConfig::neurocube(8).unwrap());
    let graph = benchmarks::all()[0].graph().unwrap();
    runner.compare(&graph, 10).unwrap();
    obs::disable();
    let snapshot = obs::snapshot();
    obs::reset();

    let jsonl = snapshot.to_jsonl();
    let mut counters = 0;
    for line in jsonl.lines() {
        let v = serde_json::from_str(line).expect("every metrics line is valid JSON");
        let obj = v.as_object().expect("every line is a JSON object");
        let kind = obj["type"].as_str().expect("`type` is a string");
        assert!(obj["name"].as_str().is_some(), "`name` is a string");
        match kind {
            "counter" => {
                counters += 1;
                assert!(obj["value"].as_u64().is_some(), "counter value is a u64");
            }
            "gauge" => {
                assert!(obj["max"].as_u64().is_some(), "gauge max is a u64");
            }
            "histogram" => {
                for field in ["count", "sum", "min", "max"] {
                    assert!(obj[field].as_u64().is_some(), "histogram `{field}` is u64");
                }
                for bucket in obj["buckets"].as_array().expect("buckets is an array") {
                    let pair = bucket.as_array().expect("bucket is a pair");
                    assert_eq!(pair.len(), 2);
                    assert!(pair[0].as_u64().is_some() && pair[1].as_u64().is_some());
                }
            }
            other => panic!("unknown metric line type `{other}`"),
        }
    }
    assert!(counters > 0, "an instrumented run records counters");
    // The simulator's core counters are present after a real run.
    assert!(snapshot.counter("sim.runs") >= 2);
    assert!(snapshot.counter("sim.tasks") > 0);
    assert!(snapshot.counter("dp.fills") >= 1);
}

#[test]
fn chrome_trace_parses_and_matches_schema() {
    let _guard = lock();
    obs::reset();
    obs::enable();
    let cfg = PimConfig::neurocube(8).unwrap();
    let graph = benchmarks::all()[0].graph().unwrap();
    let result = ParaConv::new(cfg.clone()).run(&graph, 10).unwrap();
    obs::disable();

    let mut trace = plan_chrome_trace(&graph, &result.outcome.plan, &cfg);
    trace.name_process(0, "pipeline");
    trace.push_spans(0, &obs::take_spans());
    obs::reset();
    let json = trace.to_json();

    let v = serde_json::from_str(&json).expect("trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents is an array");
    assert!(!events.is_empty());
    let mut complete = 0;
    let mut metadata = 0;
    for e in events {
        let obj = e.as_object().expect("every event is an object");
        assert!(obj["name"].as_str().is_some());
        assert!(obj["pid"].as_u64().is_some());
        assert!(obj["tid"].as_u64().is_some());
        match obj["ph"].as_str().expect("`ph` is a string") {
            "X" => {
                complete += 1;
                assert!(obj["ts"].as_u64().is_some(), "complete events carry ts");
                assert!(obj["dur"].as_u64().is_some(), "complete events carry dur");
            }
            "M" => metadata += 1,
            other => panic!("unexpected event phase `{other}`"),
        }
    }
    // The plan timeline plus at least the scheduler/simulator spans.
    assert!(complete > result.outcome.plan.tasks().len());
    assert!(metadata >= 3, "process/thread name metadata present");
    // Phase spans from the instrumented pipeline made it in.
    assert!(json.contains("\"sched.kernel\""));
    assert!(json.contains("\"pim.simulate\""));
}

#[test]
fn flight_recorder_captures_scheduler_and_simulator_events() {
    let _guard = lock();
    obs::reset();
    obs::flight_enable(obs::DEFAULT_FLIGHT_CAPACITY);
    let cfg = PimConfig::neurocube(8).unwrap();
    let graph = benchmarks::all()[0].graph().unwrap();
    ParaConv::new(cfg).run(&graph, 10).unwrap();
    obs::flight_disable();
    let events = obs::flight_events();
    obs::flight_reset();
    obs::reset();

    assert!(
        events
            .iter()
            .any(|e| e.cat == "sched" && e.label == "schedule.done"),
        "scheduler completion is on the flight ring"
    );
    assert!(
        events
            .iter()
            .any(|e| e.cat == "sim" && e.label == "replay.done"),
        "simulator completion is on the flight ring"
    );
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "sequence numbers are ordered");
    }
}

#[test]
fn flight_recorder_is_silent_when_disabled() {
    let _guard = lock();
    obs::reset();
    obs::flight_reset();
    let cfg = PimConfig::neurocube(8).unwrap();
    let graph = benchmarks::all()[0].graph().unwrap();
    ParaConv::new(cfg).run(&graph, 10).unwrap();
    assert!(
        obs::flight_events().is_empty(),
        "no events may be recorded while the ring is inactive"
    );
}

#[test]
fn prometheus_exposition_of_a_real_run_passes_the_checker() {
    let _guard = lock();
    obs::reset();
    obs::enable();
    let runner = ParaConv::new(PimConfig::neurocube(8).unwrap());
    let graph = benchmarks::all()[0].graph().unwrap();
    runner.compare(&graph, 10).unwrap();
    obs::disable();
    let snapshot = obs::snapshot();
    obs::reset();

    let text = snapshot.to_prometheus();
    let samples = obs::check_prometheus(&text).expect("exposition is line-format clean");
    assert!(samples > 10, "a real run exports a rich sample set");
    assert!(text.contains("paraconv_sim_runs"));
    assert!(
        text.contains("_quantile{quantile=\"0.99\"}"),
        "histograms surface their p99"
    );
}

#[test]
fn windowed_metrics_track_a_real_latency_histogram() {
    let _guard = lock();
    obs::reset();
    obs::enable();
    let runner = ParaConv::new(PimConfig::neurocube(8).unwrap());
    let graph = benchmarks::all()[0].graph().unwrap();
    runner.compare(&graph, 10).unwrap();
    obs::disable();
    let snapshot = obs::snapshot();
    obs::reset();

    let mut windows = obs::WindowedMetrics::new(100, 8);
    windows.merge_snapshot(50, &snapshot);
    let merged = windows.aggregate_histogram("sim.transfer.latency");
    assert!(
        merged.count() > 0,
        "the simulator records transfer latencies"
    );
    let slo = obs::Slo {
        p99_cycles: merged.max(),
        min_throughput: 0,
    };
    let status = windows.slo_status("sim.transfer.latency", "sim.events", &slo);
    assert!(status.ok(), "a permissive SLO passes: {status}");
    let strict = obs::Slo {
        p99_cycles: 0,
        min_throughput: u64::MAX,
    };
    let status = windows.slo_status("sim.transfer.latency", "sim.events", &strict);
    assert!(!status.ok(), "an impossible SLO is flagged: {status}");
}
