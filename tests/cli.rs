//! Black-box tests for the `paraconv` binary's argument handling.
//!
//! Exit-code contract: usage errors (unknown subcommand, malformed
//! flags, unknown benchmark) print the usage text and exit 2; runtime
//! failures exit 1; success exits 0.

use std::process::{Command, Output};

fn paraconv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paraconv"))
        .args(args)
        .output()
        .expect("binary spawns")
}

fn assert_usage_error(args: &[&str]) {
    let out = paraconv(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} should print usage, got: {stderr}"
    );
}

#[test]
fn no_arguments_is_a_usage_error() {
    assert_usage_error(&[]);
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    assert_usage_error(&["bogus"]);
}

#[test]
fn unknown_option_is_a_usage_error() {
    assert_usage_error(&["run", "cat", "--frobnicate"]);
}

#[test]
fn malformed_numeric_value_is_a_usage_error() {
    assert_usage_error(&["run", "cat", "--pes", "abc"]);
}

#[test]
fn malformed_kill_pe_value_is_a_usage_error() {
    assert_usage_error(&["chaos", "cat", "--kill-pe", "3"]);
    assert_usage_error(&["chaos", "cat", "--kill-pe", "x@9"]);
}

#[test]
fn out_of_range_fault_rate_is_a_usage_error() {
    assert_usage_error(&["chaos", "cat", "--fault-rate", "10001"]);
}

#[test]
fn unknown_benchmark_is_a_usage_error() {
    assert_usage_error(&["run", "no-such-benchmark"]);
}

#[test]
fn list_succeeds() {
    let out = paraconv(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cat"), "list should name the benchmarks");
}

#[test]
fn chaos_json_emits_a_parsable_campaign_summary() {
    let out = paraconv(&[
        "chaos",
        "cat",
        "--seed",
        "42",
        "--fault-rate",
        "100",
        "--iters",
        "5",
        "--pes",
        "8",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value: serde_json::Value =
        serde_json::from_str(&stdout).unwrap_or_else(|e| panic!("bad JSON ({e}): {stdout}"));
    let field = |key: &str| value.get(key).unwrap_or_else(|| panic!("missing {key}"));
    assert_eq!(field("benchmark").as_str(), Some("cat"));
    assert_eq!(field("seed").as_u64(), Some(42));
    assert_eq!(field("fault_rate_bp").as_u64(), Some(100));
    assert_eq!(field("pes").as_u64(), Some(8));
    assert!(field("planned_makespan").as_u64().is_some());
    assert!(field("achieved_makespan").as_u64().is_some());
    assert!(field("failed_pes").as_array().is_some());
}

#[test]
fn chaos_kill_pe_reports_the_degraded_profile() {
    let out = paraconv(&[
        "chaos",
        "cat",
        "--seed",
        "7",
        "--kill-pe",
        "1@0",
        "--iters",
        "5",
        "--pes",
        "8",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let field = |key: &str| value.get(key).unwrap_or_else(|| panic!("missing {key}"));
    assert_eq!(field("replans").as_u64(), Some(1));
    let failed = field("failed_pes").as_array().expect("array").clone();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].as_u64(), Some(1));
    assert_eq!(field("active_pes").as_u64(), Some(7));
}

// ---- plan subcommand exit-code contract -------------------------------

fn plan_tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("paraconv-cli-{}-{name}", std::process::id()))
}

#[test]
fn plan_without_a_verb_is_a_usage_error() {
    assert_usage_error(&["plan"]);
}

#[test]
fn plan_with_an_unknown_verb_is_a_usage_error() {
    assert_usage_error(&["plan", "bogus"]);
}

#[test]
fn plan_export_without_a_target_is_a_usage_error() {
    assert_usage_error(&["plan", "export"]);
}

#[test]
fn plan_export_name_and_all_conflict_as_a_usage_error() {
    assert_usage_error(&["plan", "export", "cat", "--all"]);
}

#[test]
fn plan_flag_without_a_value_is_a_usage_error() {
    assert_usage_error(&["plan", "export", "cat", "--out"]);
    assert_usage_error(&["plan", "import", "--key"]);
    assert_usage_error(&["plan", "export", "cat", "--pes", "abc"]);
}

#[test]
fn plan_diff_needs_exactly_two_files() {
    assert_usage_error(&["plan", "diff", "only-one.plan"]);
    assert_usage_error(&["plan", "diff", "a.plan", "b.plan", "c.plan"]);
}

#[test]
fn plan_import_of_a_missing_file_is_a_runtime_error() {
    let out = paraconv(&["plan", "import", "/nonexistent/never.plan"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("usage:"), "runtime errors skip usage text");
}

#[test]
fn plan_import_of_a_corrupt_file_is_a_runtime_error() {
    let path = plan_tmp("corrupt.plan");
    std::fs::write(&path, b"this is not a plan artifact\n").expect("write fixture");
    let out = paraconv(&["plan", "import", path.to_str().expect("utf-8 path")]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("import rejected"),
        "typed rejection expected, got: {stderr}"
    );
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn plan_export_import_diff_round_trip_succeeds() {
    let exported = plan_tmp("cat.plan");
    let reexported = plan_tmp("cat2.plan");
    let out = paraconv(&[
        "plan",
        "export",
        "cat",
        "--iters",
        "8",
        "--out",
        exported.to_str().expect("utf-8 path"),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "export failed: {stderr}");

    let out = paraconv(&[
        "plan",
        "import",
        exported.to_str().expect("utf-8 path"),
        "--out",
        reexported.to_str().expect("utf-8 path"),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "import failed: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("verifier gate: PROVED"),
        "gate must report: {stdout}"
    );
    assert_eq!(
        std::fs::read(&exported).expect("exported bytes"),
        std::fs::read(&reexported).expect("re-exported bytes"),
        "round trip must be byte-identical"
    );

    let out = paraconv(&[
        "plan",
        "diff",
        exported.to_str().expect("utf-8 path"),
        reexported.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("identical"), "diff says: {stdout}");
    std::fs::remove_file(&exported).expect("cleanup");
    std::fs::remove_file(&reexported).expect("cleanup");
}

#[test]
fn plan_diff_of_differing_plans_is_a_runtime_error() {
    let a = plan_tmp("diff-a.plan");
    let b = plan_tmp("diff-b.plan");
    for (path, bench) in [(&a, "cat"), (&b, "car")] {
        let out = paraconv(&[
            "plan",
            "export",
            bench,
            "--iters",
            "8",
            "--out",
            path.to_str().expect("utf-8 path"),
        ]);
        assert_eq!(out.status.code(), Some(0));
    }
    let out = paraconv(&[
        "plan",
        "diff",
        a.to_str().expect("utf-8 path"),
        b.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(1), "differing plans exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("differ"), "diff names sections: {stderr}");
    std::fs::remove_file(&a).expect("cleanup");
    std::fs::remove_file(&b).expect("cleanup");
}

// ---- flight recorder & postmortem -------------------------------------

/// A chaos campaign that kills every PE: recovery is impossible, so
/// the run must die and dump the flight recorder.
fn killed_campaign(dump: &std::path::Path, jobs: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paraconv"))
        .env("PARACONV_JOBS", jobs)
        .args([
            "chaos",
            "cat",
            "--seed",
            "7",
            "--fault-rate",
            "100",
            "--pes",
            "8",
            "--iters",
            "5",
            "--kill-pe",
            "0@5",
            "--kill-pe",
            "1@10",
            "--kill-pe",
            "2@15",
            "--kill-pe",
            "3@20",
            "--kill-pe",
            "4@25",
            "--kill-pe",
            "5@30",
            "--kill-pe",
            "6@35",
            "--kill-pe",
            "7@40",
            "--postmortem",
            dump.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary spawns")
}

#[test]
fn a_killed_campaign_dumps_a_renderable_postmortem() {
    let dump = plan_tmp("killed.postmortem");
    let out = killed_campaign(&dump, "1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "a dead campaign exits 1");
    assert!(
        stderr.contains("postmortem dumped to"),
        "failure names the dump: {stderr}"
    );

    let out = paraconv(&["postmortem", dump.to_str().expect("utf-8 path")]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "dump renders: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "reason:",
        "flight recorder",
        "pe.fail_stop",
        "chaos",
        "replan",
        "metrics at failure:",
        "benchmark",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in: {stdout}");
    }
    std::fs::remove_file(&dump).expect("cleanup");
}

#[test]
fn postmortem_bytes_are_identical_across_worker_counts() {
    let mut dumps = Vec::new();
    for jobs in ["1", "2", "8"] {
        let dump = plan_tmp(&format!("identity-j{jobs}.postmortem"));
        let out = killed_campaign(&dump, jobs);
        assert_eq!(out.status.code(), Some(1));
        dumps.push(std::fs::read(&dump).expect("dump written"));
        std::fs::remove_file(&dump).expect("cleanup");
    }
    assert_eq!(dumps[0], dumps[1], "jobs=1 and jobs=2 dumps differ");
    assert_eq!(dumps[0], dumps[2], "jobs=1 and jobs=8 dumps differ");
}

#[test]
fn postmortem_usage_and_rejection_contract() {
    assert_usage_error(&["postmortem"]);
    assert_usage_error(&["postmortem", "a", "b"]);

    let out = paraconv(&["postmortem", "/nonexistent/never.postmortem"]);
    assert_eq!(out.status.code(), Some(1));

    let path = plan_tmp("corrupt.postmortem");
    std::fs::write(&path, b"not a postmortem\n").expect("write fixture");
    let out = paraconv(&["postmortem", path.to_str().expect("utf-8 path")]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("postmortem rejected"),
        "typed rejection expected, got: {stderr}"
    );
    std::fs::remove_file(&path).expect("cleanup");
}

// ---- logical-clock trace identity -------------------------------------

/// Exports a trace under `PARACONV_LOGICAL_TIME=1` and returns its
/// bytes. Span timestamps come from a process-local sequence, so two
/// identical invocations must serialize identical files.
fn logical_trace(path: &std::path::Path) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_paraconv"))
        .env("PARACONV_LOGICAL_TIME", "1")
        .args([
            "run",
            "cat",
            "--pes",
            "8",
            "--iters",
            "5",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary spawns");
    assert_eq!(out.status.code(), Some(0));
    let bytes = std::fs::read(path).expect("trace written");
    std::fs::remove_file(path).expect("cleanup");
    bytes
}

#[test]
fn logical_time_traces_are_byte_identical() {
    let a = logical_trace(&plan_tmp("logical-a.json"));
    let b = logical_trace(&plan_tmp("logical-b.json"));
    assert!(!a.is_empty());
    assert_eq!(a, b, "logical-clock spans must not depend on wallclock");
}

// ---- bench trajectory analyzer ----------------------------------------

fn bench_fixture(dir: &std::path::Path, id: u64, tasks: f64) {
    let text = format!(
        "{{\"bench_id\": {id},
          \"simulate\": {{\"planned_tasks_per_sec\": {tasks}}},
          \"dp\": {{\"fills_per_sec\": 500.0, \"workload\": \"cold\"}},
          \"sweep\": {{\"speedup\": 1.5}}}}\n"
    );
    std::fs::write(dir.join(format!("BENCH_{id}.json")), text).expect("write fixture");
}

#[test]
fn bench_report_gates_the_final_step() {
    let dir = plan_tmp("bench-series");
    std::fs::create_dir_all(&dir).expect("mkdir");
    bench_fixture(&dir, 1, 1000.0);
    bench_fixture(&dir, 2, 950.0);
    let out = paraconv(&["bench", "report", "--dir", dir.to_str().expect("utf-8")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "a 5% dip is in tolerance");
    assert!(stdout.contains("no regressions"), "got: {stdout}");

    bench_fixture(&dir, 3, 700.0);
    let out = paraconv(&["bench", "report", "--dir", dir.to_str().expect("utf-8")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "a 26% drop regresses");
    assert!(
        stdout.contains("REGRESSED simulate.planned_tasks_per_sec"),
        "got: {stdout}"
    );

    // A looser tolerance waves the same series through.
    let out = paraconv(&[
        "bench",
        "report",
        "--dir",
        dir.to_str().expect("utf-8"),
        "--tolerance-bp",
        "5000",
    ]);
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn bench_diff_compares_two_reports() {
    let dir = plan_tmp("bench-diff");
    std::fs::create_dir_all(&dir).expect("mkdir");
    bench_fixture(&dir, 1, 1000.0);
    bench_fixture(&dir, 2, 400.0);
    let a = dir.join("BENCH_1.json");
    let b = dir.join("BENCH_2.json");
    let out = paraconv(&[
        "bench",
        "diff",
        a.to_str().expect("utf-8"),
        b.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(1), "a 60% drop regresses");
    let out = paraconv(&[
        "bench",
        "diff",
        b.to_str().expect("utf-8"),
        a.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(0), "an improvement passes");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn bench_usage_contract() {
    assert_usage_error(&["bench"]);
    assert_usage_error(&["bench", "bogus"]);
    assert_usage_error(&["bench", "diff", "only-one.json"]);
    assert_usage_error(&["bench", "report", "--tolerance-bp", "99999"]);
    assert_usage_error(&["bench", "report", "stray-positional"]);
}

// ---- artifact format checkers -----------------------------------------

#[test]
fn check_validates_real_exports_and_rejects_garbage() {
    let trace = plan_tmp("check.trace.json");
    let metrics = plan_tmp("check.metrics.jsonl");
    let out = paraconv(&[
        "run",
        "cat",
        "--pes",
        "8",
        "--iters",
        "5",
        "--trace",
        trace.to_str().expect("utf-8"),
        "--metrics",
        metrics.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(0));

    let out = paraconv(&["check", "trace", trace.to_str().expect("utf-8")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "trace validates: {stdout}");
    assert!(stdout.contains("trace event(s) OK"));

    let out = paraconv(&["check", "metrics", metrics.to_str().expect("utf-8")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "metrics validate: {stdout}");
    assert!(stdout.contains("metric line(s) OK"));

    // Kind confusion is caught: a metrics JSONL is not a trace.
    let out = paraconv(&["check", "trace", metrics.to_str().expect("utf-8")]);
    assert_eq!(out.status.code(), Some(1));

    let garbage = plan_tmp("check.garbage");
    std::fs::write(&garbage, b"{\"not\": \"a metric\"}\n").expect("write fixture");
    for kind in ["trace", "metrics", "prom"] {
        let out = paraconv(&["check", kind, garbage.to_str().expect("utf-8")]);
        assert_eq!(out.status.code(), Some(1), "garbage fails `check {kind}`");
    }
    for path in [&trace, &metrics, &garbage] {
        std::fs::remove_file(path).expect("cleanup");
    }
}

#[test]
fn check_usage_contract() {
    assert_usage_error(&["check"]);
    assert_usage_error(&["check", "trace"]);
    assert_usage_error(&["check", "bogus", "file.json"]);
}

// ---- stats flags -------------------------------------------------------

#[test]
fn stats_prom_emits_a_checkable_exposition() {
    let out = paraconv(&["stats", "cat", "--pes", "8", "--iters", "5", "--prom"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# TYPE paraconv_sim_runs counter"));
    assert!(stdout.contains("_quantile{quantile=\"0.99\"}"));
}

#[test]
fn stats_watch_refreshes_and_terminates() {
    let out = paraconv(&["stats", "cat", "--pes", "8", "--iters", "5", "--watch", "2"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\u{1b}[2J"),
        "refresh clears the screen between rounds"
    );
    assert_usage_error(&["stats", "cat", "--watch", "0"]);
    assert_usage_error(&["stats", "cat", "--watch", "abc"]);
}

// ---- analyze (concurrency model checking) ------------------------------

#[test]
fn analyze_list_names_every_harness_with_its_kind() {
    let out = paraconv(&["analyze", "--list"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "obs-merge",
        "flight-ring",
        "registry-put-same-key",
        "sweep-pool",
        "publish-acquire",
    ] {
        assert!(stdout.contains(name), "missing harness `{name}`: {stdout}");
    }
    assert!(stdout.contains("seeded"), "seeded fixtures labelled");
    assert!(stdout.contains("passing"), "passing harnesses labelled");
}

#[test]
fn analyze_passing_harness_exits_clean_and_reports_coverage() {
    let out = paraconv(&["analyze", "publish-acquire"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok   publish-acquire"), "got: {stdout}");
    assert!(stdout.contains("state space exhausted"), "got: {stdout}");
}

#[test]
fn analyze_seeded_fixture_exits_one_with_a_replayable_schedule() {
    let out = paraconv(&["analyze", "publish-relaxed"]);
    assert_eq!(out.status.code(), Some(1), "seeded bug must fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL publish-relaxed"), "got: {stdout}");
    assert!(stdout.contains("schedule:"), "seed printed: {stdout}");
    assert!(stdout.contains("interleaving:"), "trace printed: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed model checking"),
        "summary on stderr: {stderr}"
    );
}

#[test]
fn analyze_json_emits_a_parsable_report_per_harness() {
    let out = paraconv(&["analyze", "--json", "publish-acquire", "publish-relaxed"]);
    assert_eq!(out.status.code(), Some(1), "one seeded failure selected");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value: serde_json::Value =
        serde_json::from_str(&stdout).unwrap_or_else(|e| panic!("bad JSON ({e}): {stdout}"));
    let reports = value.as_array().expect("top-level array");
    assert_eq!(reports.len(), 2);
    let field = |i: usize, key: &str| {
        reports[i]
            .get(key)
            .unwrap_or_else(|| panic!("report {i} missing {key}"))
    };
    assert_eq!(field(0, "harness").as_str(), Some("publish-acquire"));
    assert_eq!(field(0, "ok").as_bool(), Some(true));
    assert_eq!(field(0, "complete").as_bool(), Some(true));
    assert!(field(0, "schedules").as_u64().is_some());
    assert_eq!(field(1, "harness").as_str(), Some("publish-relaxed"));
    assert_eq!(field(1, "ok").as_bool(), Some(false));
    assert!(field(1, "schedule").as_str().is_some());
    assert!(!field(1, "trace").as_array().unwrap().is_empty());
}

#[test]
fn analyze_rejects_malformed_invocations() {
    assert_usage_error(&["analyze", "--schedules", "x"]);
    assert_usage_error(&["analyze", "--schedules", "0"]);
    assert_usage_error(&["analyze", "--preemptions"]);
    assert_usage_error(&["analyze", "--bogus-flag"]);
    assert_usage_error(&["analyze", "no-such-harness"]);
}
