//! Black-box tests for the `paraconv` binary's argument handling.
//!
//! Exit-code contract: usage errors (unknown subcommand, malformed
//! flags, unknown benchmark) print the usage text and exit 2; runtime
//! failures exit 1; success exits 0.

use std::process::{Command, Output};

fn paraconv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paraconv"))
        .args(args)
        .output()
        .expect("binary spawns")
}

fn assert_usage_error(args: &[&str]) {
    let out = paraconv(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} should print usage, got: {stderr}"
    );
}

#[test]
fn no_arguments_is_a_usage_error() {
    assert_usage_error(&[]);
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    assert_usage_error(&["bogus"]);
}

#[test]
fn unknown_option_is_a_usage_error() {
    assert_usage_error(&["run", "cat", "--frobnicate"]);
}

#[test]
fn malformed_numeric_value_is_a_usage_error() {
    assert_usage_error(&["run", "cat", "--pes", "abc"]);
}

#[test]
fn malformed_kill_pe_value_is_a_usage_error() {
    assert_usage_error(&["chaos", "cat", "--kill-pe", "3"]);
    assert_usage_error(&["chaos", "cat", "--kill-pe", "x@9"]);
}

#[test]
fn out_of_range_fault_rate_is_a_usage_error() {
    assert_usage_error(&["chaos", "cat", "--fault-rate", "10001"]);
}

#[test]
fn unknown_benchmark_is_a_usage_error() {
    assert_usage_error(&["run", "no-such-benchmark"]);
}

#[test]
fn list_succeeds() {
    let out = paraconv(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cat"), "list should name the benchmarks");
}

#[test]
fn chaos_json_emits_a_parsable_campaign_summary() {
    let out = paraconv(&[
        "chaos",
        "cat",
        "--seed",
        "42",
        "--fault-rate",
        "100",
        "--iters",
        "5",
        "--pes",
        "8",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value: serde_json::Value =
        serde_json::from_str(&stdout).unwrap_or_else(|e| panic!("bad JSON ({e}): {stdout}"));
    let field = |key: &str| value.get(key).unwrap_or_else(|| panic!("missing {key}"));
    assert_eq!(field("benchmark").as_str(), Some("cat"));
    assert_eq!(field("seed").as_u64(), Some(42));
    assert_eq!(field("fault_rate_bp").as_u64(), Some(100));
    assert_eq!(field("pes").as_u64(), Some(8));
    assert!(field("planned_makespan").as_u64().is_some());
    assert!(field("achieved_makespan").as_u64().is_some());
    assert!(field("failed_pes").as_array().is_some());
}

#[test]
fn chaos_kill_pe_reports_the_degraded_profile() {
    let out = paraconv(&[
        "chaos",
        "cat",
        "--seed",
        "7",
        "--kill-pe",
        "1@0",
        "--iters",
        "5",
        "--pes",
        "8",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let field = |key: &str| value.get(key).unwrap_or_else(|| panic!("missing {key}"));
    assert_eq!(field("replans").as_u64(), Some(1));
    let failed = field("failed_pes").as_array().expect("array").clone();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].as_u64(), Some(1));
    assert_eq!(field("active_pes").as_u64(), Some(7));
}
