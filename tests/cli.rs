//! Black-box tests for the `paraconv` binary's argument handling.
//!
//! Exit-code contract: usage errors (unknown subcommand, malformed
//! flags, unknown benchmark) print the usage text and exit 2; runtime
//! failures exit 1; success exits 0.

use std::process::{Command, Output};

fn paraconv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paraconv"))
        .args(args)
        .output()
        .expect("binary spawns")
}

fn assert_usage_error(args: &[&str]) {
    let out = paraconv(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} should print usage, got: {stderr}"
    );
}

#[test]
fn no_arguments_is_a_usage_error() {
    assert_usage_error(&[]);
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    assert_usage_error(&["bogus"]);
}

#[test]
fn unknown_option_is_a_usage_error() {
    assert_usage_error(&["run", "cat", "--frobnicate"]);
}

#[test]
fn malformed_numeric_value_is_a_usage_error() {
    assert_usage_error(&["run", "cat", "--pes", "abc"]);
}

#[test]
fn malformed_kill_pe_value_is_a_usage_error() {
    assert_usage_error(&["chaos", "cat", "--kill-pe", "3"]);
    assert_usage_error(&["chaos", "cat", "--kill-pe", "x@9"]);
}

#[test]
fn out_of_range_fault_rate_is_a_usage_error() {
    assert_usage_error(&["chaos", "cat", "--fault-rate", "10001"]);
}

#[test]
fn unknown_benchmark_is_a_usage_error() {
    assert_usage_error(&["run", "no-such-benchmark"]);
}

#[test]
fn list_succeeds() {
    let out = paraconv(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cat"), "list should name the benchmarks");
}

#[test]
fn chaos_json_emits_a_parsable_campaign_summary() {
    let out = paraconv(&[
        "chaos",
        "cat",
        "--seed",
        "42",
        "--fault-rate",
        "100",
        "--iters",
        "5",
        "--pes",
        "8",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value: serde_json::Value =
        serde_json::from_str(&stdout).unwrap_or_else(|e| panic!("bad JSON ({e}): {stdout}"));
    let field = |key: &str| value.get(key).unwrap_or_else(|| panic!("missing {key}"));
    assert_eq!(field("benchmark").as_str(), Some("cat"));
    assert_eq!(field("seed").as_u64(), Some(42));
    assert_eq!(field("fault_rate_bp").as_u64(), Some(100));
    assert_eq!(field("pes").as_u64(), Some(8));
    assert!(field("planned_makespan").as_u64().is_some());
    assert!(field("achieved_makespan").as_u64().is_some());
    assert!(field("failed_pes").as_array().is_some());
}

#[test]
fn chaos_kill_pe_reports_the_degraded_profile() {
    let out = paraconv(&[
        "chaos",
        "cat",
        "--seed",
        "7",
        "--kill-pe",
        "1@0",
        "--iters",
        "5",
        "--pes",
        "8",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let field = |key: &str| value.get(key).unwrap_or_else(|| panic!("missing {key}"));
    assert_eq!(field("replans").as_u64(), Some(1));
    let failed = field("failed_pes").as_array().expect("array").clone();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].as_u64(), Some(1));
    assert_eq!(field("active_pes").as_u64(), Some(7));
}

// ---- plan subcommand exit-code contract -------------------------------

fn plan_tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("paraconv-cli-{}-{name}", std::process::id()))
}

#[test]
fn plan_without_a_verb_is_a_usage_error() {
    assert_usage_error(&["plan"]);
}

#[test]
fn plan_with_an_unknown_verb_is_a_usage_error() {
    assert_usage_error(&["plan", "bogus"]);
}

#[test]
fn plan_export_without_a_target_is_a_usage_error() {
    assert_usage_error(&["plan", "export"]);
}

#[test]
fn plan_export_name_and_all_conflict_as_a_usage_error() {
    assert_usage_error(&["plan", "export", "cat", "--all"]);
}

#[test]
fn plan_flag_without_a_value_is_a_usage_error() {
    assert_usage_error(&["plan", "export", "cat", "--out"]);
    assert_usage_error(&["plan", "import", "--key"]);
    assert_usage_error(&["plan", "export", "cat", "--pes", "abc"]);
}

#[test]
fn plan_diff_needs_exactly_two_files() {
    assert_usage_error(&["plan", "diff", "only-one.plan"]);
    assert_usage_error(&["plan", "diff", "a.plan", "b.plan", "c.plan"]);
}

#[test]
fn plan_import_of_a_missing_file_is_a_runtime_error() {
    let out = paraconv(&["plan", "import", "/nonexistent/never.plan"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("usage:"), "runtime errors skip usage text");
}

#[test]
fn plan_import_of_a_corrupt_file_is_a_runtime_error() {
    let path = plan_tmp("corrupt.plan");
    std::fs::write(&path, b"this is not a plan artifact\n").expect("write fixture");
    let out = paraconv(&["plan", "import", path.to_str().expect("utf-8 path")]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("import rejected"),
        "typed rejection expected, got: {stderr}"
    );
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn plan_export_import_diff_round_trip_succeeds() {
    let exported = plan_tmp("cat.plan");
    let reexported = plan_tmp("cat2.plan");
    let out = paraconv(&[
        "plan",
        "export",
        "cat",
        "--iters",
        "8",
        "--out",
        exported.to_str().expect("utf-8 path"),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "export failed: {stderr}");

    let out = paraconv(&[
        "plan",
        "import",
        exported.to_str().expect("utf-8 path"),
        "--out",
        reexported.to_str().expect("utf-8 path"),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "import failed: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("verifier gate: PROVED"),
        "gate must report: {stdout}"
    );
    assert_eq!(
        std::fs::read(&exported).expect("exported bytes"),
        std::fs::read(&reexported).expect("re-exported bytes"),
        "round trip must be byte-identical"
    );

    let out = paraconv(&[
        "plan",
        "diff",
        exported.to_str().expect("utf-8 path"),
        reexported.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("identical"), "diff says: {stdout}");
    std::fs::remove_file(&exported).expect("cleanup");
    std::fs::remove_file(&reexported).expect("cleanup");
}

#[test]
fn plan_diff_of_differing_plans_is_a_runtime_error() {
    let a = plan_tmp("diff-a.plan");
    let b = plan_tmp("diff-b.plan");
    for (path, bench) in [(&a, "cat"), (&b, "car")] {
        let out = paraconv(&[
            "plan",
            "export",
            bench,
            "--iters",
            "8",
            "--out",
            path.to_str().expect("utf-8 path"),
        ]);
        assert_eq!(out.status.code(), Some(0));
    }
    let out = paraconv(&[
        "plan",
        "diff",
        a.to_str().expect("utf-8 path"),
        b.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(1), "differing plans exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("differ"), "diff names sections: {stderr}");
    std::fs::remove_file(&a).expect("cleanup");
    std::fs::remove_file(&b).expect("cleanup");
}
