//! Cross-crate integration: the full pipeline from CNN description or
//! synthetic benchmark through scheduling to validated simulation.

use paraconv::cnn::{googlenet, partition, PartitionConfig};
use paraconv::pim::{simulate, PimConfig};
use paraconv::synth::{benchmarks, SyntheticSpec};
use paraconv::ParaConv;

#[test]
fn googlenet_to_simulation() {
    let network = googlenet(2).expect("network builds");
    let graph = partition(&network, PartitionConfig::default()).expect("partition succeeds");
    let config = PimConfig::neurocube(32).expect("preset is valid");
    let runner = ParaConv::new(config);
    let result = runner.run(&graph, 12).expect("pipeline completes");
    assert_eq!(result.report.iterations, 12);
    assert!(result.report.avg_pe_utilization > 0.0);
    // The inception branches give real parallelism to exploit.
    assert!(graph.max_width() >= 4);
}

#[test]
fn every_benchmark_schedules_and_validates_on_16_pes() {
    let config = PimConfig::neurocube(16).expect("preset is valid");
    for bench in benchmarks::all() {
        let graph = bench.graph().expect("benchmark generates");
        let runner = ParaConv::new(config.clone());
        let cmp = runner.compare(&graph, 5).expect("both schedulers run");
        assert_eq!(cmp.paraconv.report.iterations, 5, "{}", bench.name());
        assert_eq!(cmp.sparta.report.iterations, 5, "{}", bench.name());
        assert!(
            cmp.paraconv.report.peak_cache_occupancy <= cmp.paraconv.report.cache_capacity,
            "{}",
            bench.name()
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let bench = benchmarks::by_name("flower").expect("benchmark exists");
    let run = || {
        let graph = bench.graph().expect("benchmark generates");
        let runner = ParaConv::new(PimConfig::neurocube(32).expect("preset is valid"));
        let result = runner.run(&graph, 10).expect("pipeline completes");
        (
            result.report.total_time,
            result.outcome.rmax(),
            result.outcome.cached_iprs(),
            result.report.offchip_fetches,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn custom_synthetic_spec_through_pipeline() {
    let graph = SyntheticSpec::new("custom", 64, 170)
        .seed(7)
        .max_exec_time(4)
        .max_ipr_size(3)
        .generate()
        .expect("spec is feasible");
    assert_eq!(graph.node_count(), 64);
    assert_eq!(graph.edge_count(), 170);
    let runner = ParaConv::new(PimConfig::neurocube(16).expect("preset is valid"));
    let cmp = runner.compare(&graph, 8).expect("pipeline completes");
    assert!(cmp.paraconv.report.total_time > 0);
}

#[test]
fn plans_replay_identically_on_a_fresh_simulator() {
    // The simulator is stateless across calls: replaying the same plan
    // twice yields identical reports.
    let graph = benchmarks::by_name("car")
        .expect("benchmark exists")
        .graph()
        .expect("benchmark generates");
    let config = PimConfig::neurocube(16).expect("preset is valid");
    let outcome = paraconv::sched::ParaConvScheduler::new(config.clone())
        .schedule(&graph, 6)
        .expect("schedules");
    let a = simulate(&graph, &outcome.plan, &config).expect("valid plan");
    let b = simulate(&graph, &outcome.plan, &config).expect("valid plan");
    assert_eq!(a, b);
}

#[test]
fn simulator_totals_match_analytic_expectations() {
    // For a Para-CONV plan the simulator's aggregate counters are
    // fully predictable from the outcome: every edge transfers once
    // per iteration, split by the allocation; compute energy is the
    // serial workload times the iteration count.
    let bench = benchmarks::by_name("flower").expect("benchmark exists");
    let graph = bench.graph().expect("generates");
    let config = PimConfig::neurocube(32).expect("valid");
    let iterations = 12;
    let result = ParaConv::new(config)
        .run(&graph, iterations)
        .expect("pipeline completes");
    let cached = result.outcome.cached_iprs() as u64;
    let uncached = graph.edge_count() as u64 - cached;
    assert_eq!(result.report.onchip_hits, cached * iterations);
    assert_eq!(result.report.offchip_fetches, uncached * iterations);
    assert_eq!(
        result.report.compute_energy,
        graph.total_exec_time() * iterations
    );
    // Total time sits inside the last kernel window.
    let groups = iterations.div_ceil(result.outcome.unroll());
    let p = result.outcome.period();
    assert!(result.report.total_time <= (result.outcome.rmax() + groups) * p);
    assert!(result.report.total_time > (result.outcome.rmax() + groups - 1) * p);
}

#[test]
fn gantt_and_trace_render_from_facade() {
    let graph = paraconv::graph::examples::motivational();
    let config = PimConfig::builder(4)
        .per_pe_cache_units(1)
        .build()
        .expect("valid");
    let result = ParaConv::new(config.clone())
        .run(&graph, 4)
        .expect("pipeline completes");
    let chart = paraconv::pim::gantt(&graph, &result.outcome.plan, &config, 0, 40);
    assert_eq!(chart.lines().count(), 5); // header + 4 PEs
    let trace = paraconv::pim::trace(&graph, &result.outcome.plan, 0, 10);
    assert!(trace.contains("exec"));
    assert!(trace.contains("xfer"));
}

#[test]
fn energy_accounting_favors_cache() {
    // With ample cache, transfer energy drops relative to the
    // cache-starved configuration on the same plan shape.
    let graph = benchmarks::by_name("character-1")
        .expect("benchmark exists")
        .graph()
        .expect("benchmark generates");
    let starved = PimConfig::builder(16)
        .per_pe_cache_units(0)
        .build()
        .expect("valid");
    let ample = PimConfig::builder(16)
        .per_pe_cache_units(64)
        .build()
        .expect("valid");
    let e_starved = ParaConv::new(starved)
        .run(&graph, 6)
        .expect("runs")
        .report
        .transfer_energy;
    let e_ample = ParaConv::new(ample)
        .run(&graph, 6)
        .expect("runs")
        .report
        .transfer_energy;
    assert!(e_ample < e_starved);
}
