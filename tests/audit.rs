//! Seeded-mutation coverage for the plan auditor, plus a clean bill of
//! health for every experiment module with auditing switched on.
//!
//! `tests/mutation.rs` checks that the *simulator* never panics on a
//! corrupted plan; this file checks the stronger property that the
//! *auditor* positively flags each seeded corruption with the right
//! typed error, and that every plan the repo's own experiment drivers
//! emit passes the auditor unmodified.

use paraconv::experiments::{
    ablation, cases, energy, fig5, fig6, scalability, table1, table2, zoo,
};
use paraconv::graph::{OpKind, Placement, TaskGraph, TaskGraphBuilder};
use paraconv::pim::{
    audit, audit_plan, AuditError, CostModel, ExecutionPlan, PeId, PimConfig, PlannedTask,
    PlannedTransfer,
};
use paraconv::sched::ParaConvScheduler;
use paraconv::ExperimentConfig;

/// A motivational-example plan known to pass the auditor.
fn valid_setup() -> (TaskGraph, ExecutionPlan, PimConfig) {
    let graph = paraconv::graph::examples::motivational();
    let config = PimConfig::builder(4)
        .per_pe_cache_units(1)
        .build()
        .expect("valid");
    let plan = ParaConvScheduler::new(config.clone())
        .schedule(&graph, 6)
        .expect("schedules")
        .plan;
    (graph, plan, config)
}

/// Rebuilds a plan applying `task_map` to every task and `xfer_map` to
/// every transfer, dropping any that map to `None`.
fn rebuild(
    plan: &ExecutionPlan,
    mut task_map: impl FnMut(usize, PlannedTask) -> Option<PlannedTask>,
    mut xfer_map: impl FnMut(usize, PlannedTransfer) -> Option<PlannedTransfer>,
) -> ExecutionPlan {
    let mut out = ExecutionPlan::new(plan.iterations());
    for (i, t) in plan.tasks().iter().enumerate() {
        if let Some(t) = task_map(i, *t) {
            out.push_task(t);
        }
    }
    for (i, x) in plan.transfers().iter().enumerate() {
        if let Some(x) = xfer_map(i, *x) {
            out.push_transfer(x);
        }
    }
    out
}

#[test]
fn baseline_plan_passes_audit() {
    let (graph, plan, config) = valid_setup();
    audit_plan(&graph, &plan, &config).expect("unmutated plan is clean");
}

#[test]
fn dropped_task_is_flagged() {
    let (graph, plan, config) = valid_setup();
    let mutated = rebuild(&plan, |i, t| (i != 0).then_some(t), |_, x| Some(x));
    assert!(matches!(
        audit_plan(&graph, &mutated, &config),
        Err(AuditError::TaskNotScheduled { .. })
    ));
}

#[test]
fn duplicated_task_is_flagged() {
    let (graph, plan, config) = valid_setup();
    let mut mutated = rebuild(&plan, |_, t| Some(t), |_, x| Some(x));
    mutated.push_task(plan.tasks()[0]);
    assert!(matches!(
        audit_plan(&graph, &mutated, &config),
        Err(AuditError::TaskScheduledTwice { .. })
    ));
}

#[test]
fn dropped_transfer_is_flagged() {
    let (graph, plan, config) = valid_setup();
    let mutated = rebuild(&plan, |_, t| Some(t), |i, x| (i != 0).then_some(x));
    assert!(matches!(
        audit_plan(&graph, &mutated, &config),
        Err(AuditError::TransferNotScheduled { .. })
    ));
}

#[test]
fn duplicated_transfer_is_flagged() {
    let (graph, plan, config) = valid_setup();
    let mut mutated = rebuild(&plan, |_, t| Some(t), |_, x| Some(x));
    mutated.push_transfer(plan.transfers()[0]);
    assert!(matches!(
        audit_plan(&graph, &mutated, &config),
        Err(AuditError::TransferScheduledTwice { .. })
    ));
}

#[test]
fn double_booked_pe_is_flagged() {
    let (graph, plan, config) = valid_setup();
    // Move every task onto PE 0: the compacted kernel keeps several
    // PEs busy at once, so at least two intervals must now collide.
    let mutated = rebuild(
        &plan,
        |_, mut t| {
            t.pe = PeId::new(0);
            Some(t)
        },
        |_, x| Some(x),
    );
    assert!(matches!(
        audit_plan(&graph, &mutated, &config),
        Err(AuditError::PeDoubleBooked { .. })
    ));
}

#[test]
fn early_transfer_departure_is_flagged() {
    let (graph, plan, config) = valid_setup();
    let victim = plan
        .transfers()
        .iter()
        .position(|x| x.start > 0)
        .expect("some transfer departs after t=0");
    let mutated = rebuild(
        &plan,
        |_, t| Some(t),
        |i, mut x| {
            if i == victim {
                x.start -= 1;
            }
            Some(x)
        },
    );
    assert!(matches!(
        audit_plan(&graph, &mutated, &config),
        Err(AuditError::TransferNotAtProducerFinish { .. })
    ));
}

#[test]
fn padded_transfer_is_flagged() {
    let (graph, plan, config) = valid_setup();
    let mutated = rebuild(
        &plan,
        |_, t| Some(t),
        |i, mut x| {
            if i == 0 {
                x.duration += 1;
            }
            Some(x)
        },
    );
    assert!(matches!(
        audit_plan(&graph, &mutated, &config),
        Err(AuditError::WrongTransferDuration { .. })
    ));
}

#[test]
fn over_capacity_cache_is_flagged() {
    // One producer fanning out to four consumers with size-2 IPRs on a
    // four-unit cache: forcing every IPR on chip must overflow, because
    // all four transfers depart together at the producer's finish
    // (8 units live at once against a capacity of 4).
    let mut b = TaskGraphBuilder::new("fanout");
    let src = b.add_node("src", OpKind::Convolution, 2);
    for i in 0..4 {
        let dst = b.add_node(format!("dst{i}"), OpKind::Convolution, 1);
        b.add_edge(src, dst, 2).expect("forward edge");
    }
    let graph = b.build().expect("acyclic");
    let config = PimConfig::builder(4)
        .per_pe_cache_units(1)
        .build()
        .expect("valid");
    let plan = ParaConvScheduler::new(config.clone())
        .schedule(&graph, 2)
        .expect("schedules")
        .plan;
    audit_plan(&graph, &plan, &config).expect("scheduler respects capacity");

    let cost = CostModel::new(&config, graph.edge_count());
    let mutated = rebuild(
        &plan,
        |_, t| Some(t),
        |_, mut x| {
            let size = graph.edge(x.edge).expect("edge exists").size();
            x.placement = Placement::Cache;
            x.duration = cost.transfer_time(size, Placement::Cache);
            Some(x)
        },
    );
    assert!(matches!(
        audit_plan(&graph, &mutated, &config),
        Err(AuditError::CacheOverCapacity { .. })
    ));
}

#[test]
fn misrouted_transfer_is_flagged() {
    let (graph, plan, config) = valid_setup();
    let mutated = rebuild(
        &plan,
        |_, t| Some(t),
        |i, mut x| {
            if i == 0 {
                x.dst_pe = PeId::new((x.dst_pe.index() as u32 + 1) % 4);
            }
            Some(x)
        },
    );
    // Rerouting the data away from the consumer's PE trips either the
    // routing check or, if the new destination happens to host another
    // consumer, the per-PE FIFO accounting — both are audit failures.
    assert!(audit_plan(&graph, &mutated, &config).is_err());
}

/// Small-but-real configuration with the auditor enabled.
fn audited_config() -> ExperimentConfig {
    ExperimentConfig {
        pe_counts: vec![8, 16],
        iterations: 4,
        audit: true,
        ..ExperimentConfig::default()
    }
}

#[test]
fn all_experiment_modules_pass_audit_clean() {
    let config = audited_config();
    let suite = &paraconv::experiments::quick_suite()[..2];

    table1::run(&config, suite).expect("table1 audits clean");
    table2::run(&config, suite).expect("table2 audits clean");
    fig5::run(&config, suite).expect("fig5 audits clean");
    fig6::run(&config, suite).expect("fig6 audits clean");
    cases::run(&config, suite).expect("cases audits clean");
    energy::run(&config, suite).expect("energy audits clean");
    scalability::pe_sweep(&config, &suite[0], &[4, 8]).expect("pe_sweep audits clean");
    scalability::fetch_penalty(&config, suite).expect("fetch_penalty audits clean");
    ablation::policies(&config, suite).expect("policies audit clean");
    ablation::contributions(&config, suite).expect("contributions audit clean");
    ablation::unrolling(&config, suite).expect("unrolling audits clean");
    ablation::penalty_sweep(&config, &suite[0], &[2, 8]).expect("penalty_sweep audits clean");
    ablation::cache_sweep(&config, &suite[0], &[1, 4]).expect("cache_sweep audits clean");
}

#[test]
fn zoo_passes_audit_clean() {
    let config = ExperimentConfig {
        pe_counts: vec![16],
        iterations: 2,
        audit: true,
        ..ExperimentConfig::default()
    };
    zoo::run(&config).expect("zoo audits clean");
}

#[test]
fn audit_agrees_with_the_simulator_on_clean_runs() {
    let (graph, plan, config) = valid_setup();
    let report = paraconv::pim::simulate(&graph, &plan, &config).expect("valid plan");
    let audited = audit(&graph, &plan, &config, &report).expect("report matches plan");
    assert_eq!(audited.makespan, report.total_time);
    assert_eq!(audited.iterations, report.iterations);
}
