//! The paper's qualitative claims, asserted end-to-end on the real
//! harness (small iteration counts keep this fast; the bench binaries
//! regenerate the full tables).

use paraconv::experiments::{fig5, fig6, table1, table2, ExperimentConfig};
use paraconv::synth::benchmarks;

fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        pe_counts: vec![16, 32, 64],
        // Long enough to amortize the prologue (the paper's setting:
        // "this overhead is negligible" relative to steady state).
        iterations: 40,
        ..ExperimentConfig::default()
    }
}

/// A small but spread-out slice of the suite.
fn slice() -> Vec<paraconv::synth::Benchmark> {
    ["cat", "flower", "stock-predict", "shortest-path"]
        .iter()
        .map(|n| benchmarks::by_name(n).expect("benchmark exists"))
        .collect()
}

#[test]
fn table1_paraconv_wins_on_every_cell() {
    // The smallest benchmark (`cat`, 9 vertices) is dominated by batch
    // quantization and prologue amortization at test-size runs — the
    // paper itself reports a near-tie for it (IMP 85.13% at 16 PEs) —
    // so the strict-win claim is asserted on the mid/large benchmarks.
    let suite: Vec<_> = slice().into_iter().skip(1).collect();
    let rows = table1::run(&quick_config(), &suite).expect("table 1 runs");
    for row in &rows {
        for cell in &row.cells {
            assert!(
                cell.paraconv_time < cell.sparta_time,
                "{} @ {} PEs: {} !< {}",
                row.name,
                cell.pes,
                cell.paraconv_time,
                cell.sparta_time
            );
        }
    }
    // The average improvement is in the paper's ballpark: Para-CONV
    // needs less than 80% of the baseline's time on average.
    let avg = table1::averages(&rows);
    let overall = avg.iter().sum::<f64>() / avg.len() as f64;
    assert!(overall < 80.0, "overall IMP {overall:.1}%");
}

#[test]
fn table1_total_time_drops_with_more_pes() {
    let rows = table1::run(&quick_config(), &slice()).expect("table 1 runs");
    for row in &rows {
        for w in row.cells.windows(2) {
            assert!(
                w[1].paraconv_time <= w[0].paraconv_time,
                "{}: Para-CONV time grew from {} to {} PEs",
                row.name,
                w[0].pes,
                w[1].pes
            );
            assert!(w[1].sparta_time <= w[0].sparta_time, "{}", row.name);
        }
    }
}

#[test]
fn table2_rmax_grows_with_application_scale() {
    let config = quick_config();
    let rows = table2::run(&config, &slice()).expect("table 2 runs");
    // Averages ordered by benchmark scale (cat < flower <
    // stock-predict < shortest-path).
    for w in rows.windows(2) {
        assert!(
            w[0].average <= w[1].average,
            "{} ({}) vs {} ({})",
            w[0].name,
            w[0].average,
            w[1].name,
            w[1].average
        );
    }
}

#[test]
fn fig5_per_iteration_time_drops_with_more_pes() {
    let rows = fig5::run(&quick_config(), &slice()).expect("figure 5 runs");
    for row in &rows {
        for w in row.period.windows(2) {
            assert!(w[1] <= w[0], "{}: {:?}", row.name, row.period);
        }
        // On the reference machine Para-CONV beats the reference
        // baseline.
        assert!(row.normalized.last().expect("sweep is non-empty") <= &1.0);
    }
}

#[test]
fn fig6_large_benchmarks_cache_more_with_more_pes() {
    let rows = fig6::run(&quick_config(), &slice()).expect("figure 6 runs");
    // For the larger benchmarks (cache-pressured at 16 PEs), growing
    // the array grows the cached population.
    let large = rows
        .iter()
        .find(|r| r.name == "shortest-path")
        .expect("in slice");
    assert!(
        large.cached.last().expect("sweep") >= large.cached.first().expect("sweep"),
        "{:?}",
        large.cached
    );
    // Small benchmarks flatten out: cat's cached count moves by at
    // most a couple of IPRs across a 2x PE step (its profitable
    // population is nearly exhausted), while remaining non-decreasing.
    let small = rows.iter().find(|r| r.name == "cat").expect("in slice");
    assert!(small.cached[2] >= small.cached[1], "{:?}", small.cached);
    assert!(small.cached[2] - small.cached[1] <= 2, "{:?}", small.cached);
}

#[test]
fn paper_average_imp_band_on_midsize_benchmark() {
    // One mid-size benchmark at the paper's center configuration
    // lands in a plausible IMP band (the paper's per-benchmark IMPs
    // range from 16% to 85%).
    let config = ExperimentConfig {
        pe_counts: vec![32],
        iterations: 25,
        ..ExperimentConfig::default()
    };
    let bench = [benchmarks::by_name("character-2").expect("benchmark exists")];
    let rows = table1::run(&config, &bench).expect("runs");
    let imp = rows[0].cells[0].imp_percent;
    assert!((15.0..=90.0).contains(&imp), "IMP {imp:.1}% out of band");
}
