//! The parallel sweep engine must be invisible in the results: any
//! worker count produces the same table rows in the same order, and a
//! pool of one reproduces the old hand-rolled sequential loops.

use paraconv::experiments::{ablation, fig5, fig6, quick_suite, scalability, table1, table2};
use paraconv::ExperimentConfig;

fn config_with_jobs(jobs: usize) -> ExperimentConfig {
    ExperimentConfig {
        pe_counts: vec![16, 32],
        iterations: 6,
        jobs: Some(jobs),
        ..ExperimentConfig::default()
    }
}

#[test]
fn table1_rows_identical_at_any_job_count() {
    let suite = quick_suite();
    let sequential = table1::run(&config_with_jobs(1), &suite).unwrap();
    for jobs in [2, 8] {
        let parallel = table1::run(&config_with_jobs(jobs), &suite).unwrap();
        assert_eq!(sequential, parallel, "jobs={jobs}");
    }
    // The rendered artifact — what the binaries actually emit — is
    // byte-for-byte identical too.
    let rendered_seq = table1::render(&sequential).to_string();
    let rendered_par = table1::render(&table1::run(&config_with_jobs(8), &suite).unwrap());
    assert_eq!(rendered_seq, rendered_par.to_string());
}

#[test]
fn table2_and_figures_identical_at_any_job_count() {
    let suite = quick_suite();
    let seq = config_with_jobs(1);
    let par = config_with_jobs(8);
    assert_eq!(
        table2::run(&seq, &suite).unwrap(),
        table2::run(&par, &suite).unwrap()
    );
    assert_eq!(
        fig5::run(&seq, &suite).unwrap(),
        fig5::run(&par, &suite).unwrap()
    );
    assert_eq!(
        fig6::run(&seq, &suite).unwrap(),
        fig6::run(&par, &suite).unwrap()
    );
}

#[test]
fn irregular_sweeps_identical_at_any_job_count() {
    let suite = quick_suite();
    let seq = config_with_jobs(1);
    let par = config_with_jobs(8);
    assert_eq!(
        ablation::policies(&seq, &suite[..2]).unwrap(),
        ablation::policies(&par, &suite[..2]).unwrap()
    );
    assert_eq!(
        ablation::contributions(&seq, &suite[..2]).unwrap(),
        ablation::contributions(&par, &suite[..2]).unwrap()
    );
    assert_eq!(
        scalability::fetch_penalty(&seq, &suite[..3]).unwrap(),
        scalability::fetch_penalty(&par, &suite[..3]).unwrap()
    );
    assert_eq!(
        scalability::pe_sweep(&seq, &suite[0], &[4, 16, 64]).unwrap(),
        scalability::pe_sweep(&par, &suite[0], &[4, 16, 64]).unwrap()
    );
}
