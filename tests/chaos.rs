//! Chaos harness: deterministic fault campaigns over the benchmark
//! suite, the model zoo and random synthetic graphs.
//!
//! Properties asserted here (the tentpole's acceptance criteria):
//!
//! * **identity** — a quiet campaign, and a cleared global hook, leave
//!   every report byte-identical to the fault-free build;
//! * **determinism** — the same seed produces the same report at any
//!   sweep worker count (faults are sampled in counter mode, never
//!   from shared state);
//! * **fail-stop recovery** — killing a PE on any benchmark or zoo
//!   network yields a completed degraded plan that avoids the dead PE,
//!   audits clean and statically verifies under the reduced capacity
//!   profile;
//! * **monotone degradation** — raising the fault rate never shortens
//!   the achieved makespan and never reduces the retry count;
//! * **watchdog** — the achieved makespan is bounded by
//!   `planned + injected_delay`, so a campaign can delay a replay but
//!   never hang it.
//!
//! The fault hook and the obs recorder are process-global, so every
//! test serializes on one lock.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use paraconv::fault::FaultSpec;
use paraconv::graph::TaskGraph;
use paraconv::pim::{simulate_with_faults, PimConfig, SimError};
use paraconv::sched::AllocationPolicy;
use paraconv::sweep::run_all_with;
use paraconv::synth::{benchmarks, SynthError, SyntheticSpec};
use paraconv::verify::verify_outcome;
use paraconv::{CoreError, ParaConv, SweepPoint};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn quiet_campaigns_are_the_identity_on_the_suite() {
    let _guard = lock();
    let quiet = FaultSpec::quiet(99);
    for bench in benchmarks::all() {
        let graph = bench.graph().expect("benchmark generates");
        let runner = ParaConv::new(PimConfig::neurocube(16).expect("valid config"));
        let plain = runner.run(&graph, 8).expect("schedulable");
        let chaos = runner.run_chaos(&graph, 8, &quiet).expect("quiet campaign");
        assert_eq!(plain.report, chaos.report, "{}", bench.name());
        assert_eq!(chaos.faults.injected, 0);
        assert_eq!(chaos.replans, 0);
    }
}

#[test]
fn global_hook_perturbs_and_clearing_restores_the_identity() {
    let _guard = lock();
    let graph = benchmarks::all()[0].graph().expect("benchmark generates");
    let cfg = PimConfig::neurocube(8).expect("valid config");
    let runner = ParaConv::new(cfg);
    let clean = runner.run(&graph, 10).expect("schedulable");

    // Full-rate congestion through the zero-cost-when-disabled hook.
    let spec = FaultSpec::builder(5)
        .congestion_bp(10_000)
        .congestion_jitter(4)
        .build()
        .expect("valid spec");
    paraconv::fault::install(spec);
    let hooked = runner.run(&graph, 10).expect("still schedulable");
    paraconv::fault::clear();

    assert!(hooked.report.total_time > clean.report.total_time);
    let after = runner.run(&graph, 10).expect("schedulable");
    assert_eq!(after.report, clean.report, "clear() restores the identity");
}

#[test]
fn same_seed_is_byte_identical_at_any_worker_count() {
    let _guard = lock();
    let spec = FaultSpec::builder(42)
        .uniform_rate_bp(150)
        .kill_pe(1, 60)
        .build()
        .expect("valid spec");
    let points: Vec<SweepPoint> = benchmarks::all()[..4]
        .iter()
        .map(|&b| {
            SweepPoint::new(b, PimConfig::neurocube(8).expect("valid config"), 8)
                .with_faults(spec.clone())
        })
        .collect();
    let sequential = run_all_with(&points, 1).expect("campaign completes");
    for jobs in [2, 8] {
        let parallel = run_all_with(&points, jobs).expect("campaign completes");
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.report, p.report, "jobs={jobs} diverged");
        }
    }
}

/// Kills PE 0 (always populated by the compaction) at cycle 0 and
/// asserts the campaign completes on the survivors with a plan that
/// audits clean and statically verifies under the degraded profile.
fn assert_fail_stop_recovers(name: &str, graph: &TaskGraph, pes: usize, iters: u64) {
    let runner = ParaConv::new(PimConfig::neurocube(pes).expect("valid config"))
        .with_audit(true)
        .with_verify(true);
    let spec = FaultSpec::builder(7)
        .kill_pe(0, 0)
        .build()
        .expect("valid spec");
    let chaos = runner
        .run_chaos(graph, iters, &spec)
        .unwrap_or_else(|e| panic!("{name}: campaign failed: {e}"));
    assert_eq!(chaos.failed_pes, vec![0], "{name}");
    assert_eq!(chaos.replans, 1, "{name}");
    assert_eq!(chaos.config.active_pes(), pes - 1, "{name}");
    for t in chaos.outcome.plan.tasks() {
        assert_ne!(t.pe.index(), 0, "{name}: task on the killed PE");
    }
    // run_chaos already audited and verified; re-prove explicitly so a
    // future behavior change in the runner cannot silently drop it.
    verify_outcome(graph, &chaos.outcome, &chaos.config)
        .unwrap_or_else(|e| panic!("{name}: degraded plan fails static verification: {e}"));
    // The replan came from the persistent incremental-DP session; a
    // cold scheduler on the degraded config must reproduce the same
    // allocation and plan bit for bit.
    let cold = paraconv::sched::ParaConvScheduler::new(chaos.config.clone())
        .schedule(graph, iters)
        .unwrap_or_else(|e| panic!("{name}: cold degraded solve failed: {e}"));
    assert_eq!(
        cold.allocation, chaos.outcome.allocation,
        "{name}: incremental replan allocation diverged from a cold solve"
    );
    assert_eq!(
        cold.plan, chaos.outcome.plan,
        "{name}: incremental replan plan diverged from a cold solve"
    );
}

#[test]
fn single_pe_fail_stop_recovers_on_every_benchmark() {
    let _guard = lock();
    for bench in benchmarks::all() {
        let graph = bench.graph().expect("benchmark generates");
        assert_fail_stop_recovers(bench.name(), &graph, 16, 6);
    }
}

#[test]
fn single_pe_fail_stop_recovers_on_the_model_zoo() {
    let _guard = lock();
    let zoo = paraconv::cnn::zoo::all().expect("zoo builds");
    for (class, network) in &zoo {
        let graph = paraconv::cnn::partition(network, paraconv::cnn::PartitionConfig::default())
            .expect("network partitions");
        assert_fail_stop_recovers(&format!("{class}/{}", network.name()), &graph, 16, 6);
    }
}

#[test]
fn retry_exhaustion_is_a_typed_error_not_a_panic() {
    let _guard = lock();
    let graph = benchmarks::all()[0].graph().expect("benchmark generates");
    // All-eDRAM placements guarantee vault transfers to fail; a 100%
    // vault-fault rate with one retry cannot recover.
    let runner = ParaConv::new(PimConfig::neurocube(8).expect("valid config"))
        .with_policy(AllocationPolicy::AllEdram);
    let spec = FaultSpec::builder(3)
        .vault_fault_bp(10_000)
        .retry(paraconv::fault::RetryPolicy {
            max_retries: 1,
            backoff_base: 2,
            deadline: 64,
        })
        .build()
        .expect("valid spec");
    let err = runner.run_chaos(&graph, 4, &spec).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Sim(SimError::RetryExhausted { attempts: 2, .. })
        ),
        "expected RetryExhausted, got: {err}"
    );
}

/// Random feasible synthetic specs (same shape as the differential
/// harness).
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (4usize..16, 0u64..u64::MAX / 2).prop_flat_map(|(v, seed)| {
        (Just(v), v..=2 * v, Just(seed)).prop_map(|(v, e, seed)| {
            match SyntheticSpec::new("chaos", v, e).seed(seed).generate() {
                Ok(g) => g,
                Err(SynthError::TooManyEdges { maximum, .. }) => {
                    SyntheticSpec::new("chaos", v, maximum)
                        .seed(seed)
                        .generate()
                        .expect("the generator's own maximum is realizable")
                }
                Err(e) => panic!("v..=2v edge targets should be realizable: {e}"),
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On a fixed plan, a higher fault rate only *adds* fault events
    /// (rates are compared in basis points against the same hash), so
    /// the achieved makespan and the retry count are monotone in the
    /// rate, and the watchdog bound holds at every rate.
    #[test]
    fn degradation_is_monotone_in_the_fault_rate(
        g in arb_graph(),
        seed in 0u64..1_000,
    ) {
        let rates = [0u32, 50, 200, 1_000, 4_000];
        let _guard = lock();
        let cfg = PimConfig::neurocube(8).expect("valid config");
        let outcome = paraconv::sched::ParaConvScheduler::new(cfg.clone())
            .schedule(&g, 4)
            .expect("schedules");
        let mut previous_makespan = 0u64;
        let mut previous_retries = 0u64;
        let mut exhausted = false;
        for bp in rates {
            let spec = FaultSpec::builder(seed)
                .uniform_rate_bp(bp)
                .build()
                .expect("valid spec");
            match simulate_with_faults(&g, &outcome.plan, &cfg, &spec) {
                Ok((report, out)) => {
                    // A rate that recovers after a lower rate exhausted
                    // would mean raising the rate *removed* a fault.
                    prop_assert!(!exhausted, "rate {bp} bp recovered after exhaustion");
                    prop_assert!(report.total_time >= out.achieved_makespan);
                    prop_assert!(
                        out.achieved_makespan >= previous_makespan,
                        "rate {bp} bp shortened the replay"
                    );
                    prop_assert!(out.retries >= previous_retries, "rate {bp} bp lost retries");
                    // Watchdog: delays add, they never compound.
                    prop_assert!(out.achieved_makespan <= out.planned_makespan + out.injected_delay);
                    previous_makespan = out.achieved_makespan;
                    previous_retries = out.retries;
                }
                // High rates may burn through the whole retry budget;
                // that is a typed error, and monotone too.
                Err(SimError::RetryExhausted { .. }) => exhausted = true,
                Err(e) => prop_assert!(false, "unexpected failure at {bp} bp: {e}"),
            }
        }
    }
}
