//! Experiment E5: the paper's §2.3 motivational example (Figure 3).
//!
//! On four PEs with one cache slot each, the baseline's intra-iteration
//! dependencies leave PEs idle and push intermediate processing results
//! to eDRAM, delaying T4/T5; Para-CONV's joint retiming + allocation
//! compacts every iteration into a short periodic kernel after a
//! bounded prologue.

use paraconv::graph::examples;
use paraconv::pim::{simulate, PimConfig};
use paraconv::sched::{ParaConvScheduler, SpartaScheduler};
use paraconv::ParaConv;

fn config() -> PimConfig {
    // "the PIM architecture consists of four PEs and each data cache of
    // a PE can hold only one intermediate processing result"
    PimConfig::builder(4)
        .per_pe_cache_units(1)
        .build()
        .expect("motivational configuration is valid")
}

#[test]
fn graph_matches_figure_2b() {
    let g = examples::motivational();
    assert_eq!(g.node_count(), 5);
    assert_eq!(g.edge_count(), 6);
    // Three dependency levels: T1 | T2,T3 | T4,T5.
    assert_eq!(g.depth(), 3);
    assert_eq!(g.max_width(), 2);
}

#[test]
fn paraconv_compacts_the_kernel() {
    let g = examples::motivational();
    let outcome = ParaConvScheduler::new(config())
        .schedule(&g, 30)
        .expect("motivational example schedules");
    // All five unit operations packed on four PEs: at most two slots
    // per iteration copy — strictly better than the three-level
    // dependency-bound schedule.
    assert!(outcome.time_per_iteration() <= 2.0);
    assert!((outcome.time_per_iteration() as f64) < 3.0);
    // The prologue is bounded: a handful of retimed iterations, as in
    // the paper's "three iterations of retiming are allocated into
    // prologue".
    assert!(outcome.rmax() >= 1);
    assert!(outcome.rmax() <= 6, "rmax = {}", outcome.rmax());
}

#[test]
fn cache_slots_are_contended() {
    let g = examples::motivational();
    let outcome = ParaConvScheduler::new(config())
        .schedule(&g, 10)
        .expect("motivational example schedules");
    // Six IPRs, four cache slots: not everything fits on chip.
    assert!(outcome.cached_iprs() < g.edge_count());
    let report = simulate(&g, &outcome.plan, &config()).expect("plan is valid");
    assert!(report.offchip_fetches > 0);
    assert!(report.peak_cache_occupancy <= report.cache_capacity);
}

#[test]
fn paraconv_beats_the_baseline_here() {
    let g = examples::motivational();
    let runner = ParaConv::new(config());
    let cmp = runner.compare(&g, 60).expect("both schedulers run");
    assert!(
        cmp.speedup() >= 1.0,
        "Para-CONV should not lose on its own motivational example: {:.2}",
        cmp.speedup()
    );
}

#[test]
fn baseline_suffers_dependency_delay() {
    let g = examples::motivational();
    let sparta = SpartaScheduler::new(config())
        .schedule(&g, 12)
        .expect("baseline schedules");
    // Intra-iteration dependencies force at least the critical path
    // (3) plus IPR transfer time into each batch.
    assert!(sparta.batch_makespan > g.critical_path_length());
}

#[test]
fn steady_state_is_periodic_after_prologue() {
    let g = examples::motivational();
    let outcome = ParaConvScheduler::new(config())
        .schedule(&g, 24)
        .expect("motivational example schedules");
    let p = outcome.period();
    let u = outcome.unroll();
    // Instances of the same operation in consecutive iteration groups
    // are exactly one period apart.
    let probe = g.node_ids().next().expect("graph is non-empty");
    let a = outcome
        .plan
        .find_task(probe, 1)
        .expect("iteration 1 planned");
    let b = outcome
        .plan
        .find_task(probe, 1 + u)
        .expect("next group planned");
    assert_eq!(b.start - a.start, p);
}
