//! End-to-end contract of the versioned plan IR and registry.
//!
//! Three layers:
//!
//! 1. **Round trip** — every benchmark and model-zoo plan survives
//!    encode → decode → verify → re-encode *byte-identically*, with a
//!    request key that depends only on (graph, config, policy);
//! 2. **Hostile imports** — truncated files, flipped header bytes,
//!    stale versions and hash-mismatched bodies all map to typed
//!    [`ArtifactError`]s, never a panic, and a tampered-but-hash-valid
//!    bundle is still rejected by the verifier gate;
//! 3. **Registry** — the sharded store returns exactly the bytes it
//!    was given and rejects path-shaped keys;
//! 4. **Concurrency** — a same-key put storm and a put-while-get loop
//!    never expose a torn artifact (the protocol the
//!    `registry-put-same-key` model harness in `paraconv-analyze`
//!    proves schedule-exhaustively, re-checked here against the real
//!    filesystem), with exact `registry.hits`/`misses`/`puts`
//!    counters.

use proptest::prelude::*;

use paraconv::graph::TaskGraph;
use paraconv::pim::PimConfig;
use paraconv::registry::{
    decode, request_key, sha256_hex, ArtifactError, PlanBundle, PlanPolicy, Registry,
    FORMAT_VERSION, PRODUCER,
};
use paraconv::retime::Retiming;
use paraconv::sched::{AllocationPolicy, ParaConvScheduler};
use paraconv::synth::benchmarks;
use paraconv::verify::verify_outcome;

const PES: usize = 16;
const ITERS: u64 = 8;

fn config() -> PimConfig {
    PimConfig::neurocube(PES).expect("valid config")
}

fn policy() -> PlanPolicy {
    PlanPolicy {
        allocation: AllocationPolicy::DynamicProgram,
        iterations: ITERS,
    }
}

fn cat_graph() -> TaskGraph {
    benchmarks::by_name("cat")
        .expect("cat exists")
        .graph()
        .expect("cat builds")
}

/// Schedules, verifies and bundles one plan.
fn bundle_for(graph: TaskGraph) -> PlanBundle {
    let cfg = config();
    let outcome = ParaConvScheduler::new(cfg.clone())
        .with_policy(AllocationPolicy::DynamicProgram)
        .schedule(&graph, ITERS)
        .expect("schedulable");
    verify_outcome(&graph, &outcome, &cfg).expect("exported plans prove");
    PlanBundle {
        graph,
        config: cfg,
        policy: policy(),
        outcome,
    }
}

/// The full export → import → verify → re-export loop for one plan.
fn assert_round_trips(name: &str, graph: TaskGraph) {
    let bundle = bundle_for(graph);
    let key = bundle.key();
    assert_eq!(
        key,
        request_key(&bundle.graph, &bundle.config, &bundle.policy),
        "{name}: the key must be computable from the request alone"
    );
    let bytes = bundle.encode();
    let artifact = decode(&bytes).unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
    assert_eq!(artifact.header.format, FORMAT_VERSION);
    assert_eq!(artifact.header.producer, PRODUCER);
    assert_eq!(artifact.header.key, key, "{name}: key drifted");
    verify_outcome(
        &artifact.bundle.graph,
        &artifact.bundle.outcome,
        &artifact.bundle.config,
    )
    .unwrap_or_else(|e| panic!("{name}: imported plan failed the gate: {e}"));
    assert_eq!(
        artifact.bundle.encode(),
        bytes,
        "{name}: re-encode is not byte-identical"
    );
    // Deterministic: a second export of the same request matches too.
    assert_eq!(bundle.encode(), bytes, "{name}: encode is not a function");
}

#[test]
fn every_benchmark_round_trips_byte_identically() {
    for b in benchmarks::all() {
        assert_round_trips(b.name(), b.graph().expect("benchmark builds"));
    }
}

#[test]
fn every_zoo_network_round_trips_byte_identically() {
    let zoo = paraconv::cnn::zoo::all().expect("zoo builds");
    for (class, network) in &zoo {
        let graph = paraconv::cnn::partition(network, paraconv::cnn::PartitionConfig::default())
            .expect("network partitions");
        assert_round_trips(&format!("{class}/{}", network.name()), graph);
    }
}

#[test]
fn request_keys_ignore_the_outcome_and_separate_requests() {
    let cat = bundle_for(cat_graph());
    let car = bundle_for(
        benchmarks::by_name("car")
            .expect("car exists")
            .graph()
            .expect("car builds"),
    );
    assert_ne!(cat.key(), car.key(), "different graphs, different keys");
    let mut other_policy = cat.policy;
    other_policy.iterations += 1;
    assert_ne!(
        cat.key(),
        request_key(&cat.graph, &cat.config, &other_policy),
        "the policy is part of the request"
    );
}

/// One valid artifact, scheduled once and shared by the hostile tests.
fn sample_bytes() -> Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES
        .get_or_init(|| bundle_for(cat_graph()).encode())
        .clone()
}

fn decode_err(bytes: &[u8]) -> ArtifactError {
    match decode(bytes) {
        Err(e) => e,
        Ok(_) => panic!("hostile input decoded cleanly"),
    }
}

#[test]
fn truncated_artifacts_are_rejected_with_typed_errors() {
    let bytes = sample_bytes();
    // Empty file, header cut mid-JSON, missing body line, body cut
    // mid-JSON: all Truncated or SchemaMismatch, never a panic.
    for cut in [0, 1, 10, bytes.len() / 2, bytes.len() - 1] {
        let truncated = &bytes[..cut];
        let err = decode_err(truncated);
        assert!(
            matches!(
                err,
                ArtifactError::Truncated { .. } | ArtifactError::SchemaMismatch { .. }
            ),
            "cut at {cut} gave unexpected error: {err}"
        );
    }
}

#[test]
fn flipped_magic_is_a_schema_mismatch() {
    let mut bytes = sample_bytes();
    let pos = bytes
        .windows(b"paraconv-plan".len())
        .position(|w| w == b"paraconv-plan")
        .expect("magic present");
    bytes[pos] = b'q';
    assert!(matches!(
        decode_err(&bytes),
        ArtifactError::SchemaMismatch { .. }
    ));
}

#[test]
fn stale_format_versions_are_a_version_skew() {
    let text = String::from_utf8(sample_bytes()).expect("artifact is UTF-8");
    let stale = text.replacen("\"format\":1", "\"format\":99", 1);
    assert_ne!(stale, text, "format field present exactly once");
    match decode_err(stale.as_bytes()) {
        ArtifactError::VersionSkew { found, supported } => {
            assert_eq!(found, 99);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected VersionSkew, got {other}"),
    }
}

#[test]
fn corrupted_bodies_are_a_hash_mismatch() {
    let bytes = sample_bytes();
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("two-line artifact");
    let mut corrupt = bytes.clone();
    // Flip one digit deep inside the body line.
    let target = header_end + (corrupt.len() - header_end) / 2;
    let pos = (target..corrupt.len())
        .find(|&i| corrupt[i].is_ascii_digit())
        .expect("body has digits");
    corrupt[pos] = if corrupt[pos] == b'7' { b'8' } else { b'7' };
    match decode_err(&corrupt) {
        ArtifactError::HashMismatch { field, .. } => assert_eq!(field, "content_hash"),
        other => panic!("expected HashMismatch, got {other}"),
    }
}

#[test]
fn hash_fixed_schema_corruption_is_a_schema_mismatch() {
    // Corrupt the body *and* recompute the content hash: the hash gate
    // passes, so the codec's strict key checking must catch it.
    let text = String::from_utf8(sample_bytes()).expect("artifact is UTF-8");
    let (header, rest) = text.split_once('\n').expect("two-line artifact");
    let body = rest.strip_suffix('\n').expect("newline-terminated body");
    let evil_body = body.replacen("\"plan\":", "\"plam\":", 1);
    assert_ne!(evil_body, body, "plan section present");
    let old_hash_field = format!("\"content_hash\":\"{}\"", sha256_hex(body.as_bytes()));
    let new_hash_field = format!("\"content_hash\":\"{}\"", sha256_hex(evil_body.as_bytes()));
    let evil_header = header.replacen(&old_hash_field, &new_hash_field, 1);
    assert_ne!(evil_header, header, "content_hash field patched");
    let evil = format!("{evil_header}\n{evil_body}\n");
    match decode_err(evil.as_bytes()) {
        ArtifactError::SchemaMismatch { path, .. } => {
            assert!(path.starts_with("body"), "schema path localizes: {path}")
        }
        other => panic!("expected SchemaMismatch, got {other}"),
    }
}

#[test]
fn hash_valid_tampered_outcomes_die_at_the_verifier_gate() {
    // An attacker who re-encodes honestly (valid hashes, valid schema)
    // after corrupting the outcome still cannot get a plan executed:
    // the import gate re-proves the plan from the artifact alone.
    let mut bundle = bundle_for(cat_graph());
    let dst = bundle
        .graph
        .edges()
        .next()
        .expect("benchmark graphs have edges")
        .dst()
        .index();
    let mut node_values: Vec<u64> = bundle
        .outcome
        .retiming
        .node_values()
        .map(|(_, v)| v)
        .collect();
    let edge_values = bundle.outcome.retiming.edge_values_raw().to_vec();
    node_values[dst] = u64::MAX; // R(edge) < R(dst): structurally illegal
    bundle.outcome.retiming = Retiming::from_values(node_values, edge_values);
    let bytes = bundle.encode();
    let artifact = decode(&bytes).expect("hashes and schema are honest");
    let gate = verify_outcome(
        &artifact.bundle.graph,
        &artifact.bundle.outcome,
        &artifact.bundle.config,
    );
    assert!(gate.is_err(), "tampered retiming slipped the verifier gate");
}

#[test]
fn registry_stores_and_returns_exact_bytes() {
    let dir = std::env::temp_dir().join(format!("paraconv-plan-artifacts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::open(&dir).expect("registry opens");
    let bytes = sample_bytes();
    let artifact = decode(&bytes).expect("sample decodes");
    let key = artifact.header.key.clone();
    assert!(registry.get(&key).expect("get works").is_none());
    registry.put(&key, &bytes).expect("put works");
    assert!(registry.contains(&key).expect("contains works"));
    assert_eq!(
        registry.get(&key).expect("get works").as_deref(),
        Some(&bytes[..])
    );
    assert_eq!(registry.keys().expect("keys list"), vec![key]);
    assert!(registry.put("../../etc/passwd", &bytes).is_err());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_byte_mutations_never_panic_or_change_plans(
        offset in 0usize..1_000_000,
        value in 0u8..=255,
    ) {
        // Any one-byte corruption of a valid artifact either fails
        // with a typed error or — when it hits a provenance-only field
        // like the producer tag — decodes to the *same* plan, which
        // re-encodes to the canonical original bytes.
        let original = sample_bytes();
        let mut mutated = original.clone();
        let i = offset % mutated.len();
        mutated[i] = value;
        match decode(&mutated) {
            Err(_) => {} // typed rejection is the expected outcome
            Ok(artifact) => prop_assert_eq!(
                artifact.bundle.encode(),
                original,
                "a surviving mutation must be semantically invisible"
            ),
        }
    }
}

/// Minimal bytes that pass the registry's read-side verification: a
/// well-formed artifact header over an arbitrary single-line body.
fn mini_artifact(body: &str) -> Vec<u8> {
    let hash = sha256_hex(body.as_bytes());
    format!(
        "{{\"content_hash\":\"{hash}\",\"format\":1,\"key\":\"{hash}\",\
         \"magic\":\"paraconv-plan\",\"producer\":\"storm-test\"}}\n{body}\n"
    )
    .into_bytes()
}

/// Serializes the tests that do registry operations: counter
/// exactness needs the process-global obs recorder to itself.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn concurrent_same_key_put_storm_never_tears_and_counts_exactly() {
    let _guard = obs_lock();
    paraconv::obs::reset();
    paraconv::obs::enable();

    let dir = std::env::temp_dir().join(format!("paraconv-put-storm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let body: String = format!("{{\"payload\":\"{}\"}}", "cd".repeat(1 << 15));
    let payload = mini_artifact(&body);
    let key = sha256_hex(&payload);
    const WRITERS: usize = 8;
    const PUTS_EACH: usize = 4;
    let threads: Vec<_> = (0..WRITERS)
        .map(|_| {
            let registry = Registry::open(&dir).expect("registry opens");
            let key = key.clone();
            let payload = payload.clone();
            std::thread::spawn(move || {
                for _ in 0..PUTS_EACH {
                    registry.put(&key, &payload).expect("put succeeds");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread completes");
    }

    // Worker threads flushed their obs buffers on exit; snapshot
    // before the final get so the put count stands alone.
    let snapshot = paraconv::obs::snapshot();
    assert_eq!(
        snapshot.counter("registry.puts"),
        (WRITERS * PUTS_EACH) as u64,
        "every put lands exactly once in the counter"
    );
    assert_eq!(snapshot.counter("registry.hits"), 0);
    assert_eq!(snapshot.counter("registry.misses"), 0);

    let registry = Registry::open(&dir).expect("registry opens");
    assert_eq!(
        registry.get(&key).expect("get works"),
        Some(payload),
        "the artifact is whole after the storm"
    );
    let shard = dir.join("objects").join(&key[..2]);
    let leftovers: Vec<_> = std::fs::read_dir(&shard)
        .expect("shard exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .collect();
    assert!(leftovers.is_empty(), "no temp files survive the storm");

    paraconv::obs::disable();
    paraconv::obs::reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn put_while_get_sees_none_or_the_whole_artifact() {
    let _guard = obs_lock();
    paraconv::obs::reset();
    paraconv::obs::enable();

    let dir = std::env::temp_dir().join(format!("paraconv-put-get-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let body: String = format!("{{\"payload\":\"{}\"}}", "ef".repeat(1 << 15));
    let payload = mini_artifact(&body);
    let key = sha256_hex(&payload);
    const PUTS: usize = 16;
    let writer = {
        let registry = Registry::open(&dir).expect("registry opens");
        let key = key.clone();
        let payload = payload.clone();
        std::thread::spawn(move || {
            for _ in 0..PUTS {
                registry.put(&key, &payload).expect("put succeeds");
            }
        })
    };

    // Read concurrently: every get is either a miss or the complete
    // payload — never a prefix, never zero-filled bytes.
    let registry = Registry::open(&dir).expect("registry opens");
    let mut hits = 0u64;
    let mut misses = 0u64;
    for _ in 0..64 {
        match registry.get(&key).expect("get never errors") {
            None => misses += 1,
            Some(got) => {
                assert_eq!(got, payload, "a visible artifact is always whole");
                hits += 1;
            }
        }
    }
    writer.join().expect("writer completes");

    // One settled read after the writer is done must hit.
    assert_eq!(registry.get(&key).expect("get works"), Some(payload));
    hits += 1;

    let snapshot = paraconv::obs::snapshot();
    assert_eq!(snapshot.counter("registry.puts"), PUTS as u64);
    assert_eq!(snapshot.counter("registry.hits"), hits);
    assert_eq!(snapshot.counter("registry.misses"), misses);

    paraconv::obs::disable();
    paraconv::obs::reset();
    let _ = std::fs::remove_dir_all(&dir);
}
