//! Serve-storm integration tests: concurrent clients hammer one
//! in-process [`ServeCore`] with a mixed cold / cached / poisoned /
//! zero-deadline workload at worker-pool widths 1, 2 and 8.
//!
//! The counters are asserted **exactly** — the single-flight cache
//! guarantees one miss per cold key at any worker count, facial
//! validation rejects poisoned requests pre-admission, and a
//! `deadline_ms = 0` request is cancelled at submit — and the served
//! artifacts must be byte-identical across all three pool widths
//! (planning is deterministic; concurrency must not leak into plans).

use std::collections::BTreeMap;
use std::sync::Arc;

use paraconv::sched::AllocationPolicy;
use paraconv::serve::{
    PlanRequest, ServeConfig, ServeCore, ServeResponse, ServeStats, ServeStatus, Submission,
};

fn request(id: &str, tenant: &str, benchmark: &str, pes: usize, iterations: u64) -> PlanRequest {
    PlanRequest {
        id: id.into(),
        tenant: tenant.into(),
        benchmark: benchmark.into(),
        pes,
        iterations,
        policy: AllocationPolicy::DynamicProgram,
        deadline_ms: None,
    }
}

/// Roomy limits so the storm exercises planning and caching, not
/// admission control (which has its own deterministic test below).
fn storm_config(jobs: usize) -> ServeConfig {
    ServeConfig {
        jobs,
        queue_capacity: 256,
        registry_path: None,
        quota: 1024,
        breaker_threshold: 1024,
        breaker_cooldown: 8,
        fault: None,
    }
}

const CLIENTS: usize = 4;
/// Per client: 4 hot-key, 1 second-key, 1 poisoned, 1 zero-deadline.
const PER_CLIENT: usize = 7;

/// Runs the mixed storm at the given pool width and returns every
/// response plus the final counters and the served artifacts by key.
fn run_storm(jobs: usize) -> (Vec<ServeResponse>, ServeStats, BTreeMap<String, Vec<u8>>) {
    let core = Arc::new(ServeCore::new(storm_config(jobs)).expect("serve core"));
    core.start();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || {
                let mut responses = Vec::with_capacity(PER_CLIENT);
                for r in 0..4 {
                    let hot = request(&format!("hot-{c}-{r}"), "tenant-a", "cat", 8, 4);
                    responses.push(core.submit(hot).wait());
                }
                let alt = request(&format!("alt-{c}"), "tenant-b", "car", 10, 5);
                responses.push(core.submit(alt).wait());
                let bad = request(&format!("bad-{c}"), "tenant-a", "no-such-benchmark", 8, 4);
                responses.push(core.submit(bad).wait());
                let mut dead = request(&format!("dead-{c}"), "tenant-b", "cat", 8, 4);
                dead.deadline_ms = Some(0);
                responses.push(core.submit(dead).wait());
                responses
            })
        })
        .collect();
    let responses: Vec<ServeResponse> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("storm client panicked"))
        .collect();
    let stats = core.drain();
    let mut artifacts = BTreeMap::new();
    for response in &responses {
        if response.status == ServeStatus::Ok {
            let key = response.key.clone().expect("ok response carries a key");
            let bytes = core
                .cache()
                .lookup(&key)
                .expect("served key must stay resident");
            artifacts.insert(key, bytes.to_vec());
        }
    }
    (responses, stats, artifacts)
}

fn assert_storm_exact(jobs: usize) {
    let (responses, stats, artifacts) = run_storm(jobs);

    // Every submitted request is answered exactly once.
    assert_eq!(responses.len(), CLIENTS * PER_CLIENT);
    let mut ids: Vec<&str> = responses.iter().map(|r| r.id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CLIENTS * PER_CLIENT, "duplicate response ids");

    // Exact terminal counters: 16 hot + 4 alt accepted and served or
    // deadline-answered, 4 poisoned rejected pre-admission, and the
    // single-flight cache computes each of the two cold keys once.
    assert_eq!(
        stats,
        ServeStats {
            accepted: 24,
            shed: 0,
            draining: 0,
            invalid: 4,
            quota: 0,
            circuit_open: 0,
            served: 20,
            hits: 18,
            misses: 2,
            deadline: 4,
            failed: 0,
            worker_kills: 0,
            slow_injected: 0,
        },
        "counters at jobs={jobs}"
    );

    // Status breakdown matches the counters from the response side.
    let count = |status: ServeStatus| responses.iter().filter(|r| r.status == status).count();
    assert_eq!(count(ServeStatus::Ok), 20);
    assert_eq!(count(ServeStatus::Invalid), 4);
    assert_eq!(count(ServeStatus::Deadline), 4);

    // Two distinct artifacts were served (hot + alt parameterization).
    assert_eq!(artifacts.len(), 2, "artifact keys at jobs={jobs}");
}

#[test]
fn storm_jobs_1_exact_counters() {
    assert_storm_exact(1);
}

#[test]
fn storm_jobs_2_exact_counters() {
    assert_storm_exact(2);
}

#[test]
fn storm_jobs_8_exact_counters() {
    assert_storm_exact(8);
}

#[test]
fn artifacts_byte_identical_across_worker_counts() {
    let (_, _, one) = run_storm(1);
    let (_, _, two) = run_storm(2);
    let (_, _, eight) = run_storm(8);
    assert_eq!(one.len(), 2);
    assert_eq!(one, two, "jobs=2 served different bytes than jobs=1");
    assert_eq!(one, eight, "jobs=8 served different bytes than jobs=1");
}

#[test]
fn backpressure_sheds_exactly_beyond_capacity() {
    // Workers are not started yet, so the queue fills deterministically:
    // capacity 2 admits the first two submissions and sheds the rest
    // with the typed overloaded response.
    let core = ServeCore::new(ServeConfig {
        jobs: 1,
        queue_capacity: 2,
        ..storm_config(1)
    })
    .expect("serve core");
    let submissions: Vec<Submission> = (0..5)
        .map(|i| core.submit(request(&format!("bp-{i}"), "tenant-a", "cat", 8, 4)))
        .collect();
    let stats = core.stats();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.shed, 3);

    core.start();
    let mut ok = 0;
    let mut overloaded = 0;
    for submission in submissions {
        match submission.wait().status {
            ServeStatus::Ok => ok += 1,
            ServeStatus::Overloaded => overloaded += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert_eq!((ok, overloaded), (2, 3));
    let stats = core.drain();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.shed, 3);
}

#[test]
fn drain_rejects_new_work_typed() {
    let core = ServeCore::new(storm_config(1)).expect("serve core");
    core.start();
    core.drain();
    let response = core.submit(request("late", "tenant-a", "cat", 8, 4)).wait();
    assert_eq!(response.status, ServeStatus::Draining);
    assert_eq!(core.stats().draining, 1);
}
