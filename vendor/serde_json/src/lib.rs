//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no registry access, so this vendored
//! crate provides the subset the workspace actually uses: a strict
//! recursive-descent JSON parser into a [`Value`] tree, the accessor
//! surface (`as_str`, `as_u64`, `get`, indexing) the observability
//! smoke tests and the perf-baseline comparison rely on, and a
//! [`Value`] serializer ([`to_string`] / [`to_string_pretty`]) used by
//! the perf-baseline binary to emit its benchmark reports. Objects are
//! `BTreeMap`s, so serialized member order is alphabetical and
//! deterministic. `#[derive(Serialize)]` integration and the `json!`
//! macro remain out of scope — the workspace builds [`Value`] trees
//! explicitly.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// Map type used for JSON objects. `BTreeMap` keeps iteration
/// deterministic, matching how the workspace writes its JSON.
pub type Map = BTreeMap<String, Value>;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any JSON number, stored as `f64` (plus the raw text so integer
    /// accessors stay exact for values `f64` cannot represent).
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map),
}

/// A JSON number preserving both integer and float views.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number {
    int: Option<i64>,
    uint: Option<u64>,
    float: f64,
}

impl Number {
    fn from_parts(text: &str) -> Option<Number> {
        let float: f64 = text.parse().ok()?;
        // Negative zero has no integer form: "-0.0" (or "-0") must
        // stay float-only, otherwise the integer view serializes it as
        // "0" and the sign is lost on the next round trip.
        if float == 0.0 && text.starts_with('-') {
            return Some(Number {
                int: None,
                uint: None,
                float,
            });
        }
        Some(Number {
            int: text.parse().ok(),
            uint: text.parse().ok(),
            float,
        })
    }

    /// Integer view if the number is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.uint
    }

    /// Integer view if the number fits `i64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        self.int
    }

    /// Float view (always available).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        self.float
    }

    /// An exact unsigned integer number.
    #[must_use]
    pub fn from_u64(v: u64) -> Number {
        Number {
            int: i64::try_from(v).ok(),
            uint: Some(v),
            float: v as f64,
        }
    }

    /// An exact signed integer number.
    #[must_use]
    pub fn from_i64(v: i64) -> Number {
        Number {
            int: Some(v),
            uint: u64::try_from(v).ok(),
            float: v as f64,
        }
    }

    /// A float number; `None` for NaN or infinities, which JSON cannot
    /// represent (mirrors the real crate's `Number::from_f64`).
    #[must_use]
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number {
            int: None,
            uint: None,
            float: v,
        })
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Integer views serialize exactly; pure floats use Rust's
        // shortest round-tripping repr, which is valid JSON for every
        // finite value.
        if let Some(u) = self.uint {
            write!(f, "{u}")
        } else if let Some(i) = self.int {
            write!(f, "{i}")
        } else {
            // A float must serialize in a float form: Rust renders
            // integral floats without a fraction ("2", "-0"), which
            // would re-parse as the integer form and change bytes on
            // the next serialization — fatal for content hashing.
            let repr = self.float.to_string();
            if repr.contains(['.', 'e', 'E']) {
                f.write_str(&repr)
            } else {
                write!(f, "{repr}.0")
            }
        }
    }
}

impl Value {
    /// The string payload, if this is a JSON string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a JSON bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if this is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if this is an integer number fitting `i64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The elements, if this is a JSON array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is a JSON object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for JSON `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup by key; `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element lookup by index; `None` for non-arrays.
    #[must_use]
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(index),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Appends `s` to `out` as a JSON string literal, quotes included.
///
/// This is the one escaper every hand-rolled JSON writer in the
/// workspace routes through (the `paraconv-obs` exporters delegate
/// here), so string emission cannot drift between serializers.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact serialization (no whitespace), like the real crate's
/// `serde_json::to_string` on a `Value`.
#[must_use]
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, None);
    out
}

/// Pretty serialization with two-space indentation, like the real
/// crate's `serde_json::to_string_pretty` on a `Value`.
#[must_use]
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, Some(0));
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::from_u64(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::from_u64(v as u64))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::from_i64(v))
    }
}

/// Converts through [`Number::from_f64`]; non-finite floats become
/// `null`, the same coercion the real crate's `json!` macro applies.
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    offset: usize,
    message: String,
}

impl Error {
    fn new(offset: usize, message: impl Into<String>) -> Error {
        Error {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset in the input where parsing failed.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses a complete JSON document. Trailing non-whitespace is an
/// error, as in the real `serde_json::from_str::<Value>`.
pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(p.pos, "trailing characters"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new(self.pos, "recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(Error::new(self.pos, "unexpected character")),
            None => Err(Error::new(self.pos, "unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(self.pos, format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a matching
                                // \uXXXX low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(Error::new(self.pos, "invalid low surrogate"));
                                    }
                                    let c =
                                        0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error::new(self.pos, "invalid unicode escape"))
                                }
                            }
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(Error::new(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new(self.pos, "control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new(self.pos, "invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new(self.pos, "truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new(self.pos, "invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::new(self.pos, "invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" or non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(Error::new(self.pos, "invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error::new(self.pos, "invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error::new(self.pos, "invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new(start, "invalid number"))?;
        Number::from_parts(text)
            .map(Value::Number)
            .ok_or_else(|| Error::new(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap().as_bool(), Some(true));
        assert_eq!(from_str(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_containers_and_lookup() {
        let v = from_str(r#"{"a":[1,2,{"b":"c"}],"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().get_index(2).unwrap().get("b").unwrap().as_str(),
            Some("c")
        );
        assert!(v.get("d").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_escapes() {
        let v = from_str(r#""line\nquote\"uAé""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\"uAé"));
        let v = from_str(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1,}").is_err());
        assert!(from_str("01").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str(r#""\ud800x""#).is_err());
    }

    #[test]
    fn big_u64_stays_exact() {
        let v = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.as_i64(), None);
    }

    #[test]
    fn error_reports_offset() {
        let err = from_str("[1, x]").unwrap_err();
        assert_eq!(err.offset(), 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn serializes_compact() {
        let mut map = Map::new();
        map.insert("b".into(), Value::from(2.5));
        map.insert("a".into(), Value::from(1u64));
        map.insert(
            "c".into(),
            Value::Array(vec![Value::Null, Value::from(true), Value::from("x")]),
        );
        let v = Value::Object(map);
        // BTreeMap keys come out alphabetically regardless of insertion
        // order, so output is deterministic.
        assert_eq!(to_string(&v), r#"{"a":1,"b":2.5,"c":[null,true,"x"]}"#);
        assert_eq!(v.to_string(), to_string(&v));
    }

    #[test]
    fn serializes_pretty() {
        let mut inner = Map::new();
        inner.insert("k".into(), Value::from(7i64));
        let mut map = Map::new();
        map.insert("obj".into(), Value::Object(inner));
        map.insert("arr".into(), Value::Array(vec![Value::from(1u64)]));
        map.insert("empty".into(), Value::Object(Map::new()));
        let pretty = to_string_pretty(&Value::Object(map));
        assert_eq!(
            pretty,
            "{\n  \"arr\": [\n    1\n  ],\n  \"empty\": {},\n  \"obj\": {\n    \"k\": 7\n  }\n}"
        );
    }

    #[test]
    fn serialization_roundtrips_through_the_parser() {
        let doc = r#"{"a":[1,2,{"b":"c\nd"}],"big":18446744073709551615,"f":0.014046,"n":-7,"z":null}"#;
        let v = from_str(doc).unwrap();
        assert_eq!(to_string(&v), doc);
        assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::from("quote\" slash\\ tab\t ctrl\u{1} nl\n");
        let s = to_string(&v);
        assert_eq!(s, "\"quote\\\" slash\\\\ tab\\t ctrl\\u0001 nl\\n\"");
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn number_forms_serialize_exactly() {
        assert_eq!(to_string(&Value::from(u64::MAX)), "18446744073709551615");
        assert_eq!(to_string(&Value::from(i64::MIN)), "-9223372036854775808");
        assert_eq!(to_string(&Value::from(0.25)), "0.25");
        // Non-finite floats cannot appear in JSON; they coerce to null.
        assert_eq!(to_string(&Value::from(f64::NAN)), "null");
        assert_eq!(to_string(&Value::from(f64::INFINITY)), "null");
    }
}
