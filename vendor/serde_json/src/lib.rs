//! Offline placeholder for the `serde_json` crate.
//!
//! Only referenced by test files that are fully gated behind the
//! default-off `serde` feature (`#![cfg(feature = "serde")]`), so no
//! symbols are required — this crate exists purely so dependency
//! resolution succeeds without registry access.

#![forbid(unsafe_code)]
