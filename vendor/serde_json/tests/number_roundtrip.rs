//! Round-trip properties for the number codec.
//!
//! The plan-artifact registry hashes canonical JSON bytes, so a number
//! that changes its spelling between serializations silently breaks
//! content addressing. These properties pin the contract:
//!
//! * integer texts (all of `u64`, all of `i64`) round-trip exactly;
//! * one parse→serialize pass is a *canonicalization*: applying it
//!   again never changes the bytes (fixpoint), for every finite float
//!   bit pattern and every grammar-valid number text;
//! * `-0.0` keeps its sign, and integral floats keep a float form.

use proptest::prelude::*;
use serde_json::{from_str, to_string, Value};

/// One parse→serialize pass.
fn canonical(text: &str) -> String {
    let value = from_str(text).unwrap_or_else(|e| panic!("`{text}` must parse: {e}"));
    to_string(&value)
}

proptest! {
    #[test]
    fn u64_texts_round_trip_exactly(v in 0u64..=u64::MAX) {
        let text = v.to_string();
        prop_assert_eq!(canonical(&text), text);
    }

    #[test]
    fn i64_texts_round_trip_exactly(v in i64::MIN..=i64::MAX) {
        let text = v.to_string();
        prop_assert_eq!(canonical(&text), text);
    }

    #[test]
    fn float_bit_patterns_reach_a_fixpoint(bits in 0u64..=u64::MAX) {
        let f = f64::from_bits(bits);
        if !f.is_finite() {
            // JSON cannot represent NaN/inf; from_f64 rejects them.
            prop_assert!(serde_json::Number::from_f64(f).is_none());
            return Ok(());
        }
        let first = to_string(&Value::from(f));
        let second = canonical(&first);
        prop_assert_eq!(&second, &first, "serialize is not canonical for {}", f);
        // And the canonical text still denotes the same f64.
        let reparsed = from_str(&first).unwrap().as_f64().unwrap();
        prop_assert!(
            reparsed == f || (reparsed == 0.0 && f == 0.0),
            "value drift: {} reparsed as {}",
            f,
            reparsed
        );
    }

    #[test]
    fn number_texts_canonicalize_to_a_fixpoint(
        int_part in 0u64..=u64::MAX,
        frac_part in 0u64..10_000,
        negative in 0u8..2,
        with_frac in 0u8..2,
    ) {
        // Grammar-valid decimal texts, including beyond-u64 integer
        // literals and trailing-zero fractions: one pass may rewrite
        // them, the second pass must not.
        let mut text = String::new();
        if negative == 1 {
            text.push('-');
        }
        text.push_str(&int_part.to_string());
        if with_frac == 1 {
            text.push('.');
            text.push_str(&frac_part.to_string());
        }
        let once = canonical(&text);
        let twice = canonical(&once);
        prop_assert_eq!(&twice, &once, "not a fixpoint for input `{}`", text);
    }
}

#[test]
fn boundary_integers_survive_exactly() {
    for text in [
        "18446744073709551615", // u64::MAX
        "9223372036854775807",  // i64::MAX
        "-9223372036854775808", // i64::MIN
        "0",
        "-1",
    ] {
        assert_eq!(canonical(text), text);
        assert_eq!(canonical(&canonical(text)), text);
    }
}

#[test]
fn negative_zero_keeps_its_sign() {
    let v = from_str("-0.0").unwrap();
    assert!(v.as_f64().unwrap().is_sign_negative());
    let text = to_string(&v);
    assert_eq!(text, "-0.0");
    // Stable forever after.
    assert_eq!(canonical(&text), text);
    // The float constructor agrees with the parser.
    assert_eq!(to_string(&Value::from(-0.0)), "-0.0");
    // Bare "-0" canonicalizes into the float form, then stays put.
    assert_eq!(canonical("-0"), "-0.0");
    assert_eq!(canonical("-0.000"), "-0.0");
    // Positive zero is still the integer it always was.
    assert_eq!(canonical("0"), "0");
}

#[test]
fn integral_floats_keep_a_float_form() {
    assert_eq!(to_string(&Value::from(2.0)), "2.0");
    assert_eq!(to_string(&Value::from(-5.0)), "-5.0");
    assert_eq!(canonical("2.0"), "2.0");
    assert_eq!(canonical("1e3"), "1000.0");
    assert_eq!(canonical("1000.0"), "1000.0");
    // Integer texts are untouched — only float-typed values gain ".0".
    assert_eq!(canonical("2"), "2");
}

#[test]
fn beyond_u64_literals_converge_after_one_pass() {
    // 2^64 does not fit any integer view; it becomes a float and must
    // then hold still.
    let once = canonical("18446744073709551616");
    assert_eq!(canonical(&once), once);
    assert!(once.contains('.') || once.contains('e'), "float form: {once}");
}
