//! Offline placeholder for the `serde` crate.
//!
//! The workspace's `serde` support is an **optional, default-off**
//! feature on every crate (`#[cfg_attr(feature = "serde", ...)]`), and
//! the build environment has no crates.io access. This placeholder
//! exists so dependency resolution succeeds; it declares the trait
//! names but no derive macros, so building the workspace **with** the
//! `serde` feature enabled requires restoring the real crate.

#![forbid(unsafe_code)]

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker standing in for `serde::Serializer` (namespace only).
pub mod ser {}

/// Marker standing in for `serde::Deserializer` (namespace only).
pub mod de {}
