//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], uniform
//! [`Rng::gen_range`] over half-open and inclusive integer ranges,
//! [`Rng::gen_ratio`], and [`seq::SliceRandom::choose`].
//!
//! The generator is SplitMix64 — deterministic, fast and well mixed. It
//! is **not** the same stream as upstream `StdRng` (ChaCha12); nothing
//! in the workspace depends on the exact stream, only on determinism
//! per seed, which all synthetic-benchmark tests assert.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is
/// provided; no byte-array seeding is used in this workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that a uniform range sample can produce.
///
/// Implemented for the integer types the workspace draws: `usize`,
/// `u32`, `u64`, `i64`.
pub trait UniformSample: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. `high > low` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. `high >= low` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let width = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add((rng.next_u64() % width) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let width = (high as u64).wrapping_sub(low as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % (width + 1)) as $t)
            }
        }
    )*};
}

impl_uniform_unsigned!(usize, u32, u64);

impl UniformSample for i64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let width = (high as u64).wrapping_sub(low as u64);
        low.wrapping_add((rng.next_u64() % width) as i64)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let width = (high as u64).wrapping_sub(low as u64);
        if width == u64::MAX {
            return rng.next_u64() as i64;
        }
        low.wrapping_add((rng.next_u64() % (width + 1)) as i64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(numerator <= denominator, "gen_ratio needs p <= 1");
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1u64..=4);
            assert!((1..=4).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn ratio_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..50).all(|_| rng.gen_ratio(1, 1)));
        assert!((0..50).all(|_| !rng.gen_ratio(0, 5)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [10, 20, 30];
        let empty: [i32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
