//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the subset of the criterion 0.5 API the
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`] / `bench_function` /
//! `bench_with_input` / `finish`, [`Bencher::iter`], [`BenchmarkId`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a *functional* micro-harness, not just a compile shim: each
//! benchmark is warmed up once, then timed for `sample_size` samples,
//! and the median per-iteration time is printed. There is no
//! statistical analysis, HTML report or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one parameterized benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `f` once per timed iteration, recording one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed().as_secs_f64());
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // One warm-up, then `sample_size` timed samples; report the
        // median so one slow outlier doesn't skew the line.
        let mut warmup = Bencher::default();
        f(&mut warmup);
        let mut bencher = Bencher::default();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut samples = bencher.samples;
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{}/{id}: median {:.3} ms over {} samples",
            self.name,
            median * 1e3,
            samples.len()
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        self.run(&id.to_string(), f);
    }

    /// Benchmarks `f` with an input value threaded through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Ends the group (printing happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
