//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the subset of the proptest 1.x API the workspace's
//! property tests use: the [`proptest!`] macro with `pat in strategy`
//! bindings and an optional `#![proptest_config(..)]` header,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`], range and
//! tuple strategies, [`strategy::Just`], `prop_map`/`prop_flat_map`
//! combinators, [`collection::vec`]/[`collection::btree_set`] and
//! [`sample::select`].
//!
//! Unlike upstream proptest there is **no shrinking** — a failing case
//! panics with the case index, and the generator is deterministic per
//! (test name, case index), so failures reproduce exactly on re-run.
//! Case count defaults to 64 (overridable with `PROPTEST_CASES`).

#![forbid(unsafe_code)]

/// Test-runner configuration, RNG plumbing and assertion failures.
pub mod test_runner {
    use core::fmt;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a raw state word.
        #[must_use]
        pub fn new(state: u64) -> Self {
            TestRng { state }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Derives the RNG for one test case: FNV-1a over the test name
    /// mixed with the case index, so every (test, case) pair replays
    /// the same inputs across runs.
    #[must_use]
    pub fn rng_for(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h ^ (u64::from(case) << 1 | 1))
    }

    /// A failed `prop_assert*` assertion.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// The [`Strategy`](strategy::Strategy) trait and core combinators.
pub mod strategy {
    use core::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Integer types whose ranges act as strategies.
    pub trait RangeValue: Copy {
        /// Uniform draw from `[low, high)`.
        fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self;
        /// Uniform draw from `[low, high]`.
        fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    let width = (high as u64).wrapping_sub(low as u64);
                    assert!(width > 0, "cannot sample empty range");
                    low.wrapping_add(rng.below(width) as $t)
                }
                fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    let width = (high as u64).wrapping_sub(low as u64);
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(rng.below(width + 1) as $t)
                }
            }
        )*};
    }

    impl_range_value!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::draw(rng, self.start, self.end)
        }
    }

    impl<T: RangeValue> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::draw_inclusive(rng, *self.start(), *self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

/// Collection strategies: random `Vec`s and `BTreeSet`s.
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by [`vec`] and [`btree_set`]: an exact `usize`
    /// or a half-open `Range<usize>`.
    pub trait SizeRange {
        /// Picks the target length for one generated collection.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty collection size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>`; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates vectors of `element` values with length drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; see [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates ordered sets of `element` values with target size
    /// drawn from `size`. If the element domain is too small the set
    /// may come out smaller than the target (bounded retries), matching
    /// upstream proptest's duplicate-rejection behaviour.
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Sampling strategies over fixed option sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly selects one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias mirroring upstream's `prop::` re-exports.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__e) = __result {
                    ::core::panic!(
                        "proptest case {} of {} failed: {}",
                        __case,
                        stringify!($name),
                        __e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Asserts two expressions differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: {:?}",
            __l
        );
    }};
}
