//! Ordering pins: the audited atomic protocol of the serving path,
//! extracted from the **real sources** via the lint engine's public
//! fact collector and pinned exactly.
//!
//! Every gate in this workspace follows one pattern, proven by the
//! `paraconv-analyze` model harnesses (`flight-ring`,
//! `publish-acquire`): the flag itself publishes nothing — it is
//! stored and loaded `Relaxed`, and the data behind it is ordered by
//! a mutex. Strengthening one side without the other (the asymmetry
//! this PR removed from `fault::hook`) re-introduces the
//! `atomic-ordering` lint finding and fails this pin.

use std::path::Path;

use paraconv_verify::lint::dataflow::{atomic_sites, AtomicOp, AtomicOrd, AtomicSite};

fn sites_of(rel: &str) -> Vec<AtomicSite> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let path = root.join(rel);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    atomic_sites(&source)
}

/// Asserts every site on `receiver` has the pinned ordering and that
/// the expected operations are present.
fn pin(rel: &str, receiver: &str, ordering: AtomicOrd, expect_ops: &[AtomicOp]) {
    let sites: Vec<AtomicSite> = sites_of(rel)
        .into_iter()
        .filter(|s| s.receiver == receiver)
        .collect();
    assert!(
        !sites.is_empty(),
        "{rel}: no atomic sites on `{receiver}` — pin out of date"
    );
    for s in &sites {
        assert_eq!(
            s.ordering, ordering,
            "{rel}:{}: `{receiver}.{:?}` drifted from the audited {ordering:?}",
            s.line, s.op
        );
    }
    for op in expect_ops {
        assert!(
            sites.iter().any(|s| s.op == *op),
            "{rel}: expected a {op:?} on `{receiver}`"
        );
    }
}

#[test]
fn obs_recorder_gate_is_symmetric_relaxed() {
    pin(
        "obs/src/recorder.rs",
        "ENABLED",
        AtomicOrd::Relaxed,
        &[AtomicOp::Load, AtomicOp::Store],
    );
}

#[test]
fn obs_recorder_counters_are_relaxed_rmw() {
    pin(
        "obs/src/recorder.rs",
        "LOGICAL_SEQ",
        AtomicOrd::Relaxed,
        &[AtomicOp::Rmw],
    );
    pin(
        "obs/src/recorder.rs",
        "NEXT_TID",
        AtomicOrd::Relaxed,
        &[AtomicOp::Rmw],
    );
}

#[test]
fn flight_recorder_gate_is_symmetric_relaxed() {
    pin(
        "obs/src/flight.rs",
        "FLIGHT_ACTIVE",
        AtomicOrd::Relaxed,
        &[AtomicOp::Load, AtomicOp::Store],
    );
}

#[test]
fn fault_hook_gate_is_symmetric_relaxed() {
    // This is the site the dataflow linter flagged (SeqCst store vs
    // Relaxed load) and this PR normalized; the pin keeps it fixed.
    pin(
        "fault/src/hook.rs",
        "ACTIVE",
        AtomicOrd::Relaxed,
        &[AtomicOp::Load, AtomicOp::Store],
    );
}

#[test]
fn sweep_work_cursor_is_relaxed_rmw() {
    pin(
        "core/src/sweep.rs",
        "cursor",
        AtomicOrd::Relaxed,
        &[AtomicOp::Rmw],
    );
}

#[test]
fn no_lone_acquire_or_release_sites_anywhere_audited() {
    // A Release store or Acquire load appearing in these files without
    // its counterpart means a new protocol was introduced half-way;
    // force the author to pin it here.
    for rel in [
        "obs/src/recorder.rs",
        "obs/src/flight.rs",
        "fault/src/hook.rs",
        "core/src/sweep.rs",
    ] {
        for s in sites_of(rel) {
            assert_eq!(
                s.ordering,
                AtomicOrd::Relaxed,
                "{rel}:{}: unaudited non-Relaxed site on `{}`",
                s.line,
                s.receiver
            );
        }
    }
}
