//! Fixture self-tests for the lint engine: every rule has a positive
//! fixture that fires and an allow-annotated twin that stays silent,
//! plus the path- and test-scoping exemptions, the cross-file
//! dataflow rules, and the lexer's multi-line edge cases.

use paraconv_verify::lint::{lint_source, lint_workspace, rules};

const LIB: &str = "crates/x/src/lib.rs";
const SIM: &str = "crates/pim/src/sim.rs";

fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src).into_iter().map(|f| f.rule).collect()
}

#[test]
fn no_unwrap_fires_on_each_form() {
    assert_eq!(
        rules_fired(LIB, "fn f() { Some(1).unwrap(); }"),
        [rules::NO_UNWRAP]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { Some(1).expect(\"x\"); }"),
        [rules::NO_UNWRAP]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { panic!(\"boom\"); }"),
        [rules::NO_UNWRAP]
    );
}

#[test]
fn no_unwrap_allow_annotation_silences() {
    let src = "
        fn f() {
            // lint: allow(no-unwrap) — value exists by construction
            Some(1).unwrap();
            // lint: allow(no-unwrap) — unreachable without a prior bug
            panic!(\"boom\");
        }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn no_unwrap_same_line_annotation_silences() {
    let src = "fn f() { Some(1).unwrap(); } // lint: allow(no-unwrap) — fixture";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn no_unwrap_skips_binaries_and_tests() {
    let src = "fn main() { std::fs::read(\"x\").unwrap(); }";
    assert!(lint_source("crates/x/src/bin/tool.rs", src).is_empty());

    let test_src = "
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { Some(1).unwrap(); }
        }
    ";
    assert!(lint_source(LIB, test_src).is_empty());
}

#[test]
fn unchecked_index_fires_only_on_hot_paths() {
    let src = "fn f(v: &[u64], i: usize) -> u64 { v[i] }";
    assert_eq!(rules_fired(SIM, src), [rules::UNCHECKED_INDEX]);
    assert_eq!(
        rules_fired("crates/alloc/src/dp.rs", src),
        [rules::UNCHECKED_INDEX]
    );
    assert!(lint_source(LIB, src).is_empty());
    assert!(lint_source("crates/graph/src/graph.rs", src).is_empty());
}

#[test]
fn unchecked_index_allow_annotation_silences() {
    let src = "
        fn f(v: &[u64], i: usize) -> u64 {
            // lint: allow(unchecked-index) — i < v.len() checked above
            v[i]
        }
    ";
    assert!(lint_source(SIM, src).is_empty());
}

#[test]
fn unchecked_index_ignores_macros_types_and_attributes() {
    // `vec![...]` has a `!` before the bracket, `[u64; 4]` follows a
    // punct, and attribute brackets are copied wholesale.
    let src = "
        #[derive(Debug)]
        struct S;
        fn f() -> Vec<u64> { let _a: [u64; 4] = [0; 4]; vec![1, 2] }
    ";
    assert!(lint_source(SIM, src).is_empty());
}

#[test]
fn wallclock_rng_fires_on_each_source() {
    assert_eq!(
        rules_fired(LIB, "fn f() { let _t = std::time::Instant::now(); }"),
        [rules::WALLCLOCK_RNG]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { let _t = SystemTime::now(); }"),
        [rules::WALLCLOCK_RNG]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { let _r = rand::thread_rng(); }"),
        [rules::WALLCLOCK_RNG]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { let _r = SmallRng::from_entropy(); }"),
        [rules::WALLCLOCK_RNG]
    );
}

#[test]
fn wallclock_rng_exempts_obs_and_binaries() {
    let src = "fn f() { let _t = std::time::Instant::now(); }";
    assert!(lint_source("crates/obs/src/recorder.rs", src).is_empty());
    assert!(lint_source("crates/x/src/bin/tool.rs", src).is_empty());
}

#[test]
fn wallclock_rng_allow_annotation_silences() {
    let src = "
        fn f() {
            // lint: allow(wallclock-rng) — coarse progress logging only
            let _t = std::time::Instant::now();
        }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn nan_unsafe_cmp_fires_on_partial_cmp_and_float_equality() {
    assert_eq!(
        rules_fired(LIB, "fn f(a: f64, b: f64) { a.partial_cmp(&b); }"),
        [rules::NAN_UNSAFE_CMP]
    );
    assert_eq!(
        rules_fired(LIB, "fn f(a: f64) -> bool { a == 1.0 }"),
        [rules::NAN_UNSAFE_CMP]
    );
    assert_eq!(
        rules_fired(LIB, "fn f(a: f64) -> bool { 0.5 != a }"),
        [rules::NAN_UNSAFE_CMP]
    );
}

#[test]
fn nan_unsafe_cmp_leaves_safe_comparisons_alone() {
    assert!(lint_source(LIB, "fn f(a: f64, b: f64) { a.total_cmp(&b); }").is_empty());
    assert!(lint_source(LIB, "fn f(a: u64) -> bool { a == 1 }").is_empty());
    assert!(lint_source(LIB, "fn f(a: u64, b: u64) -> bool { a != b }").is_empty());
    assert!(lint_source(LIB, "fn f(a: u64) -> bool { a <= 1 }").is_empty());
}

#[test]
fn nan_unsafe_cmp_allow_annotation_silences() {
    let src = "
        fn f(a: f64) -> bool {
            // lint: allow(nan-unsafe-cmp) — sentinel is exact by contract
            a == 1.0
        }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn allow_all_silences_every_rule() {
    let src = "
        fn f(v: &[f64], i: usize) -> bool {
            // lint: allow(all) — fixture exercising the blanket escape
            v[i].partial_cmp(&1.0).unwrap() == std::cmp::Ordering::Equal
        }
    ";
    assert!(lint_source(SIM, src).is_empty());
}

#[test]
fn findings_report_rule_line_and_message() {
    let findings = lint_source(LIB, "\n\nfn f() { Some(1).unwrap(); }");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, rules::NO_UNWRAP);
    assert_eq!(findings[0].line, 3);
    assert!(findings[0].message.contains("unwrap"));
    assert!(findings[0].to_string().contains("[no-unwrap]"));
    assert!(rules::ALL_RULES.contains(&findings[0].rule));
}

#[test]
fn comments_and_strings_never_fire() {
    let src = "
        // a comment mentioning .unwrap() and panic! goes unlinted
        /* Instant::now() in a block comment too */
        fn f() -> &'static str { \"contains .unwrap() and panic!\" }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

// ---- dataflow: atomic-ordering ----

fn workspace(files: &[(&str, &str)]) -> Vec<(String, &'static str, u32)> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_workspace(&owned)
        .into_iter()
        .map(|(p, f)| (p, f.rule, f.line))
        .collect()
}

#[test]
fn atomic_ordering_fires_on_relaxed_load_of_released_atomic() {
    // The publisher lives in another file: only the workspace pass
    // can pair them.
    let writer = "fn publish() { GATE.store(true, Ordering::Release); }";
    let reader = "fn check() -> bool { GATE.load(Ordering::Relaxed) }";
    let found = workspace(&[("crates/a/src/w.rs", writer), ("crates/b/src/r.rs", reader)]);
    assert_eq!(
        found,
        [("crates/b/src/r.rs".to_string(), rules::ATOMIC_ORDERING, 1)]
    );
}

#[test]
fn atomic_ordering_fires_on_relaxed_store_against_acquire_load() {
    let writer = "fn publish() { GATE.store(true, Ordering::Relaxed); }";
    let reader = "fn check() -> bool { GATE.load(Ordering::Acquire) }";
    let found = workspace(&[("crates/a/src/w.rs", writer), ("crates/b/src/r.rs", reader)]);
    assert_eq!(
        found,
        [("crates/a/src/w.rs".to_string(), rules::ATOMIC_ORDERING, 1)]
    );
}

#[test]
fn atomic_ordering_stays_silent_on_symmetric_protocols() {
    // Fully relaxed gate (mutex elsewhere orders the data) — the
    // project's own pattern.
    let relaxed = "
        fn enable() { GATE.store(true, Ordering::Relaxed); }
        fn check() -> bool { GATE.load(Ordering::Relaxed) }
    ";
    assert!(lint_source(LIB, relaxed).is_empty());
    // Proper Release/Acquire pairing.
    let paired = "
        fn publish() { GATE.store(true, Ordering::Release); }
        fn check() -> bool { GATE.load(Ordering::Acquire) }
    ";
    assert!(lint_source(LIB, paired).is_empty());
    // Different receivers never pair up.
    let unrelated = "
        fn publish() { GATE_A.store(true, Ordering::Release); }
        fn check() -> bool { GATE_B.load(Ordering::Relaxed) }
    ";
    assert!(lint_source(LIB, unrelated).is_empty());
}

#[test]
fn atomic_ordering_relaxed_rmw_counter_is_fine() {
    // A stat counter bumped and read Relaxed has no publisher.
    let src = "
        fn bump() { HITS.fetch_add(1, Ordering::Relaxed); }
        fn read() -> u64 { HITS.load(Ordering::Relaxed) }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn atomic_ordering_message_names_the_other_site() {
    let src = "
        fn publish() { GATE.store(true, Ordering::Release); }
        fn check() -> bool { GATE.load(Ordering::Relaxed) }
    ";
    let findings = lint_source("crates/a/src/g.rs", src);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("crates/a/src/g.rs:2"));
    assert!(findings[0].message.contains("Release"));
}

// ---- dataflow: lock-order ----

#[test]
fn lock_order_fires_on_opposite_acquisition_orders_across_files() {
    let ab = "fn f() { let _a = lock_a.lock(); let _b = lock_b.lock(); }";
    let ba = "fn g() { let _b = lock_b.lock(); let _a = lock_a.lock(); }";
    let found = workspace(&[("crates/a/src/f.rs", ab), ("crates/b/src/g.rs", ba)]);
    let rules_hit: Vec<&str> = found.iter().map(|(_, r, _)| *r).collect();
    assert_eq!(rules_hit, [rules::LOCK_ORDER, rules::LOCK_ORDER]);
    // Both directions are reported, each citing the other file.
    assert!(found.iter().any(|(p, _, _)| p.ends_with("f.rs")));
    assert!(found.iter().any(|(p, _, _)| p.ends_with("g.rs")));
}

#[test]
fn lock_order_stays_silent_on_consistent_order_and_reacquisition() {
    let consistent = workspace(&[
        (
            "crates/a/src/f.rs",
            "fn f() { let _a = lock_a.lock(); let _b = lock_b.lock(); }",
        ),
        (
            "crates/b/src/g.rs",
            "fn g() { let _a = lock_a.lock(); let _b = lock_b.lock(); }",
        ),
    ]);
    assert!(consistent.is_empty());
    // Sequential re-acquisition of the same mutex in one function is
    // not an ordering edge.
    let same = "fn f() { { let _r = ring.lock(); } let _r = ring.lock(); }";
    assert!(lint_source(LIB, same).is_empty());
}

// ---- dataflow: nondet-iteration ----

#[test]
fn nondet_iteration_fires_on_hash_iteration_and_for_loops() {
    let src = "
        struct S { index: HashMap<u64, u64> }
        fn f(s: &S) -> Vec<u64> { s.index.keys().copied().collect() }
    ";
    assert_eq!(rules_fired(LIB, src), [rules::NONDET_ITERATION]);
    let for_loop = "
        fn f(seen: HashSet<u64>, out: &mut Vec<u64>) {
            for v in &seen { out.push(*v); }
        }
    ";
    assert_eq!(rules_fired(LIB, for_loop), [rules::NONDET_ITERATION]);
}

#[test]
fn nondet_iteration_exempts_sorted_and_order_insensitive_sinks() {
    let sorted = "
        fn f(index: HashMap<u64, u64>) -> Vec<u64> {
            let mut v: Vec<u64> = index.keys().copied().collect(); v.sort(); v
        }
    ";
    // The `.collect()` feeding a later sort still fires at the
    // iteration site unless the sort is in the same statement — keep
    // the fixture honest about what the heuristic sees.
    let inline_sorted = "
        fn f(index: HashMap<u64, u64>) -> u64 { index.values().copied().sum() }
    ";
    assert!(lint_source(LIB, inline_sorted).is_empty());
    let btree = "
        fn f(index: HashMap<u64, u64>) -> BTreeMap<u64, u64> {
            index.iter().map(|(&k, &v)| (k, v)).collect::<BTreeMap<u64, u64>>()
        }
    ";
    assert!(lint_source(LIB, btree).is_empty());
    // Non-hash containers never fire.
    let vec_iter = "fn f(v: Vec<u64>) -> u64 { v.iter().next().copied().unwrap_or(0) }";
    assert!(lint_source(LIB, vec_iter).is_empty());
    // `sorted` (collect-then-sort across statements) is a known
    // firing shape; annotate it in real code or sort inline.
    assert_eq!(rules_fired(LIB, sorted), [rules::NONDET_ITERATION]);
}

#[test]
fn nondet_iteration_allow_annotation_silences() {
    let src = "
        fn f(index: HashMap<u64, u64>) -> u64 {
            // lint: allow(nondet-iteration) — max is order-insensitive
            let mut best = 0; for (_, &v) in &index { if v > best { best = v; } } best
        }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

// ---- stale-allow ----

#[test]
fn stale_allow_fires_on_dead_annotations_and_unknown_rules() {
    let dead = "
        fn f() -> u64 {
            // lint: allow(no-unwrap) — nothing here unwraps anymore
            1
        }
    ";
    let findings = lint_source(LIB, dead);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, rules::STALE_ALLOW);
    assert_eq!(findings[0].line, 3);

    let unknown = "
        fn f() {
            // lint: allow(no-unwraps) — typo'd rule name
            Some(1).unwrap();
        }
    ";
    let findings = lint_source(LIB, unknown);
    // The typo'd allow suppresses nothing, so the unwrap fires too.
    let hit: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(hit, [rules::STALE_ALLOW, rules::NO_UNWRAP]);
    assert!(findings[0].message.contains("unknown rule"));
}

#[test]
fn stale_allow_stays_silent_when_the_rule_fires_or_in_test_code() {
    let live = "
        fn f() {
            // lint: allow(no-unwrap) — value exists by construction
            Some(1).unwrap();
        }
    ";
    assert!(lint_source(LIB, live).is_empty());
    // Annotations on stripped test code are never audited.
    let test_code = "
        #[cfg(test)]
        mod tests {
            fn helper() {
                // lint: allow(no-unwrap) — test helper
                Some(1).unwrap();
            }
        }
    ";
    assert!(lint_source(LIB, test_code).is_empty());
}

#[test]
fn stale_allow_has_its_own_escape_hatch() {
    let src = "
        fn f() -> u64 {
            // lint: allow(stale-allow) — kept while the migration lands
            // lint: allow(no-unwrap) — nothing unwraps during the migration window
            1
        }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

// ---- lexer edge cases ----

#[test]
fn nested_block_comments_three_deep_are_stripped() {
    let src = "
        /* one /* two /* three .unwrap() */ still two */ still one */
        fn f() -> u64 { 1 }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn raw_strings_containing_comment_closers_do_not_derail_the_lexer() {
    // If the lexer mis-handled the `*/` or `//` inside the raw string
    // it would swallow the `.unwrap()` that follows.
    let src = "fn f() { let _s = r#\"*/ // not a comment \"#; Some(1).unwrap(); }";
    assert_eq!(rules_fired(LIB, src), [rules::NO_UNWRAP]);
}

#[test]
fn multiline_raw_strings_keep_line_numbers_straight() {
    let src =
        "fn f() {\n    let _s = r#\"line one\nline two\nline three\"#;\n    Some(1).unwrap();\n}\n";
    let findings = lint_source(LIB, src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 5, "unwrap sits on source line 5");
}

#[test]
fn escaped_newline_string_continuations_keep_line_numbers_straight() {
    // A `\` before the newline continues the string; the newline is
    // still a source line.
    let src = "fn f() {\n    let _s = \"continued \\\nhere\";\n    Some(1).unwrap();\n}\n";
    let findings = lint_source(LIB, src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 4, "unwrap sits on source line 4");
}

#[test]
fn doc_comments_do_not_register_allow_annotations() {
    // Prose *describing* the escape hatch must not create one — nor
    // count as stale.
    let src = "
        /// Use `// lint: allow(no-unwrap)` on the line above the call.
        fn f() { Some(1).unwrap(); }
        //! And `// lint: allow(all)` suppresses every rule.
    ";
    assert_eq!(rules_fired(LIB, src), [rules::NO_UNWRAP]);
    // A `////` banner is a plain comment, not a doc comment — but
    // plain comments *do* register.
    let banner = "
        //// lint: allow(no-unwrap) — banner comment still counts
        fn f() { Some(1).unwrap(); }
    ";
    assert!(lint_source(LIB, banner).is_empty());
}
