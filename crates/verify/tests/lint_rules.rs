//! Fixture self-tests for the lint engine: every rule has a positive
//! fixture that fires and an allow-annotated twin that stays silent,
//! plus the path- and test-scoping exemptions.

use paraconv_verify::lint::{lint_source, rules};

const LIB: &str = "crates/x/src/lib.rs";
const SIM: &str = "crates/pim/src/sim.rs";

fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src).into_iter().map(|f| f.rule).collect()
}

#[test]
fn no_unwrap_fires_on_each_form() {
    assert_eq!(
        rules_fired(LIB, "fn f() { Some(1).unwrap(); }"),
        [rules::NO_UNWRAP]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { Some(1).expect(\"x\"); }"),
        [rules::NO_UNWRAP]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { panic!(\"boom\"); }"),
        [rules::NO_UNWRAP]
    );
}

#[test]
fn no_unwrap_allow_annotation_silences() {
    let src = "
        fn f() {
            // lint: allow(no-unwrap) — value exists by construction
            Some(1).unwrap();
            // lint: allow(no-unwrap) — unreachable without a prior bug
            panic!(\"boom\");
        }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn no_unwrap_same_line_annotation_silences() {
    let src = "fn f() { Some(1).unwrap(); } // lint: allow(no-unwrap) — fixture";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn no_unwrap_skips_binaries_and_tests() {
    let src = "fn main() { std::fs::read(\"x\").unwrap(); }";
    assert!(lint_source("crates/x/src/bin/tool.rs", src).is_empty());

    let test_src = "
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { Some(1).unwrap(); }
        }
    ";
    assert!(lint_source(LIB, test_src).is_empty());
}

#[test]
fn unchecked_index_fires_only_on_hot_paths() {
    let src = "fn f(v: &[u64], i: usize) -> u64 { v[i] }";
    assert_eq!(rules_fired(SIM, src), [rules::UNCHECKED_INDEX]);
    assert_eq!(
        rules_fired("crates/alloc/src/dp.rs", src),
        [rules::UNCHECKED_INDEX]
    );
    assert!(lint_source(LIB, src).is_empty());
    assert!(lint_source("crates/graph/src/graph.rs", src).is_empty());
}

#[test]
fn unchecked_index_allow_annotation_silences() {
    let src = "
        fn f(v: &[u64], i: usize) -> u64 {
            // lint: allow(unchecked-index) — i < v.len() checked above
            v[i]
        }
    ";
    assert!(lint_source(SIM, src).is_empty());
}

#[test]
fn unchecked_index_ignores_macros_types_and_attributes() {
    // `vec![...]` has a `!` before the bracket, `[u64; 4]` follows a
    // punct, and attribute brackets are copied wholesale.
    let src = "
        #[derive(Debug)]
        struct S;
        fn f() -> Vec<u64> { let _a: [u64; 4] = [0; 4]; vec![1, 2] }
    ";
    assert!(lint_source(SIM, src).is_empty());
}

#[test]
fn wallclock_rng_fires_on_each_source() {
    assert_eq!(
        rules_fired(LIB, "fn f() { let _t = std::time::Instant::now(); }"),
        [rules::WALLCLOCK_RNG]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { let _t = SystemTime::now(); }"),
        [rules::WALLCLOCK_RNG]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { let _r = rand::thread_rng(); }"),
        [rules::WALLCLOCK_RNG]
    );
    assert_eq!(
        rules_fired(LIB, "fn f() { let _r = SmallRng::from_entropy(); }"),
        [rules::WALLCLOCK_RNG]
    );
}

#[test]
fn wallclock_rng_exempts_obs_and_binaries() {
    let src = "fn f() { let _t = std::time::Instant::now(); }";
    assert!(lint_source("crates/obs/src/recorder.rs", src).is_empty());
    assert!(lint_source("crates/x/src/bin/tool.rs", src).is_empty());
}

#[test]
fn wallclock_rng_allow_annotation_silences() {
    let src = "
        fn f() {
            // lint: allow(wallclock-rng) — coarse progress logging only
            let _t = std::time::Instant::now();
        }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn nan_unsafe_cmp_fires_on_partial_cmp_and_float_equality() {
    assert_eq!(
        rules_fired(LIB, "fn f(a: f64, b: f64) { a.partial_cmp(&b); }"),
        [rules::NAN_UNSAFE_CMP]
    );
    assert_eq!(
        rules_fired(LIB, "fn f(a: f64) -> bool { a == 1.0 }"),
        [rules::NAN_UNSAFE_CMP]
    );
    assert_eq!(
        rules_fired(LIB, "fn f(a: f64) -> bool { 0.5 != a }"),
        [rules::NAN_UNSAFE_CMP]
    );
}

#[test]
fn nan_unsafe_cmp_leaves_safe_comparisons_alone() {
    assert!(lint_source(LIB, "fn f(a: f64, b: f64) { a.total_cmp(&b); }").is_empty());
    assert!(lint_source(LIB, "fn f(a: u64) -> bool { a == 1 }").is_empty());
    assert!(lint_source(LIB, "fn f(a: u64, b: u64) -> bool { a != b }").is_empty());
    assert!(lint_source(LIB, "fn f(a: u64) -> bool { a <= 1 }").is_empty());
}

#[test]
fn nan_unsafe_cmp_allow_annotation_silences() {
    let src = "
        fn f(a: f64) -> bool {
            // lint: allow(nan-unsafe-cmp) — sentinel is exact by contract
            a == 1.0
        }
    ";
    assert!(lint_source(LIB, src).is_empty());
}

#[test]
fn allow_all_silences_every_rule() {
    let src = "
        fn f(v: &[f64], i: usize) -> bool {
            // lint: allow(all) — fixture exercising the blanket escape
            v[i].partial_cmp(&1.0).unwrap() == std::cmp::Ordering::Equal
        }
    ";
    assert!(lint_source(SIM, src).is_empty());
}

#[test]
fn findings_report_rule_line_and_message() {
    let findings = lint_source(LIB, "\n\nfn f() { Some(1).unwrap(); }");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, rules::NO_UNWRAP);
    assert_eq!(findings[0].line, 3);
    assert!(findings[0].message.contains("unwrap"));
    assert!(findings[0].to_string().contains("[no-unwrap]"));
    assert!(rules::ALL_RULES.contains(&findings[0].rule));
}

#[test]
fn comments_and_strings_never_fire() {
    let src = "
        // a comment mentioning .unwrap() and panic! goes unlinted
        /* Instant::now() in a block comment too */
        fn f() -> &'static str { \"contains .unwrap() and panic!\" }
    ";
    assert!(lint_source(LIB, src).is_empty());
}
