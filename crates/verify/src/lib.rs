//! # paraconv-verify
//!
//! Static analysis for the Para-CONV reproduction, in two heads:
//!
//! 1. **Static plan verifier** — proves properties of a
//!    [`ParaConvOutcome`] without simulating it:
//!    * [`retime_check`] — retiming legality and sufficiency
//!      (Bellman-style constraint check over every edge);
//!    * [`occupancy`] — abstract-interpretation steady-state bounds on
//!      PE-cache, iFIFO and vault occupancy **over all iterations**,
//!      proven `bound ≤ capacity`;
//!    * [`dp_check`] — the §3.3 DP's invariants (profit monotonicity,
//!      greedy dominance, reconstruction consistency) re-checked on an
//!      independently derived instance.
//!
//!    [`verify_outcome`] runs all three; [`verify_run`] additionally
//!    asserts the static bounds dominate a simulation report's observed
//!    high-water marks (the differential link to the runtime auditor).
//!
//! 2. **Project lint engine** — [`lint`], a token-level scanner over
//!    workspace sources with no external dependencies, shipped as the
//!    `paraconv-verify` binary. See the module docs for the rule set
//!    and the `// lint: allow(...)` escape hatch.
//!
//! The verifier never panics: degenerate inputs (zero-capacity caches,
//! edgeless graphs, malformed kernels) surface as structured
//! [`VerifyError`] diagnostics.
//!
//! # Examples
//!
//! ```
//! use paraconv_graph::examples;
//! use paraconv_pim::PimConfig;
//! use paraconv_sched::ParaConvScheduler;
//! use paraconv_verify::verify_outcome;
//!
//! let g = examples::motivational();
//! let cfg = PimConfig::neurocube(8)?;
//! let outcome = ParaConvScheduler::new(cfg.clone()).schedule(&g, 10)?;
//! let report = verify_outcome(&g, &outcome, &cfg)?;
//! assert!(report.cache_bound <= report.cache_capacity);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod diag;
pub mod dp_check;
pub mod lint;
pub mod occupancy;
pub mod retime_check;

pub use diag::{RetimingViolation, VerifyError, VerifyReport};
pub use dp_check::{check_dp_invariants, DpCheck};
pub use occupancy::{occupancy_bounds, OccupancyBounds, PeakBound, PhaseProfile};
pub use retime_check::check_retiming;

use paraconv_graph::TaskGraph;
use paraconv_pim::{PeId, PimConfig, SimReport};
use paraconv_sched::ParaConvOutcome;

/// Degenerate-input guard shared by every check: a kernel with no
/// steady state or built for a different graph is reported as a
/// structured diagnostic before any accessor can panic.
pub(crate) fn guard_shape(graph: &TaskGraph, outcome: &ParaConvOutcome) -> Result<(), VerifyError> {
    let kernel = &outcome.kernel;
    if kernel.period() == 0 || kernel.copies() == 0 {
        return Err(VerifyError::DegenerateKernel {
            period: kernel.period(),
            copies: kernel.copies(),
        });
    }
    if kernel.node_count() != graph.node_count() {
        return Err(VerifyError::ShapeMismatch {
            kernel_nodes: kernel.node_count(),
            graph_nodes: graph.node_count(),
        });
    }
    Ok(())
}

/// Statically verifies an outcome: retiming legality and sufficiency,
/// steady-state occupancy bounds against the architecture's
/// capacities, and the DP invariants. No simulation is run.
///
/// # Errors
///
/// Returns the first failed check as a [`VerifyError`]; degenerate
/// inputs yield diagnostics, never panics.
pub fn verify_outcome(
    graph: &TaskGraph,
    outcome: &ParaConvOutcome,
    config: &PimConfig,
) -> Result<VerifyReport, VerifyError> {
    guard_shape(graph, outcome)?;
    // Degraded capacity profile: a plan for a config with failed PEs
    // must keep every kernel slot (across all unroll copies) off the
    // dead engines.
    for &pe in config.failed_pes() {
        let dead = PeId::new(pe);
        for copy in 0..outcome.kernel.copies() {
            for node in graph.node_ids() {
                if outcome.kernel.pe_at(node, copy) == dead {
                    return Err(VerifyError::FailedPeUsed { pe });
                }
            }
        }
    }
    let checked_edges = check_retiming(graph, outcome, config)?;
    let bounds = occupancy_bounds(graph, outcome, config)?;

    let cache_capacity = config.total_cache_units();
    if bounds.cache.bound > cache_capacity {
        return Err(VerifyError::CacheBoundExceeded {
            bound: bounds.cache.bound,
            capacity: cache_capacity,
            phase: bounds.cache.phase,
            edges: bounds.cache.edges.clone(),
        });
    }
    for (pe, peak) in bounds.fifo.iter().enumerate() {
        if peak.bound > config.pfifo_depth() as u64 {
            return Err(VerifyError::FifoBoundExceeded {
                pe: pe as u32,
                bound: peak.bound,
                depth: config.pfifo_depth(),
                edges: peak.edges.clone(),
            });
        }
    }
    if let Some(limit) = config.max_vault_concurrency() {
        for (vault, peak) in bounds.vault.iter().enumerate() {
            if peak.bound > limit as u64 {
                return Err(VerifyError::VaultBoundExceeded {
                    vault,
                    bound: peak.bound,
                    limit,
                    edges: peak.edges.clone(),
                });
            }
        }
    }

    let dp = check_dp_invariants(graph, outcome, config)?;
    let (_, fifo_bound) = bounds.worst_fifo();
    let (_, vault_bound) = bounds.worst_vault();
    Ok(VerifyReport {
        period: outcome.kernel.period(),
        unroll: outcome.kernel.copies(),
        checked_edges,
        cache_bound: bounds.cache.bound,
        cache_capacity,
        fifo_bound,
        fifo_depth: config.pfifo_depth(),
        vault_bound,
        vault_limit: config.max_vault_concurrency(),
        dp_max_profit: dp.dp_max_profit,
        greedy_profit: dp.greedy_profit,
        allocation_profit: dp.allocation_profit,
    })
}

/// [`verify_outcome`] plus the differential cross-check: every static
/// bound must dominate the corresponding observed high-water mark in
/// the simulator's report. A violation means the abstraction is
/// unsound and is reported as [`VerifyError::BoundBelowObserved`].
///
/// # Errors
///
/// Same as [`verify_outcome`], plus the dominance checks.
pub fn verify_run(
    graph: &TaskGraph,
    outcome: &ParaConvOutcome,
    config: &PimConfig,
    report: &SimReport,
) -> Result<VerifyReport, VerifyError> {
    let verified = verify_outcome(graph, outcome, config)?;
    let observed = [
        ("cache", verified.cache_bound, report.peak_cache_occupancy),
        (
            "iFIFO",
            verified.fifo_bound,
            report.peak_fifo_occupancy as u64,
        ),
        (
            "vault",
            verified.vault_bound,
            report.peak_vault_concurrency as u64,
        ),
    ];
    for (metric, bound, high_water) in observed {
        if bound < high_water {
            return Err(VerifyError::BoundBelowObserved {
                metric,
                bound,
                observed: high_water,
            });
        }
    }
    Ok(verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::examples;
    use paraconv_pim::simulate;
    use paraconv_sched::{AllocationPolicy, ParaConvScheduler};

    #[test]
    fn every_policy_verifies_on_examples() {
        for policy in [
            AllocationPolicy::DynamicProgram,
            AllocationPolicy::GreedyByDensity,
            AllocationPolicy::AllEdram,
        ] {
            for graph in [
                examples::motivational(),
                examples::chain(6),
                examples::fork_join(12),
            ] {
                let cfg = PimConfig::neurocube(8).expect("valid config");
                let outcome = ParaConvScheduler::new(cfg.clone())
                    .with_policy(policy)
                    .schedule(&graph, 8)
                    .expect("schedulable");
                let report = verify_outcome(&graph, &outcome, &cfg).expect("emitted plans verify");
                assert!(report.cache_bound <= report.cache_capacity);
                assert!(report.fifo_bound <= report.fifo_depth as u64);
            }
        }
    }

    #[test]
    fn static_bounds_dominate_simulated_peaks() {
        let g = examples::fork_join(16);
        let cfg = PimConfig::neurocube(8).expect("valid config");
        for iters in [1, 4, 30] {
            let outcome = ParaConvScheduler::new(cfg.clone())
                .schedule(&g, iters)
                .expect("schedulable");
            let sim = simulate(&g, &outcome.plan, &cfg).expect("valid plan");
            verify_run(&g, &outcome, &cfg, &sim).expect("bounds dominate the run");
        }
    }

    #[test]
    fn zero_capacity_cache_is_handled() {
        // per-PE cache of 0 units is below the builder's validation
        // floor on some configs; the AllEdram policy reaches the same
        // state (capacity 0) through a supported path.
        let g = examples::chain(5);
        let cfg = PimConfig::neurocube(4).expect("valid config");
        let outcome = ParaConvScheduler::new(cfg.clone())
            .with_policy(AllocationPolicy::AllEdram)
            .schedule(&g, 3)
            .expect("schedulable");
        assert_eq!(outcome.allocation.capacity(), 0);
        let report = verify_outcome(&g, &outcome, &cfg).expect("zero capacity verifies");
        assert_eq!(report.cache_bound, 0);
    }

    #[test]
    fn wrong_graph_is_a_diagnostic() {
        let g = examples::fork_join(12);
        let cfg = PimConfig::neurocube(8).expect("valid config");
        let outcome = ParaConvScheduler::new(cfg.clone())
            .schedule(&g, 4)
            .expect("schedulable");
        let other = examples::chain(3);
        assert!(matches!(
            verify_outcome(&other, &outcome, &cfg),
            Err(VerifyError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn degraded_outcomes_verify_under_the_reduced_profile() {
        let g = examples::fork_join(12);
        let healthy = PimConfig::neurocube(8).expect("valid config");
        let degraded = healthy.degrade(&[2, 5]).expect("survivors remain");
        let outcome = ParaConvScheduler::new(degraded.clone())
            .schedule(&g, 6)
            .expect("schedulable");
        let report = verify_outcome(&g, &outcome, &degraded).expect("degraded plan verifies");
        assert_eq!(report.cache_capacity, degraded.total_cache_units());

        // A plan built for the healthy array uses the dead PEs and is
        // rejected under the degraded profile.
        let healthy_outcome = ParaConvScheduler::new(healthy.clone())
            .schedule(&g, 6)
            .expect("schedulable");
        assert!(matches!(
            verify_outcome(&g, &healthy_outcome, &degraded),
            Err(VerifyError::FailedPeUsed { .. })
        ));
    }

    #[test]
    fn dominance_violations_are_reported() {
        // Feed verify_run a report whose peaks are forged far above any
        // bound the plan can produce.
        let g = examples::chain(4);
        let cfg = PimConfig::neurocube(4).expect("valid config");
        let outcome = ParaConvScheduler::new(cfg.clone())
            .schedule(&g, 3)
            .expect("schedulable");
        let mut report = simulate(&g, &outcome.plan, &cfg).expect("valid plan");
        report.peak_cache_occupancy = u64::MAX;
        assert!(matches!(
            verify_run(&g, &outcome, &cfg, &report),
            Err(VerifyError::BoundBelowObserved {
                metric: "cache",
                ..
            })
        ));
    }
}
