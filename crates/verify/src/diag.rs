//! Structured diagnostics for the static verifier.
//!
//! Every check in this crate reports through [`VerifyError`] — the
//! verifier never panics, even on degenerate inputs (empty graphs,
//! zero-capacity caches, malformed kernels). A successful run returns
//! a [`VerifyReport`] carrying the proven bounds so callers (and the
//! differential test against the runtime auditor) can compare them
//! with observed high-water marks.

use core::fmt;

use paraconv_graph::EdgeId;
use paraconv_retime::RetimeError;

/// One edge whose retiming slack is below its placement requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetimingViolation {
    /// The under-retimed edge.
    pub edge: EdgeId,
    /// The minimal relative retiming its placement latency demands.
    pub required: u64,
    /// The actual `R(src) − R(dst)` the plan provides.
    pub actual: i64,
}

impl fmt::Display for RetimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: requires relative retiming ≥ {}, plan provides {}",
            self.edge, self.required, self.actual
        )
    }
}

/// A failed static check, with enough structure to locate the cause.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The kernel has a zero period or zero copies; no steady state
    /// exists to reason about.
    DegenerateKernel {
        /// The kernel's period.
        period: u64,
        /// The kernel's unroll factor.
        copies: u64,
    },
    /// The outcome's kernel or retiming was built for a different
    /// graph shape.
    ShapeMismatch {
        /// Nodes the kernel covers.
        kernel_nodes: usize,
        /// Nodes the graph has.
        graph_nodes: usize,
    },
    /// The retiming violates the structural legality condition
    /// `R(i) ≥ R(i,j) ≥ R(j)`.
    IllegalRetiming(RetimeError),
    /// One or more edges are retimed below the minimum their placement
    /// latency demands (a Bellman-style constraint check, Theorem 3.1).
    RetimingInsufficient {
        /// Every violated edge with its required and actual slack.
        violations: Vec<RetimingViolation>,
    },
    /// The steady-state cache occupancy bound exceeds the aggregate
    /// PE-cache capacity.
    CacheBoundExceeded {
        /// The proven upper bound in IPR units.
        bound: u64,
        /// The configured capacity.
        capacity: u64,
        /// The in-period phase at which the bound peaks.
        phase: u64,
        /// The edges resident at the peak phase.
        edges: Vec<EdgeId>,
    },
    /// A PE's steady-state iFIFO occupancy bound exceeds its depth.
    FifoBoundExceeded {
        /// The destination PE whose FIFO overflows.
        pe: u32,
        /// The proven upper bound in transfers.
        bound: u64,
        /// The configured FIFO depth.
        depth: usize,
        /// The edges in flight at the peak phase.
        edges: Vec<EdgeId>,
    },
    /// A vault channel's steady-state concurrency bound exceeds the
    /// configured limit.
    VaultBoundExceeded {
        /// The vault index.
        vault: usize,
        /// The proven upper bound in concurrent fetches.
        bound: u64,
        /// The configured concurrency limit.
        limit: usize,
        /// The edges fetching at the peak phase.
        edges: Vec<EdgeId>,
    },
    /// The DP's optimal profit decreased when the capacity grew.
    ProfitNotMonotonic {
        /// The capacity at which the profit dropped.
        capacity: u64,
        /// The profit at that capacity.
        profit: u64,
        /// The (larger) profit at the previous capacity.
        previous: u64,
    },
    /// The DP's optimal profit fell below the greedy-by-density profit
    /// on the same instance.
    DpBelowGreedy {
        /// The DP optimum.
        dp: u64,
        /// The greedy profit it must dominate.
        greedy: u64,
    },
    /// The DP table's reconstruction disagrees with its own optimum or
    /// overruns the capacity.
    ReconstructionInconsistent {
        /// The table's reported optimum.
        table_profit: u64,
        /// The profit of the reconstructed item set.
        rebuilt_profit: u64,
        /// The space the reconstructed set uses.
        used: u64,
        /// The capacity it must fit in.
        capacity: u64,
    },
    /// The emitted allocation itself overruns its capacity.
    AllocationInfeasible {
        /// Space the allocation's cached set uses.
        used: u64,
        /// The capacity it claims to respect.
        capacity: u64,
    },
    /// The emitted allocation claims more profit than the re-derived
    /// DP optimum — impossible for a sound allocator.
    AllocationExceedsOptimal {
        /// The allocation's claimed profit.
        profit: u64,
        /// The independently computed optimum.
        optimal: u64,
    },
    /// A kernel slot lands on a PE the degraded capacity profile marks
    /// as failed — the plan would dispatch work to a dead engine.
    FailedPeUsed {
        /// The failed PE the kernel still uses.
        pe: u32,
    },
    /// The incremental DP session disagrees with the from-scratch
    /// table on the same instance — the suffix-row reuse is unsound.
    IncrementalDpDivergence {
        /// The incremental session's optimum.
        incremental: u64,
        /// The from-scratch table's optimum.
        table: u64,
    },
    /// A static bound fell below an observed runtime high-water mark —
    /// the abstraction is unsound (this is the differential check
    /// against the simulator/auditor).
    BoundBelowObserved {
        /// Which resource the bound covers.
        metric: &'static str,
        /// The static bound.
        bound: u64,
        /// The observed high-water mark it must dominate.
        observed: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DegenerateKernel { period, copies } => write!(
                f,
                "degenerate kernel: period {period}, copies {copies} (no steady state exists)"
            ),
            VerifyError::ShapeMismatch {
                kernel_nodes,
                graph_nodes,
            } => write!(
                f,
                "outcome shape mismatch: kernel covers {kernel_nodes} nodes, graph has {graph_nodes}"
            ),
            VerifyError::IllegalRetiming(e) => write!(f, "illegal retiming: {e}"),
            VerifyError::RetimingInsufficient { violations } => {
                write!(f, "{} edge(s) retimed below requirement:", violations.len())?;
                for v in violations {
                    write!(f, " [{v}]")?;
                }
                Ok(())
            }
            VerifyError::CacheBoundExceeded {
                bound,
                capacity,
                phase,
                edges,
            } => write!(
                f,
                "static cache bound {bound} exceeds capacity {capacity} (peak at phase {phase}, edges {edges:?})"
            ),
            VerifyError::FifoBoundExceeded {
                pe,
                bound,
                depth,
                edges,
            } => write!(
                f,
                "static iFIFO bound {bound} on PE{pe} exceeds depth {depth} (edges {edges:?})"
            ),
            VerifyError::VaultBoundExceeded {
                vault,
                bound,
                limit,
                edges,
            } => write!(
                f,
                "static vault bound {bound} on vault {vault} exceeds limit {limit} (edges {edges:?})"
            ),
            VerifyError::ProfitNotMonotonic {
                capacity,
                profit,
                previous,
            } => write!(
                f,
                "DP profit not monotonic: capacity {capacity} yields {profit} < {previous} at the previous size"
            ),
            VerifyError::DpBelowGreedy { dp, greedy } => {
                write!(f, "DP optimum {dp} below greedy profit {greedy}")
            }
            VerifyError::ReconstructionInconsistent {
                table_profit,
                rebuilt_profit,
                used,
                capacity,
            } => write!(
                f,
                "DP reconstruction inconsistent: table optimum {table_profit}, rebuilt profit {rebuilt_profit}, space {used}/{capacity}"
            ),
            VerifyError::AllocationInfeasible { used, capacity } => {
                write!(f, "allocation infeasible: uses {used} of capacity {capacity}")
            }
            VerifyError::AllocationExceedsOptimal { profit, optimal } => write!(
                f,
                "allocation claims profit {profit} above the DP optimum {optimal}"
            ),
            VerifyError::IncrementalDpDivergence { incremental, table } => write!(
                f,
                "incremental DP session optimum {incremental} diverges from the from-scratch table {table}"
            ),
            VerifyError::FailedPeUsed { pe } => write!(
                f,
                "kernel assigns a slot to failed PE{pe} (degraded capacity profile)"
            ),
            VerifyError::BoundBelowObserved {
                metric,
                bound,
                observed,
            } => write!(
                f,
                "static {metric} bound {bound} below the observed high-water mark {observed}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::IllegalRetiming(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<RetimeError> for VerifyError {
    fn from(e: RetimeError) -> Self {
        VerifyError::IllegalRetiming(e)
    }
}

/// The proven bounds of a successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The kernel period `p` the bounds are phrased over.
    pub period: u64,
    /// The kernel unroll factor.
    pub unroll: u64,
    /// Edges whose retiming slack was checked.
    pub checked_edges: usize,
    /// Steady-state upper bound on aggregate cache occupancy.
    pub cache_bound: u64,
    /// The capacity that bound was proven against.
    pub cache_capacity: u64,
    /// The worst per-PE steady-state iFIFO occupancy bound.
    pub fifo_bound: u64,
    /// The FIFO depth that bound was proven against.
    pub fifo_depth: usize,
    /// The worst per-vault steady-state concurrency bound.
    pub vault_bound: u64,
    /// The vault concurrency limit, when one is configured.
    pub vault_limit: Option<usize>,
    /// The re-derived DP optimum over the full item set.
    pub dp_max_profit: u64,
    /// The greedy-by-density profit the DP must dominate.
    pub greedy_profit: u64,
    /// The profit the emitted allocation actually claims.
    pub allocation_profit: u64,
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verified: p = {}, u = {}, {} edges",
            self.period, self.unroll, self.checked_edges
        )?;
        writeln!(
            f,
            "  cache  bound {:>6} / capacity {}",
            self.cache_bound, self.cache_capacity
        )?;
        writeln!(
            f,
            "  iFIFO  bound {:>6} / depth {}",
            self.fifo_bound, self.fifo_depth
        )?;
        match self.vault_limit {
            Some(limit) => writeln!(
                f,
                "  vault  bound {:>6} / limit {}",
                self.vault_bound, limit
            )?,
            None => writeln!(
                f,
                "  vault  bound {:>6} (no limit configured)",
                self.vault_bound
            )?,
        }
        write!(
            f,
            "  alloc  profit {} (DP optimum {}, greedy {})",
            self.allocation_profit, self.dp_max_profit, self.greedy_profit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VerifyError>();
        let e = VerifyError::DegenerateKernel {
            period: 0,
            copies: 1,
        };
        assert!(e.to_string().contains("degenerate"));
        let e = VerifyError::CacheBoundExceeded {
            bound: 9,
            capacity: 4,
            phase: 2,
            edges: vec![EdgeId::new(3)],
        };
        assert!(e.to_string().contains("bound 9"));
        assert!(e.to_string().contains("capacity 4"));
        let e = VerifyError::FailedPeUsed { pe: 7 };
        assert!(e.to_string().contains("PE7"));
    }

    #[test]
    fn report_renders_all_bounds() {
        let r = VerifyReport {
            period: 4,
            unroll: 2,
            checked_edges: 7,
            cache_bound: 12,
            cache_capacity: 64,
            fifo_bound: 3,
            fifo_depth: 256,
            vault_bound: 1,
            vault_limit: None,
            dp_max_profit: 10,
            greedy_profit: 8,
            allocation_profit: 10,
        };
        let text = r.to_string();
        assert!(text.contains("cache"));
        assert!(text.contains("iFIFO"));
        assert!(text.contains("no limit"));
    }

    #[test]
    fn retime_error_converts() {
        let e: VerifyError = RetimeError::UnknownNode(paraconv_graph::NodeId::new(3)).into();
        assert!(matches!(e, VerifyError::IllegalRetiming(_)));
    }
}
