//! Abstract-interpretation occupancy analysis.
//!
//! Every Para-CONV transfer is periodic: iteration group `g` of an
//! edge's copy `c` starts at `(g + R_max − R(src))·p + f` where `f` is
//! the producer's finish offset inside the kernel. Retiming offsets
//! are whole multiples of the period `p`, so **the phase of every
//! instance modulo `p` is just `f mod p`** — the retiming terms vanish
//! and the steady state is fully described by per-phase profiles.
//!
//! For one periodic interval family (phase `f`, duration `d`, period
//! `p`), the number of instances alive at any time `t` is
//!
//! ```text
//! N(t) = ⌊d/p⌋ + [ (t − f) mod p  <  d mod p ]
//! ```
//!
//! Summing the constant `⌊d/p⌋` terms and sweeping the partial windows
//! `[f mod p, f mod p + d mod p)` around the period circle yields an
//! upper bound on the occupancy **over all iterations** — including
//! runs longer than any simulation. The finite plan's intervals are a
//! subset of the infinite periodic families, so the bound dominates
//! every runtime high-water mark the simulator or auditor can record.

use paraconv_graph::{EdgeId, Placement, TaskGraph};
use paraconv_pim::{CostModel, PimConfig};
use paraconv_sched::ParaConvOutcome;

use crate::diag::VerifyError;

/// The peak of one resource's steady-state phase profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeakBound {
    /// The occupancy upper bound.
    pub bound: u64,
    /// An in-period phase at which the bound is attained.
    pub phase: u64,
    /// The edges contributing at that phase.
    pub edges: Vec<EdgeId>,
}

/// A steady-state occupancy profile over one kernel period.
///
/// Intervals are added as `(phase, duration, weight)` triples; the
/// profile accumulates the always-active `⌊d/p⌋` component and the
/// partial windows, and [`peak`](Self::peak) sweeps the period circle
/// for the maximum.
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    period: u64,
    base: u64,
    /// Partial windows already split at the period boundary:
    /// `(start, end, weight, edge)` with `0 ≤ start < end ≤ period`.
    segments: Vec<(u64, u64, u64, EdgeId)>,
    /// Edges contributing through the always-active component.
    full_edges: Vec<EdgeId>,
}

impl PhaseProfile {
    /// An empty profile over `period`. A zero period is clamped to 1
    /// so degenerate inputs degrade to a diagnostic upstream instead
    /// of a panic here.
    #[must_use]
    pub fn new(period: u64) -> Self {
        PhaseProfile {
            period: period.max(1),
            base: 0,
            segments: Vec::new(),
            full_edges: Vec::new(),
        }
    }

    /// Adds the periodic interval family starting at `phase` with
    /// `duration` and `weight`, attributed to `edge`.
    pub fn add(&mut self, edge: EdgeId, phase: u64, duration: u64, weight: u64) {
        if duration == 0 || weight == 0 {
            return;
        }
        let p = self.period;
        let whole = duration / p;
        if whole > 0 {
            self.base += weight * whole;
            self.full_edges.push(edge);
        }
        let rem = duration % p;
        if rem > 0 {
            let s = phase % p;
            let e = s + rem;
            if e <= p {
                self.segments.push((s, e, weight, edge));
            } else {
                self.segments.push((s, p, weight, edge));
                self.segments.push((0, e - p, weight, edge));
            }
        }
    }

    /// The profile's peak over the period circle.
    ///
    /// Release events sort before acquire events at equal positions,
    /// matching the half-open `[start, finish)` semantics of the
    /// simulator's event sweeps.
    #[must_use]
    pub fn peak(&self) -> PeakBound {
        let mut events: Vec<(u64, i128)> = Vec::with_capacity(self.segments.len() * 2);
        for &(s, e, w, _) in &self.segments {
            events.push((s, i128::from(w)));
            events.push((e, -i128::from(w)));
        }
        events.sort_unstable_by_key(|&(pos, delta)| (pos, delta));
        let mut level: i128 = 0;
        let mut max_level: i128 = 0;
        let mut peak_phase: u64 = 0;
        for (pos, delta) in events {
            level += delta;
            if level > max_level {
                max_level = level;
                peak_phase = pos;
            }
        }
        let mut edges: Vec<EdgeId> = self.full_edges.clone();
        edges.extend(
            self.segments
                .iter()
                .filter(|&&(s, e, _, _)| s <= peak_phase && peak_phase < e)
                .map(|&(_, _, _, edge)| edge),
        );
        edges.sort_unstable_by_key(|e| e.index());
        edges.dedup();
        // `max_level` is a sum of u64 weights; it is non-negative and
        // fits back into u64 because every weight entered as a u64.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        PeakBound {
            bound: self.base + max_level as u64,
            phase: peak_phase,
            edges,
        }
    }

    /// The period this profile is phrased over.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }
}

/// The three resource bounds the verifier proves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyBounds {
    /// Aggregate PE-cache occupancy (IPR units).
    pub cache: PeakBound,
    /// Per-destination-PE iFIFO occupancy (transfers in flight).
    pub fifo: Vec<PeakBound>,
    /// Per-vault fetch concurrency (eDRAM transfers in flight).
    pub vault: Vec<PeakBound>,
}

impl OccupancyBounds {
    /// The worst per-PE iFIFO bound and the PE attaining it.
    #[must_use]
    pub fn worst_fifo(&self) -> (usize, u64) {
        self.fifo
            .iter()
            .enumerate()
            .map(|(pe, b)| (pe, b.bound))
            .max_by_key(|&(pe, bound)| (bound, usize::MAX - pe))
            .unwrap_or((0, 0))
    }

    /// The worst per-vault bound and the vault attaining it.
    #[must_use]
    pub fn worst_vault(&self) -> (usize, u64) {
        self.vault
            .iter()
            .enumerate()
            .map(|(v, b)| (v, b.bound))
            .max_by_key(|&(v, bound)| (bound, usize::MAX - v))
            .unwrap_or((0, 0))
    }
}

/// Computes the steady-state occupancy bounds of an outcome from its
/// kernel, retiming-induced placements and the cost model alone — no
/// simulation.
///
/// # Errors
///
/// Returns a structured diagnostic for degenerate inputs (zero-period
/// or empty kernels, shape mismatches); never panics.
pub fn occupancy_bounds(
    graph: &TaskGraph,
    outcome: &ParaConvOutcome,
    config: &PimConfig,
) -> Result<OccupancyBounds, VerifyError> {
    let kernel = &outcome.kernel;
    crate::guard_shape(graph, outcome)?;
    let p = kernel.period();
    let unroll = kernel.copies();
    let cost = CostModel::new(config, graph.edge_count());
    let placements = outcome.allocation.to_placement_vec(graph.edge_count());

    let mut cache = PhaseProfile::new(p);
    let mut fifo: Vec<PhaseProfile> = (0..config.num_pes())
        .map(|_| PhaseProfile::new(p))
        .collect();
    let mut vault: Vec<PhaseProfile> = (0..config.vaults()).map(|_| PhaseProfile::new(p)).collect();

    for e in graph.edges() {
        let i = e.id().index();
        let duration = cost.transfer_time(e.size(), placements[i]);
        for c in 0..unroll {
            // The retiming offset is a multiple of p, so the phase of
            // every instance is the producer's in-kernel finish offset.
            let phase = kernel.finish_at(e.src(), c);
            let dst_pe = kernel.pe_at(e.dst(), c).index();
            fifo[dst_pe].add(e.id(), phase, duration, 1);
            match placements[i] {
                Placement::Cache => cache.add(e.id(), phase, duration, e.size()),
                Placement::Edram => {
                    vault[i % config.vaults()].add(e.id(), phase, duration, 1);
                }
            }
        }
    }

    Ok(OccupancyBounds {
        cache: cache.peak(),
        fifo: fifo.iter().map(PhaseProfile::peak).collect(),
        vault: vault.iter().map(PhaseProfile::peak).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(i: u32) -> EdgeId {
        EdgeId::new(i)
    }

    #[test]
    fn empty_profile_peaks_at_zero() {
        let prof = PhaseProfile::new(8);
        let peak = prof.peak();
        assert_eq!(peak.bound, 0);
        assert!(peak.edges.is_empty());
    }

    #[test]
    fn zero_period_is_clamped_not_panicking() {
        let mut prof = PhaseProfile::new(0);
        prof.add(edge(0), 5, 3, 2);
        assert_eq!(prof.period(), 1);
        // d = 3 over p = 1: three instances always alive, weight 2.
        assert_eq!(prof.peak().bound, 6);
    }

    #[test]
    fn disjoint_windows_do_not_stack() {
        let mut prof = PhaseProfile::new(10);
        prof.add(edge(0), 0, 3, 1);
        prof.add(edge(1), 5, 3, 1);
        let peak = prof.peak();
        assert_eq!(peak.bound, 1);
    }

    #[test]
    fn overlapping_windows_stack_with_weights() {
        let mut prof = PhaseProfile::new(10);
        prof.add(edge(0), 2, 4, 3);
        prof.add(edge(1), 4, 4, 5);
        let peak = prof.peak();
        // [2,6) w3 and [4,8) w5 overlap on [4,6).
        assert_eq!(peak.bound, 8);
        assert_eq!(peak.phase, 4);
        assert_eq!(peak.edges, vec![edge(0), edge(1)]);
    }

    #[test]
    fn half_open_intervals_do_not_touch() {
        let mut prof = PhaseProfile::new(10);
        prof.add(edge(0), 0, 5, 1);
        prof.add(edge(1), 5, 5, 1);
        // [0,5) releases exactly when [5,10) acquires.
        assert_eq!(prof.peak().bound, 1);
    }

    #[test]
    fn long_durations_accumulate_the_floor_component() {
        let mut prof = PhaseProfile::new(4);
        // d = 10 = 2·4 + 2: two instances always alive plus a partial
        // window [1, 3).
        prof.add(edge(0), 1, 10, 1);
        let peak = prof.peak();
        assert_eq!(peak.bound, 3);
        assert_eq!(peak.edges, vec![edge(0)]);
    }

    #[test]
    fn wraparound_windows_split_correctly() {
        let mut prof = PhaseProfile::new(10);
        // [8, 13) mod 10 → [8, 10) + [0, 3).
        prof.add(edge(0), 8, 5, 1);
        prof.add(edge(1), 1, 3, 1);
        let peak = prof.peak();
        // [0,3) from the wrap and [1,4)... wait: edge(1) is [1,4); they
        // overlap on [1,3).
        assert_eq!(peak.bound, 2);
        assert_eq!(peak.phase, 1);
    }

    #[test]
    fn exact_period_duration_is_always_active() {
        let mut prof = PhaseProfile::new(6);
        prof.add(edge(0), 2, 6, 4);
        let peak = prof.peak();
        assert_eq!(peak.bound, 4);
        assert_eq!(peak.edges, vec![edge(0)]);
    }

    #[test]
    fn peak_matches_brute_force_simulation() {
        // Cross-check the closed form against literally counting
        // instances of each family over a long horizon.
        let p = 7u64;
        let families = [(0u64, 3u64, 2u64), (2, 9, 1), (5, 4, 3), (6, 14, 1)];
        let mut prof = PhaseProfile::new(p);
        for (i, &(f, d, w)) in families.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            prof.add(edge(i as u32), f, d, w);
        }
        let mut brute = 0u64;
        for t in 0..(p * 40) {
            let mut level = 0u64;
            for &(f, d, w) in &families {
                // Count g ≥ 0 with f + g·p ≤ t < f + g·p + d.
                let mut g = 0u64;
                loop {
                    let start = f + g * p;
                    if start > t {
                        break;
                    }
                    if t < start + d {
                        level += w;
                    }
                    g += 1;
                }
            }
            brute = brute.max(level);
        }
        assert_eq!(prof.peak().bound, brute);
    }
}
