//! The workspace lint binary: walks the given roots (default
//! `crates`), collects every non-test `.rs` file and lints them as
//! **one workspace** (the dataflow rules pair atomic sites and lock
//! orders across files), prints unsuppressed findings as
//! `path:line: [rule] message`, and exits non-zero when any exist.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use paraconv_verify::lint::lint_workspace;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", ".git"];

fn is_linted_source(path: &Path) -> bool {
    if path.extension().and_then(|e| e.to_str()) != Some("rs") {
        return false;
    }
    let normalized = path.to_string_lossy().replace('\\', "/");
    // Integration tests, benches and examples are exercise code, not
    // library surface.
    !(normalized.contains("/tests/")
        || normalized.contains("/benches/")
        || normalized.contains("/examples/"))
}

fn walk(root: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            let skip = child
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| SKIP_DIRS.contains(&n));
            if !skip {
                walk(&child, files);
            }
        } else if is_linted_source(&child) {
            files.push(child);
        }
    }
}

fn main() -> ExitCode {
    let roots: Vec<String> = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            vec!["crates".to_string()]
        } else {
            args
        }
    };

    let mut files = Vec::new();
    for root in &roots {
        let path = Path::new(root);
        if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            walk(path, &mut files);
        }
    }

    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for file in &files {
        let Ok(source) = fs::read_to_string(file) else {
            eprintln!("warning: could not read {}", file.display());
            continue;
        };
        let display = file.to_string_lossy().replace('\\', "/");
        sources.push((display, source));
    }

    let mut total = 0usize;
    for (path, finding) in lint_workspace(&sources) {
        println!("{path}:{finding}");
        total += 1;
    }

    if total > 0 {
        eprintln!(
            "paraconv-verify: {total} finding(s) across {} file(s); annotate with `// lint: allow(<rule>)` or fix",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        eprintln!("paraconv-verify: clean ({} files linted)", files.len());
        ExitCode::SUCCESS
    }
}
