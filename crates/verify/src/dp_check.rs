//! DP-invariant checking over emitted allocations.
//!
//! The §3.3 dynamic program is re-run *once* (never `fill_sweep`) on
//! an independently re-derived item set, and the outcome's allocation
//! is judged against it:
//!
//! * **monotonicity** — `B[s, n]` never decreases as the capacity
//!   grows (one filled table answers the whole sweep);
//! * **greedy dominance** — the optimum is at least the
//!   greedy-by-density profit on the same instance;
//! * **reconstruction consistency** — the backtracked item set fits
//!   the capacity and re-sums to the table's optimum;
//! * **incremental agreement** — an [`IncrementalDp`] session primed
//!   at a wider capacity and re-solved at the real one lands on the
//!   same optimum and the same reconstructed set as the table (the
//!   suffix-row reuse the replan path depends on is sound);
//! * **allocation soundness** — the emitted allocation fits its own
//!   capacity and claims no more profit than the optimum (degraded
//!   policies may claim less);
//! * on small instances, an exhaustive subset enumeration confirms the
//!   optimum exactly.

use paraconv_alloc::{brute_force_max_profit, sort_by_deadline, AllocItem, DpTable, IncrementalDp};
use paraconv_graph::TaskGraph;
use paraconv_pim::{CostModel, PimConfig};
use paraconv_retime::minimal_relative_retiming;
use paraconv_sched::ParaConvOutcome;

use crate::diag::VerifyError;

/// Exhaustive enumeration stays cheap up to this many competing items.
const BRUTE_FORCE_LIMIT: usize = 16;

/// The profits established by [`check_dp_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpCheck {
    /// The re-derived DP optimum over all competing items.
    pub dp_max_profit: u64,
    /// The greedy-by-density profit the optimum dominates.
    pub greedy_profit: u64,
    /// The profit the emitted allocation claims.
    pub allocation_profit: u64,
}

/// Re-derives the scheduler's knapsack instance from the kernel and
/// cost model, re-runs the DP, and checks every invariant against the
/// emitted allocation.
///
/// # Errors
///
/// Returns the specific violated invariant as a [`VerifyError`];
/// never panics, even on zero-capacity or empty instances.
pub fn check_dp_invariants(
    graph: &TaskGraph,
    outcome: &ParaConvOutcome,
    config: &PimConfig,
) -> Result<DpCheck, VerifyError> {
    crate::guard_shape(graph, outcome)?;
    let items = derive_items(graph, outcome, config);
    let capacity = outcome.allocation.capacity();

    let competing: Vec<AllocItem> =
        sort_by_deadline(items.iter().copied().filter(|i| i.delta_r() > 0).collect());
    let table = DpTable::fill(&competing, capacity);
    let dp_max = table.max_profit();

    // Monotonicity in the cache size: the filled table answers every
    // smaller capacity, and profit can only grow with space.
    let mut previous = 0u64;
    for s in 0..=capacity {
        let profit = table.max_profit_at(s);
        if profit < previous {
            return Err(VerifyError::ProfitNotMonotonic {
                capacity: s,
                profit,
                previous,
            });
        }
        previous = profit;
    }

    // The optimum dominates greedy-by-density on the same instance.
    let greedy = greedy_profit(&competing, capacity);
    if dp_max < greedy {
        return Err(VerifyError::DpBelowGreedy { dp: dp_max, greedy });
    }

    // Reconstruction re-sums to the optimum within the capacity.
    let chosen = table.reconstruct();
    let (mut used, mut rebuilt) = (0u64, 0u64);
    for (item, &take) in competing.iter().zip(&chosen) {
        if take {
            used += item.space();
            rebuilt += item.delta_r();
        }
    }
    if rebuilt != dp_max || used > capacity {
        return Err(VerifyError::ReconstructionInconsistent {
            table_profit: dp_max,
            rebuilt_profit: rebuilt,
            used,
            capacity,
        });
    }

    // The incremental session must agree with the table it shares a
    // recurrence with. Priming at a wider capacity first forces the
    // re-solve through the suffix-row-reuse path the degraded replan
    // relies on, not a cold fill in disguise.
    let mut session = IncrementalDp::new();
    session.resolve(&competing, capacity.saturating_add(1));
    session.resolve(&competing, capacity);
    if session.max_profit() != dp_max || session.reconstruct() != chosen {
        return Err(VerifyError::IncrementalDpDivergence {
            incremental: session.max_profit(),
            table: dp_max,
        });
    }

    // Exhaustive confirmation on small instances.
    if competing.len() <= BRUTE_FORCE_LIMIT {
        let exact = brute_force_max_profit(&competing, capacity);
        if exact != dp_max {
            return Err(VerifyError::ReconstructionInconsistent {
                table_profit: dp_max,
                rebuilt_profit: exact,
                used,
                capacity,
            });
        }
    }

    // The emitted allocation fits its capacity and never beats the
    // optimum (degraded policies legitimately claim less).
    let space_of: std::collections::HashMap<_, _> =
        items.iter().map(|i| (i.edge(), i.space())).collect();
    let alloc_used: u64 = outcome
        .allocation
        .cached()
        .iter()
        .map(|e| space_of.get(e).copied().unwrap_or(0))
        .sum();
    if alloc_used > capacity {
        return Err(VerifyError::AllocationInfeasible {
            used: alloc_used,
            capacity,
        });
    }
    let claimed = outcome.allocation.total_profit();
    if claimed > dp_max {
        return Err(VerifyError::AllocationExceedsOptimal {
            profit: claimed,
            optimal: dp_max,
        });
    }

    Ok(DpCheck {
        dp_max_profit: dp_max,
        greedy_profit: greedy,
        allocation_profit: claimed,
    })
}

/// Re-derives the scheduler's knapsack items from first principles:
/// per-edge latencies, Theorem 3.1 requirements and residency-window
/// counts, exactly mirroring the emission math without running it.
pub(crate) fn derive_items(
    graph: &TaskGraph,
    outcome: &ParaConvOutcome,
    config: &PimConfig,
) -> Vec<AllocItem> {
    let kernel = &outcome.kernel;
    let p = kernel.period().max(1);
    let unroll = kernel.copies();
    let cost = CostModel::new(config, graph.edge_count());
    let gaps = kernel.gaps(graph);
    graph
        .edges()
        .map(|e| {
            let i = e.id().index();
            let cache_time = cost.cache_transfer_time(e.size());
            let edram_time = cost.edram_transfer_time(e.size());
            let k_cache = minimal_relative_retiming(cache_time, gaps[i], p);
            let k_edram = minimal_relative_retiming(edram_time, gaps[i], p).max(k_cache);
            let windows: u64 = (0..unroll)
                .map(|c| {
                    let f = kernel.finish_at(e.src(), c);
                    (f + cache_time).div_ceil(p).max(1)
                })
                .sum();
            AllocItem::new(
                e.id(),
                e.size() * windows,
                k_edram - k_cache,
                kernel.start(e.dst()),
            )
        })
        .collect()
}

/// Greedy by profit density (`ΔR/space`, u128 cross-multiplication,
/// ties by edge id), filling the capacity front to back.
fn greedy_profit(competing: &[AllocItem], capacity: u64) -> u64 {
    let mut sorted: Vec<&AllocItem> = competing.iter().collect();
    sorted.sort_by(|a, b| {
        let lhs = u128::from(b.delta_r()) * u128::from(a.space().max(1));
        let rhs = u128::from(a.delta_r()) * u128::from(b.space().max(1));
        lhs.cmp(&rhs).then_with(|| a.edge().cmp(&b.edge()))
    });
    let mut used = 0u64;
    let mut profit = 0u64;
    for item in sorted {
        if used + item.space() <= capacity {
            used += item.space();
            profit += item.delta_r();
        }
    }
    profit
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::examples;
    use paraconv_sched::{AllocationPolicy, ParaConvScheduler};

    fn scheduled(policy: AllocationPolicy) -> (TaskGraph, ParaConvOutcome, PimConfig) {
        let g = examples::fork_join(20);
        let cfg = PimConfig::builder(8)
            .per_pe_cache_units(2)
            .build()
            .expect("valid test config");
        let outcome = ParaConvScheduler::new(cfg.clone())
            .with_policy(policy)
            .schedule(&g, 4)
            .expect("schedulable test graph");
        (g, outcome, cfg)
    }

    #[test]
    fn dp_policy_attains_the_optimum() {
        let (g, outcome, cfg) = scheduled(AllocationPolicy::DynamicProgram);
        let check = check_dp_invariants(&g, &outcome, &cfg).expect("sound DP");
        assert_eq!(check.allocation_profit, check.dp_max_profit);
        assert!(check.dp_max_profit >= check.greedy_profit);
    }

    #[test]
    fn degraded_policies_stay_below_the_optimum() {
        for policy in [
            AllocationPolicy::GreedyByDensity,
            AllocationPolicy::AllEdram,
        ] {
            let (g, outcome, cfg) = scheduled(policy);
            let check = check_dp_invariants(&g, &outcome, &cfg).expect("sound policy");
            assert!(check.allocation_profit <= check.dp_max_profit);
        }
    }

    #[test]
    fn all_edram_capacity_is_zero_without_panicking() {
        let (g, outcome, cfg) = scheduled(AllocationPolicy::AllEdram);
        assert_eq!(outcome.allocation.capacity(), 0);
        let check = check_dp_invariants(&g, &outcome, &cfg).expect("zero capacity is fine");
        assert_eq!(check.allocation_profit, 0);
    }

    #[test]
    fn inflated_profit_claims_are_caught() {
        use paraconv_alloc::CacheAllocator;
        let (g, mut outcome, cfg) = scheduled(AllocationPolicy::DynamicProgram);
        if outcome.allocation.total_profit() == 0 {
            // Nothing competes on this instance; the forgery below
            // would be a no-op.
            return;
        }
        // Re-run the allocator on items whose profits are inflated
        // tenfold: the grafted allocation then claims more than the
        // honestly re-derived optimum can justify.
        let capacity = outcome.allocation.capacity();
        let forged_items: Vec<AllocItem> = derive_items(&g, &outcome, &cfg)
            .into_iter()
            .map(|i| AllocItem::new(i.edge(), i.space(), i.delta_r() * 10, i.deadline()))
            .collect();
        outcome.allocation = CacheAllocator::new(capacity).allocate(forged_items);
        let err = check_dp_invariants(&g, &outcome, &cfg).expect_err("forged profit");
        assert!(matches!(err, VerifyError::AllocationExceedsOptimal { .. }));
    }

    #[test]
    fn edgeless_graph_is_a_clean_pass() {
        use paraconv_graph::{OpKind, TaskGraphBuilder};
        let mut b = TaskGraphBuilder::new("lonely");
        b.add_node("only", OpKind::Convolution, 3);
        let g = b.build().expect("single-node graph builds");
        let cfg = PimConfig::neurocube(4).expect("valid");
        let outcome = ParaConvScheduler::new(cfg.clone())
            .schedule(&g, 2)
            .expect("edgeless graphs schedule");
        let check = check_dp_invariants(&g, &outcome, &cfg).expect("no items, no violations");
        assert_eq!(check.dp_max_profit, 0);
        assert_eq!(check.allocation_profit, 0);
    }
}
