//! Retiming-legality checking (Bellman-style, no simulation).
//!
//! Two layers, both pure constraint checks on the outcome:
//!
//! 1. **Structural legality** — `R(i) ≥ R(i,j) ≥ R(j)` on every edge
//!    (Definition 3.1), delegated to [`paraconv_retime::Retiming::check_legal`].
//! 2. **Sufficiency** — for every edge the relative retiming
//!    `r(u) − r(v)` must cover the dependency distance its placement
//!    latency demands: `R(src) − R(dst) ≥ k(e)` where `k(e)` is
//!    re-derived independently from the kernel's slack and the cost
//!    model (Theorem 3.1). A plan that passes both can be emitted for
//!    *any* iteration count without a dependency violation.

use paraconv_graph::TaskGraph;
use paraconv_pim::{CostModel, PimConfig};
use paraconv_retime::minimal_relative_retiming;
use paraconv_sched::ParaConvOutcome;

use crate::diag::{RetimingViolation, VerifyError};

/// Checks the outcome's retiming against every edge's independently
/// re-derived requirement. Returns the number of edges checked.
///
/// # Errors
///
/// Returns [`VerifyError::IllegalRetiming`] for a structurally illegal
/// retiming and [`VerifyError::RetimingInsufficient`] with the full
/// violating edge set when any relative retiming is below its
/// placement's dependency distance.
pub fn check_retiming(
    graph: &TaskGraph,
    outcome: &ParaConvOutcome,
    config: &PimConfig,
) -> Result<usize, VerifyError> {
    crate::guard_shape(graph, outcome)?;
    outcome
        .retiming
        .check_legal(graph)
        .map_err(VerifyError::IllegalRetiming)?;

    let p = outcome.kernel.period();
    let cost = CostModel::new(config, graph.edge_count());
    let gaps = outcome.kernel.gaps(graph);
    let placements = outcome.allocation.to_placement_vec(graph.edge_count());

    let mut violations = Vec::new();
    for e in graph.edges() {
        let i = e.id().index();
        let transfer = cost.transfer_time(e.size(), placements[i]);
        let required = minimal_relative_retiming(transfer, gaps[i], p);
        let actual = outcome.retiming.relative_value(graph, e.id())?;
        if actual < required as i64 {
            violations.push(RetimingViolation {
                edge: e.id(),
                required,
                actual,
            });
        }
    }
    if violations.is_empty() {
        Ok(graph.edge_count())
    } else {
        Err(VerifyError::RetimingInsufficient { violations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::examples;
    use paraconv_sched::ParaConvScheduler;

    fn scheduled(pes: usize) -> (TaskGraph, ParaConvOutcome, PimConfig) {
        let g = examples::fork_join(9);
        let cfg = PimConfig::neurocube(pes).expect("valid test config");
        let outcome = ParaConvScheduler::new(cfg.clone())
            .schedule(&g, 6)
            .expect("schedulable test graph");
        (g, outcome, cfg)
    }

    #[test]
    fn emitted_plans_pass() {
        let (g, outcome, cfg) = scheduled(8);
        assert_eq!(
            check_retiming(&g, &outcome, &cfg).expect("sound scheduler"),
            g.edge_count()
        );
    }

    #[test]
    fn erased_retiming_is_caught_with_the_violating_edges() {
        // All-eDRAM placements maximize the retiming requirements, so
        // the scheduler certainly needed a non-trivial retiming here.
        let g = examples::fork_join(9);
        let cfg = PimConfig::neurocube(8).expect("valid test config");
        let mut outcome = ParaConvScheduler::new(cfg.clone())
            .with_policy(paraconv_sched::AllocationPolicy::AllEdram)
            .schedule(&g, 6)
            .expect("schedulable test graph");
        // Erasing the retiming to zero keeps it structurally legal but
        // leaves every binding edge below its dependency distance.
        assert!(outcome.rmax() > 0, "test needs a binding requirement");
        outcome.retiming = paraconv_retime::Retiming::zero(&g);
        let err = check_retiming(&g, &outcome, &cfg).expect_err("slack erased");
        match err {
            VerifyError::RetimingInsufficient { violations } => {
                assert!(!violations.is_empty());
                assert!(violations.iter().all(|v| v.actual < v.required as i64));
            }
            other => panic!("expected RetimingInsufficient, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_a_diagnostic_not_a_panic() {
        let (_, outcome, cfg) = scheduled(4);
        let other = examples::chain(2);
        let err = check_retiming(&other, &outcome, &cfg).expect_err("wrong graph");
        assert!(matches!(err, VerifyError::ShapeMismatch { .. }));
    }
}
