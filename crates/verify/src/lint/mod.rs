//! The project lint engine — a token-level scanner over workspace
//! sources with **no external dependencies**.
//!
//! Rules (see [`rules`]):
//!
//! | rule | what it denies | where |
//! |---|---|---|
//! | `no-unwrap` | `.unwrap()`, `.expect()`, `panic!` | non-test library code (binaries exempt) |
//! | `unchecked-index` | `x[i]` slice indexing | `pim::sim` and `alloc` hot paths |
//! | `wallclock-rng` | `Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy` | deterministic sweep paths |
//! | `nan-unsafe-cmp` | `partial_cmp`, `== 1.0` float equality | everywhere |
//! | `atomic-ordering` | `Relaxed` load of a `Release`-published atomic (and the converse) | cross-file, by receiver name |
//! | `lock-order` | two mutexes acquired in opposite orders | cross-file, per function |
//! | `nondet-iteration` | `HashMap`/`HashSet` iteration without a sort or order-insensitive sink | per file |
//! | `stale-allow` | an `allow(...)` whose rule no longer fires there | per file, after all other rules |
//!
//! The first four are token rules over one file at a time. The
//! dataflow rules (see [`dataflow`]) collect per-file facts in a first
//! pass and analyze them workspace-wide in a second — which is why the
//! walker feeds every file to one [`lint_workspace`] call instead of
//! linting file by file.
//!
//! `#[cfg(test)]` modules, `#[test]` functions, comments (including
//! doc-comment examples) and string literals are never scanned.
//!
//! The escape hatch is an inline annotation on the offending line or
//! the line directly above it:
//!
//! ```text
//! // lint: allow(no-unwrap) — capacity was validated at build time
//! let slot = table.get(i).unwrap();
//! ```
//!
//! `// lint: allow(all)` suppresses every rule for one line.
//! Annotations are themselves audited: one whose rule no longer fires
//! on the annotated line is reported as `stale-allow` (suppressed, if
//! deliberate, by an adjacent `allow(stale-allow)`), and one naming a
//! rule the engine does not know is always stale. Doc comments never
//! register annotations — prose describing the escape hatch is not an
//! escape hatch. The `paraconv-verify` binary walks the workspace,
//! prints unsuppressed findings as `path:line: [rule] message` and
//! exits non-zero when any exist.

pub mod dataflow;
mod lexer;
pub mod rules;

use std::collections::BTreeSet;

use lexer::{lex, Lexed, Tok, TokKind};

/// One unsuppressed lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    /// The 1-based source line.
    pub line: u32,
    /// A human-readable explanation.
    pub message: String,
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: [{}] {}", self.line, self.rule, self.message)
    }
}

/// Lints one source file in isolation. `path` selects the path-scoped
/// rules (indexing hot paths, wall-clock exemptions); `source` is the
/// file content. Returns the findings that survive
/// `// lint: allow(...)` annotations, sorted by line. Dataflow rules
/// see only this one file — cross-file pairings need
/// [`lint_workspace`].
#[must_use]
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_workspace(&[(path.to_string(), source.to_string())])
        .into_iter()
        .map(|(_, f)| f)
        .collect()
}

/// Per-file state carried between the two lint passes.
struct FileCtx {
    lexed: Lexed,
    /// Lines holding at least one token after test stripping.
    live_lines: BTreeSet<u32>,
    /// Lines holding at least one token before test stripping.
    raw_lines: BTreeSet<u32>,
    /// Pre-suppression findings (token rules, then dataflow rules).
    findings: Vec<Finding>,
}

/// Lints a whole workspace in two passes: per-file token rules and
/// dataflow fact collection first, then the cross-file dataflow rules
/// and the `stale-allow` audit over the combined result. Returns
/// `(path, finding)` pairs that survive suppression, sorted by path
/// then line.
#[must_use]
pub fn lint_workspace(files: &[(String, String)]) -> Vec<(String, Finding)> {
    // Pass 1: lex, strip tests, run token rules, collect facts.
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(files.len());
    let mut facts: Vec<(String, dataflow::FileDataflow)> = Vec::with_capacity(files.len());
    for (path, source) in files {
        let lexed = lex(source);
        let stripped = strip_test_items(&lexed.tokens);
        let findings = rules::scan(path, &stripped);
        facts.push((path.clone(), dataflow::collect_file(&stripped)));
        ctxs.push(FileCtx {
            live_lines: stripped.iter().map(|t| t.line).collect(),
            raw_lines: lexed.tokens.iter().map(|t| t.line).collect(),
            lexed,
            findings,
        });
    }

    // Pass 2: cross-file dataflow rules.
    for (fi, finding) in dataflow::cross_file(&facts) {
        ctxs[fi].findings.push(finding);
    }

    // stale-allow audit: runs over the complete pre-suppression
    // finding set, so an allow is stale exactly when removing it would
    // change nothing.
    for ctx in &mut ctxs {
        let stale = stale_allow_findings(ctx);
        ctx.findings.extend(stale);
    }

    // Suppression, then a stable global order.
    let mut out = Vec::new();
    for ((path, _), ctx) in files.iter().zip(ctxs) {
        let mut findings = ctx.findings;
        findings.retain(|f| {
            let allowed_on = |line: u32| {
                ctx.lexed
                    .allows
                    .get(&line)
                    .is_some_and(|rules| rules.iter().any(|r| r == f.rule || r == "all"))
            };
            !(allowed_on(f.line) || (f.line > 1 && allowed_on(f.line - 1)))
        });
        findings.sort_by_key(|f| (f.line, f.rule));
        out.extend(findings.into_iter().map(|f| (path.clone(), f)));
    }
    out.sort_by(|a, b| (a.0.as_str(), a.1.line, a.1.rule).cmp(&(b.0.as_str(), b.1.line, b.1.rule)));
    out
}

/// Audits every `// lint: allow(...)` annotation in one file against
/// its pre-suppression findings. An annotation is stale when the named
/// rule (or, for `all`, any rule) does not fire on the annotated line
/// or the line below — the two lines the annotation would suppress.
/// Annotations attached to stripped test code are skipped, as are
/// `allow(stale-allow)` markers (the meta escape hatch).
fn stale_allow_findings(ctx: &FileCtx) -> Vec<Finding> {
    let mut stale = Vec::new();
    let mut lines: Vec<&u32> = ctx.lexed.allows.keys().collect();
    lines.sort_unstable();
    for &line in lines {
        let covered = [line, line + 1];
        let live = covered.iter().any(|l| ctx.live_lines.contains(l));
        let raw = covered.iter().any(|l| ctx.raw_lines.contains(l));
        // Annotation on test-only code: the rules never saw it.
        if raw && !live {
            continue;
        }
        for rule in &ctx.lexed.allows[&line] {
            if rule == rules::STALE_ALLOW {
                continue;
            }
            let known = rule == "all" || rules::ALL_RULES.contains(&rule.as_str());
            if !known {
                stale.push(Finding {
                    rule: rules::STALE_ALLOW,
                    line,
                    message: format!("allow names unknown rule `{rule}`; remove or fix the name"),
                });
                continue;
            }
            let fires = ctx
                .findings
                .iter()
                .any(|f| covered.contains(&f.line) && (rule == "all" || f.rule == rule.as_str()));
            if !fires {
                stale.push(Finding {
                    rule: rules::STALE_ALLOW,
                    line,
                    message: format!(
                        "allow(`{rule}`) no longer suppresses anything here; remove it"
                    ),
                });
            }
        }
    }
    stale
}

/// Removes `#[cfg(test)]` / `#[test]` items (attributes, the item
/// head, and its body) from the token stream, so test code is never
/// linted. `#[cfg(not(test))]` is production code and is kept.
fn strip_test_items(tokens: &[Tok]) -> Vec<Tok> {
    let mut out: Vec<Tok> = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = matching(tokens, i + 1, '[', ']');
            let inner = &tokens[i + 2..close.min(tokens.len())];
            let is_test_attr = inner.iter().any(|t| t.is_ident("test"))
                && !inner.iter().any(|t| t.is_ident("not"));
            if is_test_attr {
                // Skip any further attributes, then the whole item.
                let mut j = close + 1;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = matching(tokens, j + 1, '[', ']') + 1;
                }
                i = skip_item(tokens, j);
                continue;
            }
            // A kept attribute: copy it wholesale so its brackets never
            // look like indexing.
            for tok in &tokens[i..=close.min(tokens.len() - 1)] {
                out.push(tok.clone());
            }
            i = close + 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Index of the token closing the bracket opened at `open`.
fn matching(tokens: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct(open_c) {
            depth += 1;
        } else if tokens[j].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Index just past one item starting at `start`: either the matching
/// `}` of its first brace block, or the first `;` outside any braces.
fn skip_item(tokens: &[Tok], start: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_modules_are_not_linted() {
        let src = "
            pub fn lib() -> u64 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!(\"boom\"); }
            }
        ";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "
            #[cfg(not(test))]
            pub fn lib() { Some(1).unwrap(); }
        ";
        let findings = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, rules::NO_UNWRAP);
    }

    #[test]
    fn allow_on_the_line_above_suppresses() {
        let src = "
            pub fn lib() {
                // lint: allow(no-unwrap) validated by the builder
                Some(1).unwrap();
            }
        ";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_of_a_different_rule_does_not_suppress() {
        let src = "
            pub fn lib() {
                // lint: allow(wallclock-rng)
                Some(1).unwrap();
            }
        ";
        // The unwrap still fires — and the mismatched annotation is
        // itself reported as stale.
        let findings = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].rule, rules::STALE_ALLOW);
        assert_eq!(findings[1].rule, rules::NO_UNWRAP);
    }

    #[test]
    fn doc_examples_are_not_findings() {
        let src = "
            /// ```
            /// let x = foo().unwrap();
            /// ```
            pub fn foo() -> Option<u64> { None }
        ";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn indexing_fires_only_on_hot_paths() {
        let src = "pub fn f(v: &[u64], i: usize) -> u64 { v[i] }";
        assert!(lint_source("crates/graph/src/graph.rs", src).is_empty());
        let hot = lint_source("crates/pim/src/sim.rs", src);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].rule, rules::UNCHECKED_INDEX);
    }

    #[test]
    fn panic_path_calls_are_not_macro_findings() {
        // `std::panic::resume_unwind` is not `panic!`.
        let src = "pub fn f(p: Box<dyn std::any::Any + Send>) { std::panic::resume_unwind(p) }";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }
}
