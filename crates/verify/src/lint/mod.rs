//! The project lint engine — a token-level scanner over workspace
//! sources with **no external dependencies**.
//!
//! Rules (see [`rules`]):
//!
//! | rule | what it denies | where |
//! |---|---|---|
//! | `no-unwrap` | `.unwrap()`, `.expect()`, `panic!` | non-test library code (binaries exempt) |
//! | `unchecked-index` | `x[i]` slice indexing | `pim::sim` and `alloc` hot paths |
//! | `wallclock-rng` | `Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy` | deterministic sweep paths |
//! | `nan-unsafe-cmp` | `partial_cmp`, `== 1.0` float equality | everywhere |
//!
//! `#[cfg(test)]` modules, `#[test]` functions, comments (including
//! doc-comment examples) and string literals are never scanned.
//!
//! The escape hatch is an inline annotation on the offending line or
//! the line directly above it:
//!
//! ```text
//! // lint: allow(no-unwrap) — capacity was validated at build time
//! let slot = table.get(i).unwrap();
//! ```
//!
//! `// lint: allow(all)` suppresses every rule for one line. The
//! `paraconv-verify` binary walks the workspace, prints unsuppressed
//! findings as `path:line: [rule] message` and exits non-zero when any
//! exist.

mod lexer;
pub mod rules;

use lexer::{lex, Tok, TokKind};

/// One unsuppressed lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    /// The 1-based source line.
    pub line: u32,
    /// A human-readable explanation.
    pub message: String,
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: [{}] {}", self.line, self.rule, self.message)
    }
}

/// Lints one source file. `path` selects the path-scoped rules
/// (indexing hot paths, wall-clock exemptions); `source` is the file
/// content. Returns the findings that survive `// lint: allow(...)`
/// annotations, sorted by line.
#[must_use]
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let stripped = strip_test_items(&lexed.tokens);
    let mut findings = rules::scan(path, &stripped);
    findings.retain(|f| {
        let allowed_on = |line: u32| {
            lexed
                .allows
                .get(&line)
                .is_some_and(|rules| rules.iter().any(|r| r == f.rule || r == "all"))
        };
        !(allowed_on(f.line) || (f.line > 1 && allowed_on(f.line - 1)))
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Removes `#[cfg(test)]` / `#[test]` items (attributes, the item
/// head, and its body) from the token stream, so test code is never
/// linted. `#[cfg(not(test))]` is production code and is kept.
fn strip_test_items(tokens: &[Tok]) -> Vec<Tok> {
    let mut out: Vec<Tok> = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = matching(tokens, i + 1, '[', ']');
            let inner = &tokens[i + 2..close.min(tokens.len())];
            let is_test_attr = inner.iter().any(|t| t.is_ident("test"))
                && !inner.iter().any(|t| t.is_ident("not"));
            if is_test_attr {
                // Skip any further attributes, then the whole item.
                let mut j = close + 1;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = matching(tokens, j + 1, '[', ']') + 1;
                }
                i = skip_item(tokens, j);
                continue;
            }
            // A kept attribute: copy it wholesale so its brackets never
            // look like indexing.
            for tok in &tokens[i..=close.min(tokens.len() - 1)] {
                out.push(tok.clone());
            }
            i = close + 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Index of the token closing the bracket opened at `open`.
fn matching(tokens: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct(open_c) {
            depth += 1;
        } else if tokens[j].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Index just past one item starting at `start`: either the matching
/// `}` of its first brace block, or the first `;` outside any braces.
fn skip_item(tokens: &[Tok], start: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_modules_are_not_linted() {
        let src = "
            pub fn lib() -> u64 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!(\"boom\"); }
            }
        ";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "
            #[cfg(not(test))]
            pub fn lib() { Some(1).unwrap(); }
        ";
        let findings = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, rules::NO_UNWRAP);
    }

    #[test]
    fn allow_on_the_line_above_suppresses() {
        let src = "
            pub fn lib() {
                // lint: allow(no-unwrap) validated by the builder
                Some(1).unwrap();
            }
        ";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_of_a_different_rule_does_not_suppress() {
        let src = "
            pub fn lib() {
                // lint: allow(wallclock-rng)
                Some(1).unwrap();
            }
        ";
        assert_eq!(lint_source("crates/x/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn doc_examples_are_not_findings() {
        let src = "
            /// ```
            /// let x = foo().unwrap();
            /// ```
            pub fn foo() -> Option<u64> { None }
        ";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn indexing_fires_only_on_hot_paths() {
        let src = "pub fn f(v: &[u64], i: usize) -> u64 { v[i] }";
        assert!(lint_source("crates/graph/src/graph.rs", src).is_empty());
        let hot = lint_source("crates/pim/src/sim.rs", src);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].rule, rules::UNCHECKED_INDEX);
    }

    #[test]
    fn panic_path_calls_are_not_macro_findings() {
        // `std::panic::resume_unwind` is not `panic!`.
        let src = "pub fn f(p: Box<dyn std::any::Any + Send>) { std::panic::resume_unwind(p) }";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }
}
