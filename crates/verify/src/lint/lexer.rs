//! A minimal Rust lexer for the lint engine.
//!
//! Comments (including doc comments), strings, chars and lifetimes
//! are recognized and dropped from the token stream, so rule matching
//! never fires inside documentation examples or string literals.
//! `// lint: allow(rule, ...)` annotations are collected per line as
//! they are stripped.

use std::collections::HashMap;

/// What a token is; only the shape the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// An integer literal.
    Int,
    /// A floating-point literal.
    Float,
    /// A string, byte-string or char literal (contents dropped).
    Literal,
    /// A single punctuation character.
    Punct(char),
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub(crate) struct Tok {
    pub kind: TokKind,
    /// The identifier text; empty for every other kind.
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub(crate) fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    pub(crate) fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// The lexed stream plus the allow-annotations found in comments.
#[derive(Debug)]
pub(crate) struct Lexed {
    pub tokens: Vec<Tok>,
    /// Line → rule names allowed on that line (or the line below).
    pub allows: HashMap<u32, Vec<String>>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses `lint: allow(a, b)` out of one comment body.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lint:")?;
    let rest = comment[at + 5..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    Some(
        rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect(),
    )
}

pub(crate) fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut tokens = Vec::new();
    let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! at {
        ($k:expr) => {
            chars.get($k).copied()
        };
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (incl. doc comments) and allow annotations.
        if c == '/' && at!(i + 1) == Some('/') {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            // Doc comments (`///`, `//!` — but not `////`) are prose:
            // text *describing* an annotation must not register one.
            let is_doc = match at!(start) {
                Some('!') => true,
                Some('/') => at!(start + 1) != Some('/'),
                _ => false,
            };
            if !is_doc {
                let body: String = chars[start..j].iter().collect();
                if let Some(rules) = parse_allow(&body) {
                    allows.entry(line).or_default().extend(rules);
                }
            }
            i = j;
            continue;
        }
        // Block comments, nested.
        if c == '/' && at!(i + 1) == Some('*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && at!(j + 1) == Some('*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && at!(j + 1) == Some('/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw strings, raw identifiers, byte strings and byte chars.
        if c == 'r' || c == 'b' {
            let mut k = i + 1;
            if c == 'b' && at!(k) == Some('r') {
                k += 1;
            }
            let mut hashes = 0usize;
            while at!(k) == Some('#') {
                hashes += 1;
                k += 1;
            }
            let raw_marker = c == 'r' || at!(i + 1) == Some('r');
            if at!(k) == Some('"') && (raw_marker || hashes == 0) {
                if raw_marker {
                    // r"..." / r#"..."# / br#"..."#
                    let mut j = k + 1;
                    'raw: while j < n {
                        if chars[j] == '\n' {
                            line += 1;
                        } else if chars[j] == '"' {
                            let mut h = 0usize;
                            while h < hashes && at!(j + 1 + h) == Some('#') {
                                h += 1;
                            }
                            if h == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = j;
                    continue;
                }
                // b"..." — fall through to the plain-string scanner.
                i = k;
                // (the '"' branch below consumes it)
                let (j, newlines) = scan_plain_string(&chars, i);
                line += newlines;
                tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                i = j;
                continue;
            }
            if c == 'b' && hashes == 0 && at!(i + 1) == Some('\'') {
                // Byte char b'x' / b'\n'.
                let j = scan_char(&chars, i + 1);
                tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                i = j;
                continue;
            }
            // r#ident — a raw identifier; fall through to the ident
            // scanner from the char after the hashes.
            if c == 'r' && hashes == 1 && at!(k).map(is_ident_start) == Some(true) {
                let mut j = k;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let text: String = chars[k..j].iter().collect();
                tokens.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                i = j;
                continue;
            }
            // Plain identifier starting with r/b.
        }
        if c == '"' {
            let (j, newlines) = scan_plain_string(&chars, i);
            line += newlines;
            tokens.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        if c == '\'' {
            // Lifetime or char literal.
            let next = at!(i + 1);
            let is_char = match next {
                Some('\\') => true,
                Some(x) if is_ident_start(x) => at!(i + 2) == Some('\''),
                Some(_) => true,
                None => false,
            };
            if is_char {
                let j = scan_char(&chars, i);
                tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                i = j;
                continue;
            }
            // Lifetime: consume the quote and the identifier, emit
            // nothing (rules never match lifetimes).
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let (j, kind) = scan_number(&chars, i);
            tokens.push(Tok {
                kind,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }
        tokens.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
        });
        i += 1;
    }

    Lexed { tokens, allows }
}

/// Scans a `"..."` string starting at the opening quote; returns the
/// index past the closing quote and the newline count inside.
fn scan_plain_string(chars: &[char], start: usize) -> (usize, u32) {
    let n = chars.len();
    let mut j = start + 1;
    let mut newlines = 0u32;
    while j < n {
        match chars[j] {
            // An escaped newline (string continuation) still ends a
            // source line — skipping it without counting drifts every
            // later line number in the file.
            '\\' => {
                if chars.get(j + 1) == Some(&'\n') {
                    newlines += 1;
                }
                j += 2;
            }
            '"' => return (j + 1, newlines),
            '\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, newlines)
}

/// Scans a `'x'` / `'\n'` char literal starting at the opening quote;
/// returns the index past the closing quote.
fn scan_char(chars: &[char], start: usize) -> usize {
    let n = chars.len();
    let mut j = start + 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Scans a numeric literal; classifies floats by a fractional part,
/// an exponent, or an `f32`/`f64` suffix.
fn scan_number(chars: &[char], start: usize) -> (usize, TokKind) {
    let n = chars.len();
    let mut j = start;
    let mut float = false;
    let radix_prefix =
        chars[start] == '0' && matches!(chars.get(start + 1).copied(), Some('x' | 'o' | 'b'));
    if radix_prefix {
        j = start + 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j, TokKind::Int);
    }
    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    // Fractional part: a dot followed by a digit (so `1..n` ranges and
    // `1.method()` stay integers).
    if j < n && chars[j] == '.' && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        j += 1;
        while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
    }
    // Exponent.
    if j < n && (chars[j] == 'e' || chars[j] == 'E') {
        let mut k = j + 1;
        if matches!(chars.get(k).copied(), Some('+' | '-')) {
            k += 1;
        }
        if chars.get(k).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            j = k;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Suffix (u64, i32, f64, …).
    let suffix_start = j;
    while j < n && is_ident_continue(chars[j]) {
        j += 1;
    }
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix.starts_with('f') {
        float = true;
    }
    (j, if float { TokKind::Float } else { TokKind::Int })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // a.unwrap() in a comment
            /// doc: x.unwrap()
            /* block .unwrap() /* nested */ */
            let s = "text .unwrap() inside";
            let r = r#"raw .unwrap()"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let e = '\\n';";
        let lexed = lex(src);
        // The trailing code after the lifetimes must still tokenize.
        assert!(lexed.tokens.iter().any(|t| t.is_ident("str")));
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2, "two char literals");
    }

    #[test]
    fn numbers_classify_floats() {
        let kinds: Vec<TokKind> = lex("1 2.5 3e8 0x1f 4f64 5u32 1..9")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| matches!(k, TokKind::Int | TokKind::Float))
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
            ]
        );
    }

    #[test]
    fn allow_annotations_are_collected_per_line() {
        let src = "fn a() {}\n// lint: allow(no-unwrap, nan-unsafe-cmp) reason\nfn b() {}\n";
        let lexed = lex(src);
        let rules = &lexed.allows[&2];
        assert_eq!(
            rules,
            &vec!["no-unwrap".to_string(), "nan-unsafe-cmp".to_string()]
        );
    }

    #[test]
    fn line_numbers_track_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1; // lint: allow(all)\n";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("b"))
            .expect("b is lexed");
        assert_eq!(b.line, 3);
        assert!(lexed.allows.contains_key(&3));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = 1; let rate = 2;");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"rate".to_string()));
    }
}
