//! Dataflow-aware lint rules that walk beyond single tokens: facts are
//! collected per file (atomic operation sites, per-function lock
//! acquisition sequences, hash-container bindings), then analyzed
//! across the whole workspace in a second pass.
//!
//! Receivers are matched **by name** (`ENABLED.load(..)` and a
//! hypothetical second `ENABLED` in another crate would be grouped
//! together); the workspace keeps its atomics uniquely named, and the
//! `// lint: allow(...)` escape hatch covers deliberate exceptions.

use super::lexer::{Tok, TokKind};
use super::rules::{ATOMIC_ORDERING, LOCK_ORDER, NONDET_ITERATION};
use super::Finding;

/// What an atomic call site does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// `load`
    Load,
    /// `store`
    Store,
    /// `fetch_*`, `swap`, `compare_exchange*` — read-modify-write.
    Rmw,
}

/// The `Ordering` argument at an atomic call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOrd {
    /// `Ordering::Relaxed`
    Relaxed,
    /// `Ordering::Acquire`
    Acquire,
    /// `Ordering::Release`
    Release,
    /// `Ordering::AcqRel`
    AcqRel,
    /// `Ordering::SeqCst`
    SeqCst,
}

impl AtomicOrd {
    const fn name(self) -> &'static str {
        match self {
            AtomicOrd::Relaxed => "Relaxed",
            AtomicOrd::Acquire => "Acquire",
            AtomicOrd::Release => "Release",
            AtomicOrd::AcqRel => "AcqRel",
            AtomicOrd::SeqCst => "SeqCst",
        }
    }

    /// Does a load with this ordering synchronize with a release
    /// store?
    const fn acquires(self) -> bool {
        matches!(
            self,
            AtomicOrd::Acquire | AtomicOrd::AcqRel | AtomicOrd::SeqCst
        )
    }

    /// Does a store with this ordering publish prior writes?
    const fn releases(self) -> bool {
        matches!(
            self,
            AtomicOrd::Release | AtomicOrd::AcqRel | AtomicOrd::SeqCst
        )
    }
}

/// One atomic operation site: receiver name, operation, ordering,
/// line. Public so regression tests can pin the orderings of audited
/// sites in the real sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// The receiver's final path segment (`ENABLED`, `cursor`, …).
    pub receiver: String,
    /// Load, store or RMW.
    pub op: AtomicOp,
    /// The first `Ordering::…` argument at the call.
    pub ordering: AtomicOrd,
    /// 1-based source line.
    pub line: u32,
}

/// Extracts every atomic operation site from `source` (test items
/// stripped), for dataflow analysis and for ordering-pin regression
/// tests over the real workspace sources.
#[must_use]
pub fn atomic_sites(source: &str) -> Vec<AtomicSite> {
    let lexed = super::lexer::lex(source);
    let stripped = super::strip_test_items(&lexed.tokens);
    collect_atomics(&stripped)
}

const RMW_METHODS: [&str; 9] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

fn ident_at(ts: &[Tok], i: usize) -> Option<&str> {
    ts.get(i).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn punct_at(ts: &[Tok], i: usize, c: char) -> bool {
    ts.get(i).is_some_and(|t| t.is_punct(c))
}

/// Index of the `)` matching the `(` at `open`.
fn close_paren(ts: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < ts.len() {
        if ts[j].is_punct('(') {
            depth += 1;
        } else if ts[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    ts.len().saturating_sub(1)
}

/// The receiver's final path segment for a method call whose `.` sits
/// at `dot`: `cursor.load` → `cursor`, `self.flag.store` → `flag`,
/// `ring().lock` → `ring`. `None` for shapes the heuristic cannot
/// name (chained temporaries, indexing).
fn receiver_before(ts: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = dot - 1;
    match ts[prev].kind {
        TokKind::Ident => Some(ts[prev].text.clone()),
        TokKind::Punct(')') => {
            // Walk back to the matching '(' and name the call target.
            let mut depth = 0usize;
            let mut j = prev;
            loop {
                if ts[j].is_punct(')') {
                    depth += 1;
                } else if ts[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            if j == 0 {
                return None;
            }
            match ts[j - 1].kind {
                TokKind::Ident => Some(ts[j - 1].text.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

/// The first `Ordering::X` inside `ts[open..=close]`.
fn ordering_in_args(ts: &[Tok], open: usize, close: usize) -> Option<AtomicOrd> {
    let mut j = open;
    while j + 3 <= close {
        if ident_at(ts, j) == Some("Ordering")
            && punct_at(ts, j + 1, ':')
            && punct_at(ts, j + 2, ':')
        {
            return match ident_at(ts, j + 3) {
                Some("Relaxed") => Some(AtomicOrd::Relaxed),
                Some("Acquire") => Some(AtomicOrd::Acquire),
                Some("Release") => Some(AtomicOrd::Release),
                Some("AcqRel") => Some(AtomicOrd::AcqRel),
                Some("SeqCst") => Some(AtomicOrd::SeqCst),
                _ => None,
            };
        }
        j += 1;
    }
    None
}

fn collect_atomics(ts: &[Tok]) -> Vec<AtomicSite> {
    let mut sites = Vec::new();
    for i in 0..ts.len() {
        let Some(name) = ident_at(ts, i) else {
            continue;
        };
        let op = if name == "load" {
            AtomicOp::Load
        } else if name == "store" {
            AtomicOp::Store
        } else if RMW_METHODS.contains(&name) {
            AtomicOp::Rmw
        } else {
            continue;
        };
        if i == 0 || !punct_at(ts, i - 1, '.') || !punct_at(ts, i + 1, '(') {
            continue;
        }
        let close = close_paren(ts, i + 1);
        // Only calls that actually pass an `Ordering::…` are atomic
        // operations; anything else named `load`/`store` is not.
        let Some(ordering) = ordering_in_args(ts, i + 1, close) else {
            continue;
        };
        let Some(receiver) = receiver_before(ts, i - 1) else {
            continue;
        };
        sites.push(AtomicSite {
            receiver,
            op,
            ordering,
            line: ts[i].line,
        });
    }
    sites
}

/// One `.lock()` acquisition inside a function body.
#[derive(Debug, Clone)]
struct LockSite {
    receiver: String,
    line: u32,
}

/// Per-function ordered lock acquisition sequences.
fn collect_lock_sequences(ts: &[Tok]) -> Vec<Vec<LockSite>> {
    let mut sequences: Vec<Vec<LockSite>> = Vec::new();
    // Stack of (brace_depth_at_open, sequence_index) for nested fns.
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    let mut pending_fn = false;
    let mut depth = 0usize;
    for i in 0..ts.len() {
        match ts[i].kind {
            TokKind::Ident if ts[i].text == "fn" => {
                pending_fn = true;
            }
            TokKind::Punct('{') => {
                depth += 1;
                if pending_fn {
                    pending_fn = false;
                    sequences.push(Vec::new());
                    fn_stack.push((depth, sequences.len() - 1));
                }
            }
            TokKind::Punct('}') => {
                if let Some(&(d, _)) = fn_stack.last() {
                    if d == depth {
                        fn_stack.pop();
                    }
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') if pending_fn => {
                // Trait method signature without a body.
                pending_fn = false;
            }
            TokKind::Ident
                if ts[i].text == "lock"
                    && i > 0
                    && punct_at(ts, i - 1, '.')
                    && punct_at(ts, i + 1, '(') =>
            {
                if let (Some(&(_, seq)), Some(receiver)) =
                    (fn_stack.last(), receiver_before(ts, i - 1))
                {
                    sequences[seq].push(LockSite {
                        receiver,
                        line: ts[i].line,
                    });
                }
            }
            _ => {}
        }
    }
    sequences
}

/// Identifiers bound to `HashMap`/`HashSet` in this file (lets,
/// params, struct fields).
fn collect_hash_bindings(ts: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..ts.len() {
        if ts[i].kind != TokKind::Ident {
            continue;
        }
        let after = i + 1;
        let is_binding_punct = punct_at(ts, after, ':') && !punct_at(ts, after + 1, ':');
        let is_assign = punct_at(ts, after, '=') && !punct_at(ts, after + 1, '=');
        if !is_binding_punct && !is_assign {
            continue;
        }
        // Skip a `std :: collections ::` path prefix.
        let mut k = after + 1;
        while ident_at(ts, k) == Some("std")
            || ident_at(ts, k) == Some("collections")
            || punct_at(ts, k, ':')
        {
            k += 1;
        }
        if matches!(ident_at(ts, k), Some("HashMap" | "HashSet")) {
            names.push(ts[i].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers whose appearance downstream of an iteration makes the
/// order irrelevant (sorting, ordered re-collection, commutative
/// reductions).
const ORDER_SINKS: [&str; 14] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "sum",
    "count",
    "min",
    "max",
    "all",
    "any",
];

fn has_order_sink(ts: &[Tok], from: usize) -> bool {
    let mut j = from;
    let limit = (from + 40).min(ts.len());
    while j < limit {
        match ts[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') => return false,
            TokKind::Ident if ORDER_SINKS.contains(&ts[j].text.as_str()) => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

fn nondet_iteration_findings(ts: &[Tok], hash_names: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let known = |name: &str| hash_names.iter().any(|n| n == name);
    for i in 0..ts.len() {
        // `X.iter()` / `X.keys()` / … with X hash-bound.
        if let Some(m) = ident_at(ts, i) {
            if ITER_METHODS.contains(&m)
                && i > 0
                && punct_at(ts, i - 1, '.')
                && punct_at(ts, i + 1, '(')
            {
                if let Some(receiver) = receiver_before(ts, i - 1) {
                    if known(&receiver) {
                        let close = close_paren(ts, i + 1);
                        if !has_order_sink(ts, close + 1) {
                            findings.push(Finding {
                                rule: NONDET_ITERATION,
                                line: ts[i].line,
                                message: format!(
                                    "iteration over hash container `{receiver}` has unspecified \
                                     order; sort, collect into a BTree*, or annotate an \
                                     order-insensitive use"
                                ),
                            });
                        }
                    }
                }
            }
            // `for PAT in [&][mut] [self.]X { … }` with X hash-bound.
            if m == "for" {
                let mut j = i + 1;
                let limit = (i + 16).min(ts.len());
                while j < limit && ident_at(ts, j) != Some("in") {
                    j += 1;
                }
                if j < limit {
                    let mut k = j + 1;
                    while punct_at(ts, k, '&') || ident_at(ts, k) == Some("mut") {
                        k += 1;
                    }
                    if ident_at(ts, k) == Some("self") && punct_at(ts, k + 1, '.') {
                        k += 2;
                    }
                    if let Some(name) = ident_at(ts, k) {
                        if known(name) && punct_at(ts, k + 1, '{') {
                            findings.push(Finding {
                                rule: NONDET_ITERATION,
                                line: ts[k].line,
                                message: format!(
                                    "`for` over hash container `{name}` has unspecified order; \
                                     sort first, or annotate an order-insensitive loop body"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    findings
}

/// Per-file facts feeding the cross-file pass.
#[derive(Debug)]
pub(crate) struct FileDataflow {
    pub atomics: Vec<AtomicSite>,
    pub lock_sequences: Vec<Vec<LockSiteOwned>>,
    pub nondet: Vec<Finding>,
}

/// Owned lock-site record (receiver, line) exported to the cross-file
/// pass.
pub(crate) type LockSiteOwned = (String, u32);

pub(crate) fn collect_file(ts: &[Tok]) -> FileDataflow {
    let hash_names = collect_hash_bindings(ts);
    FileDataflow {
        atomics: collect_atomics(ts),
        lock_sequences: collect_lock_sequences(ts)
            .into_iter()
            .map(|seq| seq.into_iter().map(|s| (s.receiver, s.line)).collect())
            .collect(),
        nondet: nondet_iteration_findings(ts, &hash_names),
    }
}

/// Cross-file pass: pairs Relaxed loads against Release-or-stronger
/// publishers (and Relaxed stores against Acquire-or-stronger loads)
/// per receiver name, and checks lock acquisition order consistency
/// across every function in the workspace. Returns `(file_index,
/// finding)` pairs.
pub(crate) fn cross_file(files: &[(String, FileDataflow)]) -> Vec<(usize, Finding)> {
    let mut findings = Vec::new();

    // --- atomic-ordering ---
    let mut by_receiver: Vec<(&str, Vec<(usize, &AtomicSite)>)> = Vec::new();
    for (fi, (_, df)) in files.iter().enumerate() {
        for site in &df.atomics {
            match by_receiver.iter_mut().find(|(r, _)| *r == site.receiver) {
                Some((_, sites)) => sites.push((fi, site)),
                None => by_receiver.push((&site.receiver, vec![(fi, site)])),
            }
        }
    }
    by_receiver.sort_by_key(|(r, _)| r.to_string());
    for (receiver, sites) in &by_receiver {
        let publisher = sites
            .iter()
            .find(|(_, s)| s.op != AtomicOp::Load && s.ordering.releases());
        let acquire_load = sites
            .iter()
            .find(|(_, s)| s.op == AtomicOp::Load && s.ordering.acquires());
        if let Some(&(pfi, pub_site)) = publisher {
            for &(fi, site) in sites {
                if site.op == AtomicOp::Load && site.ordering == AtomicOrd::Relaxed {
                    findings.push((
                        fi,
                        Finding {
                            rule: ATOMIC_ORDERING,
                            line: site.line,
                            message: format!(
                                "`{receiver}` is published with {} at {}:{} but loaded Relaxed \
                                 here; pair Acquire with Release, or relax the store if a mutex \
                                 already orders the data",
                                pub_site.ordering.name(),
                                files[pfi].0,
                                pub_site.line
                            ),
                        },
                    ));
                }
            }
        }
        if let Some(&(afi, acq_site)) = acquire_load {
            for &(fi, site) in sites {
                if site.op == AtomicOp::Store && site.ordering == AtomicOrd::Relaxed {
                    findings.push((
                        fi,
                        Finding {
                            rule: ATOMIC_ORDERING,
                            line: site.line,
                            message: format!(
                                "`{receiver}` is loaded with {} at {}:{} but stored Relaxed here; \
                                 an Acquire load needs a Release store to pair with",
                                acq_site.ordering.name(),
                                files[afi].0,
                                acq_site.line
                            ),
                        },
                    ));
                }
            }
        }
    }

    // --- lock-order ---
    // Directed acquisition edges a→b with their first site, workspace
    // wide; a cycle of length two (a→b somewhere, b→a elsewhere) is a
    // lock-order inversion at every participating site.
    // (first-lock, second-lock) → every (file index, line) acquiring
    // in that order.
    type LockEdges = Vec<((String, String), Vec<(usize, u32)>)>;
    let mut edges: LockEdges = Vec::new();
    for (fi, (_, df)) in files.iter().enumerate() {
        for seq in &df.lock_sequences {
            for (i, (first, _)) in seq.iter().enumerate() {
                for (second, line2) in seq.iter().skip(i + 1) {
                    if first == second {
                        continue;
                    }
                    let key = (first.clone(), second.clone());
                    match edges.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, sites)) => sites.push((fi, *line2)),
                        None => edges.push((key, vec![(fi, *line2)])),
                    }
                }
            }
        }
    }
    edges.sort_by(|a, b| a.0.cmp(&b.0));
    for ((a, b), sites) in &edges {
        if a >= b {
            continue;
        }
        let reverse = edges.iter().find(|((x, y), _)| x == b && y == a);
        if let Some((_, rev_sites)) = reverse {
            for &(fi, line) in sites {
                let (rfi, rline) = rev_sites[0];
                findings.push((
                    fi,
                    Finding {
                        rule: LOCK_ORDER,
                        line,
                        message: format!(
                            "`{b}` is locked after `{a}` here, but the opposite order is taken \
                             at {}:{rline}; pick one global acquisition order",
                            files[rfi].0
                        ),
                    },
                ));
            }
            for &(fi, line) in rev_sites {
                let (sfi, sline) = sites[0];
                findings.push((
                    fi,
                    Finding {
                        rule: LOCK_ORDER,
                        line,
                        message: format!(
                            "`{a}` is locked after `{b}` here, but the opposite order is taken \
                             at {}:{sline}; pick one global acquisition order",
                            files[sfi].0
                        ),
                    },
                ));
            }
        }
    }

    // --- nondet-iteration (collected per file, no cross-file state) ---
    for (fi, (_, df)) in files.iter().enumerate() {
        for f in &df.nondet {
            findings.push((fi, f.clone()));
        }
    }

    findings
}
