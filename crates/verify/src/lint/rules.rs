//! The lint rule set, matched over the stripped token stream.

use super::lexer::{Tok, TokKind};
use super::Finding;

/// Deny `unwrap()` / `expect()` / `panic!` in non-test library code.
pub const NO_UNWRAP: &str = "no-unwrap";
/// Flag unchecked slice indexing in the simulator and allocator hot
/// paths.
pub const UNCHECKED_INDEX: &str = "unchecked-index";
/// Forbid wall-clock and RNG calls in deterministic sweep paths.
pub const WALLCLOCK_RNG: &str = "wallclock-rng";
/// Flag NaN-unsafe `f64` comparisons.
pub const NAN_UNSAFE_CMP: &str = "nan-unsafe-cmp";
/// Dataflow rule: a `Relaxed` atomic load paired (by receiver name,
/// across files) with a `Release`-or-stronger publisher — or a
/// `Relaxed` store paired with an `Acquire`-or-stronger load. Either
/// half alone provides no happens-before edge.
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
/// Dataflow rule: two mutexes acquired in opposite orders by
/// different functions anywhere in the workspace — the classic ABBA
/// deadlock shape.
pub const LOCK_ORDER: &str = "lock-order";
/// Dataflow rule: iterating a `HashMap`/`HashSet` into ordered output
/// without sorting or an order-insensitive sink; iteration order is
/// nondeterministic across runs.
pub const NONDET_ITERATION: &str = "nondet-iteration";
/// Meta rule: a `// lint: allow(...)` annotation naming a rule that no
/// longer fires on the annotated line — the escape hatch outlived the
/// finding and should be removed.
pub const STALE_ALLOW: &str = "stale-allow";

/// Every rule the engine knows, for `allow(...)` validation and docs.
pub const ALL_RULES: [&str; 8] = [
    NO_UNWRAP,
    UNCHECKED_INDEX,
    WALLCLOCK_RNG,
    NAN_UNSAFE_CMP,
    ATOMIC_ORDERING,
    LOCK_ORDER,
    NONDET_ITERATION,
    STALE_ALLOW,
];

/// The no-unwrap rule targets *library* code: binaries may abort on
/// bad invocations, that is their error channel.
fn unwrap_applies(path: &str) -> bool {
    !path.contains("/bin/")
}

/// Paths whose hot loops get the unchecked-indexing rule.
fn indexing_applies(path: &str) -> bool {
    path.contains("pim/src/sim.rs") || path.contains("alloc/src/")
}

/// Paths exempt from the wall-clock/RNG rule: the observability crate
/// measures real time by design, binaries and benches are not on the
/// deterministic sweep path.
fn wallclock_applies(path: &str) -> bool {
    !(path.contains("obs/src/") || path.contains("/bin/") || path.contains("/benches/"))
}

fn punct_at(ts: &[Tok], i: usize, c: char) -> bool {
    ts.get(i).is_some_and(|t| t.is_punct(c))
}

fn ident_at(ts: &[Tok], i: usize) -> Option<&str> {
    ts.get(i).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn float_at(ts: &[Tok], i: usize) -> bool {
    ts.get(i).is_some_and(|t| t.kind == TokKind::Float)
}

/// Runs every applicable rule over a stripped token stream.
pub(crate) fn scan(path: &str, ts: &[Tok]) -> Vec<Finding> {
    let path = path.replace('\\', "/");
    let check_unwrap = unwrap_applies(&path);
    let check_index = indexing_applies(&path);
    let check_wallclock = wallclock_applies(&path);
    let mut findings = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        findings.push(Finding {
            rule,
            line,
            message,
        });
    };

    for i in 0..ts.len() {
        let tok = &ts[i];
        match tok.kind {
            TokKind::Ident => {
                let name = tok.text.as_str();
                // no-unwrap: `.unwrap(` / `.expect(` / `panic!`.
                if check_unwrap
                    && (name == "unwrap" || name == "expect")
                    && i > 0
                    && punct_at(ts, i - 1, '.')
                    && punct_at(ts, i + 1, '(')
                {
                    push(
                        NO_UNWRAP,
                        tok.line,
                        format!("`.{name}()` in library code; return a typed error or annotate"),
                    );
                }
                if check_unwrap && name == "panic" && punct_at(ts, i + 1, '!') {
                    push(
                        NO_UNWRAP,
                        tok.line,
                        "`panic!` in library code; return a typed error or annotate".to_string(),
                    );
                }
                // wallclock-rng: `Instant::now` / `SystemTime::now`,
                // `thread_rng`, `from_entropy`.
                if check_wallclock {
                    if (name == "Instant" || name == "SystemTime")
                        && punct_at(ts, i + 1, ':')
                        && punct_at(ts, i + 2, ':')
                        && ident_at(ts, i + 3) == Some("now")
                    {
                        push(
                            WALLCLOCK_RNG,
                            tok.line,
                            format!("`{name}::now` in a deterministic path; results become time-dependent"),
                        );
                    }
                    if name == "thread_rng" || name == "from_entropy" {
                        push(
                            WALLCLOCK_RNG,
                            tok.line,
                            format!("`{name}` draws OS entropy; use a pinned seed"),
                        );
                    }
                }
                // nan-unsafe-cmp: `.partial_cmp(`.
                if name == "partial_cmp"
                    && i > 0
                    && punct_at(ts, i - 1, '.')
                    && punct_at(ts, i + 1, '(')
                {
                    push(
                        NAN_UNSAFE_CMP,
                        tok.line,
                        "`partial_cmp` is None on NaN; prefer `total_cmp`".to_string(),
                    );
                }
            }
            TokKind::Punct('[') if check_index => {
                // A '[' right after an ident, ')' or ']' is indexing;
                // macro invocations (`vec![`) put a '!' in between and
                // never match.
                let indexes = i > 0
                    && matches!(
                        ts[i - 1].kind,
                        TokKind::Ident | TokKind::Punct(')') | TokKind::Punct(']')
                    );
                if indexes {
                    push(
                        UNCHECKED_INDEX,
                        tok.line,
                        "unchecked slice index in a hot path; prefer `get` or annotate the bounds proof"
                            .to_string(),
                    );
                }
            }
            TokKind::Punct('=') if punct_at(ts, i + 1, '=') => {
                // `a == 1.0` / `1.0 == a`; skip the second '=' of `==`
                // and compound tokens like `<=` (their first char is
                // not '=').
                let prev_is_eq_or_bang =
                    i > 0 && (punct_at(ts, i - 1, '=') || punct_at(ts, i - 1, '!'));
                if !prev_is_eq_or_bang && (float_at(ts, i + 2) || (i > 0 && float_at(ts, i - 1))) {
                    push(
                        NAN_UNSAFE_CMP,
                        tok.line,
                        "exact float equality; compare within an epsilon or use bit patterns"
                            .to_string(),
                    );
                }
            }
            TokKind::Punct('!')
                if punct_at(ts, i + 1, '=')
                    && (float_at(ts, i + 2) || (i > 0 && float_at(ts, i - 1))) =>
            {
                push(
                    NAN_UNSAFE_CMP,
                    tok.line,
                    "exact float inequality; compare within an epsilon or use bit patterns"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    findings
}
