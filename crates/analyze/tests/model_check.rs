//! Model-check gate: every passing harness explores its bounded state
//! space exhaustively; every seeded-bug fixture fails with a
//! replayable interleaving that reproduces.

use paraconv_analyze::{explore, harnesses, replay, ExploreOpts, FailureKind};

fn opts() -> ExploreOpts {
    ExploreOpts::default()
}

#[test]
fn passing_harnesses_explore_exhaustively() {
    for h in harnesses().iter().filter(|h| !h.seeded_bug) {
        let explored = h
            .run(&opts())
            .unwrap_or_else(|f| panic!("harness {} failed:\n{f}", h.name));
        assert!(
            explored.complete,
            "harness {} did not exhaust its state space within {} schedules",
            h.name,
            opts().max_schedules
        );
        assert!(
            explored.schedules > 1,
            "harness {} explored a single schedule — no concurrency was modeled",
            h.name
        );
    }
}

#[test]
fn seeded_fixtures_fail_with_replayable_schedules() {
    for h in harnesses().iter().filter(|h| h.seeded_bug) {
        let failure = match h.run(&opts()) {
            Err(f) => f,
            Ok(e) => panic!(
                "seeded fixture {} passed {} schedules without failing",
                h.name, e.schedules
            ),
        };
        assert!(
            !failure.schedule.is_empty(),
            "fixture {} failure carries no schedule seed",
            h.name
        );
        assert!(
            !failure.trace.is_empty(),
            "fixture {} failure carries no interleaving",
            h.name
        );
        // The printed seed must reproduce the same failure kind.
        let replayed = replay(&opts(), &failure.schedule, h.body)
            .unwrap_or_else(|e| panic!("fixture {} seed did not parse: {e}", h.name))
            .unwrap_or_else(|| {
                panic!(
                    "fixture {} schedule {} did not reproduce the failure",
                    h.name, failure.schedule
                )
            });
        assert_eq!(
            replayed.kind, failure.kind,
            "fixture {} replay reproduced a different failure kind",
            h.name
        );
    }
}

#[test]
fn broken_merge_reports_an_interleaving() {
    let h = paraconv_analyze::find_harness("obs-merge-broken").unwrap();
    let failure = h.run(&opts()).expect_err("non-commutative merge must fail");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("sequential expectation"),
        "unexpected message: {}",
        failure.message
    );
    let report = failure.to_string();
    assert!(report.contains("schedule:"), "report misses the seed");
    assert!(report.contains("interleaving:"), "report misses the trace");
}

#[test]
fn relaxed_publication_is_a_data_race_only_with_preemption_budget() {
    let h = paraconv_analyze::find_harness("publish-relaxed").unwrap();
    // Budget 0 never switches away from a runnable thread: the reader
    // samples the gate before the writer runs, sees false, and the bug
    // stays hidden — iterative context bounding is what surfaces it.
    let zero = ExploreOpts {
        preemption_budget: 0,
        ..opts()
    };
    let explored = h.run(&zero).expect("budget 0 cannot reach the race");
    assert!(explored.complete);
    // One preemption reaches it, reported as a data race.
    let one = ExploreOpts {
        preemption_budget: 1,
        ..opts()
    };
    let failure = h.run(&one).expect_err("budget 1 must reach the race");
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(
        failure.message.contains("without ordering"),
        "unexpected message: {}",
        failure.message
    );
}

#[test]
fn deadlock_is_detected_with_its_interleaving() {
    let failure = explore(&opts(), || {
        let a = std::sync::Arc::new(paraconv_analyze::shim::Mutex::new("lock.a", 0u64));
        let b = std::sync::Arc::new(paraconv_analyze::shim::Mutex::new("lock.b", 0u64));
        let t = {
            let a = std::sync::Arc::clone(&a);
            let b = std::sync::Arc::clone(&b);
            paraconv_analyze::shim::spawn(move || {
                let _gb = b.lock();
                let _ga = a.lock();
            })
        };
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        t.join();
    })
    .expect_err("opposite lock orders must deadlock under some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(!failure.schedule.is_empty());
}

#[test]
fn lost_wakeup_is_a_deadlock_the_atomic_wait_prevents() {
    // The seeded fixture is the serve queue with a two-step
    // unlock-then-park wait: a drain notify lands in the gap and is
    // lost, leaving a consumer parked forever.
    let broken = paraconv_analyze::find_harness("serve-queue-lost-wakeup").unwrap();
    let failure = broken
        .run(&opts())
        .expect_err("detached wait must lose a wakeup under some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("blocked"),
        "unexpected message: {}",
        failure.message
    );
    // The identical protocol with the real atomic release-and-wait
    // explores the same space clean — the one-op wait is the fix.
    let fixed = paraconv_analyze::find_harness("serve-queue").unwrap();
    let explored = fixed
        .run(&opts())
        .unwrap_or_else(|f| panic!("atomic-wait queue protocol must survive every schedule:\n{f}"));
    assert!(explored.complete);
}

#[test]
fn schedule_budget_caps_exploration_incomplete() {
    let h = paraconv_analyze::find_harness("obs-merge").unwrap();
    let capped = ExploreOpts {
        max_schedules: 1,
        ..opts()
    };
    let explored = h.run(&capped).expect("first schedule passes");
    assert_eq!(explored.schedules, 1);
    assert!(!explored.complete);
}

#[test]
fn replay_rejects_malformed_seeds() {
    let err = replay(&opts(), "0.x.1", || {}).expect_err("malformed seed must be rejected");
    assert!(err.contains("malformed"));
}
