//! Model twins of the `std::sync` primitives the serving path uses.
//!
//! Harness code swaps `std::sync::atomic::AtomicU64` for
//! [`AtomicU64`], `std::sync::Mutex` for [`Mutex`], plain shared data
//! for [`Cell`], and `std::thread::spawn`/`join` for [`spawn`] /
//! [`JoinHandle::join`]. Every operation becomes a schedule point of
//! the surrounding [`explore`](crate::explore::explore) run and
//! transfers vector clocks per its `Ordering`, so the explorer sees
//! exactly the synchronization the real code would get — no more
//! (values stay sequentially consistent; weak-memory *value*
//! speculation is out of scope) and no less (a `Relaxed` gate transfers
//! no happens-before, which is how the [`Cell`] checker catches
//! publication bugs).
//!
//! Shims may only be used inside a model closure; they hold indices
//! into the execution's slot tables and are shared across model
//! threads with `Arc`.

pub use std::sync::atomic::Ordering;

use crate::exec::ctx;

/// Model `AtomicU64`.
#[derive(Debug)]
pub struct AtomicU64 {
    idx: usize,
}

impl AtomicU64 {
    /// Registers a named atomic in the current execution.
    #[must_use]
    pub fn new(name: &str, value: u64) -> Self {
        let (exec, tid) = ctx();
        AtomicU64 {
            idx: exec.atomic_new(tid, name, value),
        }
    }

    /// Model `load`: an acquire (or stronger) load joins the
    /// location's release clock into this thread's clock.
    #[must_use]
    pub fn load(&self, order: Ordering) -> u64 {
        let (exec, tid) = ctx();
        exec.atomic_load(tid, self.idx, order)
    }

    /// Model `store`: a release (or stronger) store publishes this
    /// thread's clock at the location; a relaxed store publishes
    /// nothing and breaks any release sequence.
    pub fn store(&self, value: u64, order: Ordering) {
        let (exec, tid) = ctx();
        exec.atomic_store(tid, self.idx, value, order);
    }

    /// Model `fetch_add`; always atomic, clocks transferred per the
    /// ordering (a relaxed RMW continues a release sequence).
    pub fn fetch_add(&self, delta: u64, order: Ordering) -> u64 {
        let (exec, tid) = ctx();
        exec.atomic_rmw(tid, self.idx, delta, order)
    }
}

/// Model `AtomicBool`, stored as 0/1 in an [`AtomicU64`] slot.
#[derive(Debug)]
pub struct AtomicBool {
    inner: AtomicU64,
}

impl AtomicBool {
    /// Registers a named atomic flag in the current execution.
    #[must_use]
    pub fn new(name: &str, value: bool) -> Self {
        AtomicBool {
            inner: AtomicU64::new(name, u64::from(value)),
        }
    }

    /// Model `load`.
    #[must_use]
    pub fn load(&self, order: Ordering) -> bool {
        self.inner.load(order) != 0
    }

    /// Model `store`.
    pub fn store(&self, value: bool, order: Ordering) {
        self.inner.store(u64::from(value), order);
    }
}

/// Model `Mutex<T>`: lock acquisition order is explored, clocks
/// transfer through the lock, and the protected value travels with
/// the guard.
#[derive(Debug)]
pub struct Mutex<T> {
    idx: usize,
    storage: std::sync::Mutex<Option<T>>,
}

impl<T> Mutex<T> {
    /// Registers a named mutex in the current execution.
    #[must_use]
    pub fn new(name: &str, value: T) -> Self {
        let (exec, tid) = ctx();
        Mutex {
            idx: exec.mutex_new(tid, name),
            storage: std::sync::Mutex::new(Some(value)),
        }
    }

    /// Model `lock`: blocks (a free scheduler switch) while another
    /// model thread holds the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (exec, tid) = ctx();
        exec.mutex_lock(tid, self.idx);
        let value = self
            .storage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        MutexGuard { mutex: self, value }
    }
}

/// Guard returned by [`Mutex::lock`]; releasing it is the unlock
/// schedule point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    value: Option<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.value {
            Some(v) => v,
            None => unreachable!("model mutex guard always holds the value"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.value {
            Some(v) => v,
            None => unreachable!("model mutex guard always holds the value"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        *self
            .mutex
            .storage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = self.value.take();
        let (exec, tid) = ctx();
        exec.mutex_unlock(tid, self.mutex.idx);
    }
}

/// Model `Condvar`, paired with a model [`Mutex`] exactly like
/// `std::sync::Condvar`.
///
/// [`wait`](Condvar::wait) is the real atomic release-and-wait: the
/// mutex release and the park are **one** schedule point, so a notify
/// can never slip between them. [`wait_detached`](Condvar::wait_detached)
/// is the deliberately broken variant — unlock first, park as a
/// separate step — kept only so the seeded `serve-queue-lost-wakeup`
/// fixture can demonstrate the lost-notify window the atomic contract
/// closes.
#[derive(Debug)]
pub struct Condvar {
    idx: usize,
}

impl Condvar {
    /// Registers a named condvar in the current execution.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let (exec, tid) = ctx();
        Condvar {
            idx: exec.condvar_new(tid, name),
        }
    }

    /// Model `wait`: atomically releases the guard's mutex and parks
    /// until a notify, then re-acquires the mutex (blocking if
    /// contended) and returns a fresh guard. Spurious wakeups are not
    /// modeled — correct code must tolerate them anyway (wait in a
    /// loop), and they only add schedules that notify-driven wakes
    /// already cover.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        // Hand the value back to storage, then defuse the guard: its
        // `Drop` would emit a *separate* unlock op, and the whole point
        // is that the release happens inside the wait op itself.
        *mutex
            .storage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = guard.value.take();
        std::mem::forget(guard);
        let (exec, tid) = ctx();
        exec.condvar_wait(tid, self.idx, mutex.idx);
        let value = mutex
            .storage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        MutexGuard { mutex, value }
    }

    /// The seeded-bug wait: drops the guard (an ordinary unlock
    /// schedule point), *then* parks on the condvar as a second step.
    /// A notify scheduled into the gap wakes nobody and is lost — the
    /// classic lost-wakeup deadlock the explorer exists to catch.
    pub fn wait_detached<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        drop(guard);
        let (exec, tid) = ctx();
        exec.condvar_block(tid, self.idx);
        mutex.lock()
    }

    /// Model `notify_one`: wakes one parked waiter (the model
    /// deterministically picks the lowest tid), or nobody.
    pub fn notify_one(&self) {
        let (exec, tid) = ctx();
        exec.condvar_notify_one(tid, self.idx);
    }

    /// Model `notify_all`: wakes every parked waiter.
    pub fn notify_all(&self) {
        let (exec, tid) = ctx();
        exec.condvar_notify_all(tid, self.idx);
    }
}

/// Plain (non-atomic) shared data under vector-clock race detection:
/// a `get`/`set` pair by two threads without a happens-before edge
/// between them fails the execution as a data race.
#[derive(Debug)]
pub struct Cell {
    idx: usize,
}

impl Cell {
    /// Registers a named plain-memory location; creation counts as the
    /// initial write.
    #[must_use]
    pub fn new(name: &str, value: u64) -> Self {
        let (exec, tid) = ctx();
        Cell {
            idx: exec.cell_new(tid, name, value),
        }
    }

    /// Race-checked read.
    #[must_use]
    pub fn get(&self) -> u64 {
        let (exec, tid) = ctx();
        exec.cell_get(tid, self.idx)
    }

    /// Race-checked write.
    pub fn set(&self, value: u64) {
        let (exec, tid) = ctx();
        exec.cell_set(tid, self.idx, value);
    }
}

/// Handle for a model thread, to be [`join`](JoinHandle::join)ed.
#[derive(Debug)]
pub struct JoinHandle {
    tid: usize,
}

impl JoinHandle {
    /// Model `join`: blocks (free switch) until the thread exits and
    /// joins its final clock into the caller — reads of data the child
    /// wrote are race-free afterwards, exactly like real `join`.
    pub fn join(self) {
        let (exec, tid) = ctx();
        exec.join(tid, self.tid);
    }
}

/// Spawns a model thread running `f`.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let (exec, tid) = ctx();
    JoinHandle {
        tid: exec.spawn(tid, Box::new(f)),
    }
}
