//! Model-check harnesses for the concurrent cores of the serving path
//! — obs merge, flight ring, registry put/get, sweep pool, gate
//! publication, and the serve daemon's bounded admission queue — plus
//! seeded-bug fixtures that prove the explorer catches the bug classes
//! it exists for.
//!
//! Each harness is a plain `fn()` model closure run under
//! [`explore`](crate::explore::explore); every `assert!` inside holds
//! under **every** schedule within the preemption budget, or the
//! harness fails with a replayable interleaving.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::explore::{explore, ExploreOpts, Explored, ModelFailure};
use crate::shim::{self, AtomicBool, AtomicU64, Cell, Condvar, Mutex, Ordering};

/// One registered model-check harness.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// CLI-addressable name.
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// `true` for deliberately broken fixtures: a failure is the
    /// expected outcome and proves the explorer's teeth.
    pub seeded_bug: bool,
    /// The model closure.
    pub body: fn(),
}

impl Harness {
    /// Explores this harness's schedules under `opts`.
    pub fn run(&self, opts: &ExploreOpts) -> Result<Explored, ModelFailure> {
        explore(opts, self.body)
    }
}

/// Every harness, passing ones first.
#[must_use]
pub fn harnesses() -> &'static [Harness] {
    &[
        Harness {
            name: "obs-merge",
            about: "obs thread-local merge commutativity: counters sum, gauges max, histograms bucket-wise",
            seeded_bug: false,
            body: obs_merge,
        },
        Harness {
            name: "flight-ring",
            about: "flight-recorder bounded ring: dense unique sequence, suffix-window eviction, relaxed gate",
            seeded_bug: false,
            body: flight_ring,
        },
        Harness {
            name: "registry-put-same-key",
            about: "registry concurrent same-key puts + get: write-then-rename never exposes a torn artifact",
            seeded_bug: false,
            body: registry_put_same_key,
        },
        Harness {
            name: "registry-put-sibling-keys",
            about: "registry concurrent sibling-key puts + get: independent keys never interfere",
            seeded_bug: false,
            body: registry_put_sibling_keys,
        },
        Harness {
            name: "sweep-pool",
            about: "sweep worker pool: relaxed fetch_add claims each index once, reduction byte-identical",
            seeded_bug: false,
            body: sweep_pool,
        },
        Harness {
            name: "publish-acquire",
            about: "gate-publication pin: Release store + Acquire load orders the published payload",
            seeded_bug: false,
            body: publish_acquire,
        },
        Harness {
            name: "serve-queue",
            about: "serve admission queue: bounded MPMC wait/notify with drain flag read under the sleeper's lock",
            seeded_bug: false,
            body: serve_queue,
        },
        Harness {
            name: "obs-merge-broken",
            about: "seeded bug: gauge merge as last-write-wins instead of max (order-dependent result)",
            seeded_bug: true,
            body: obs_merge_broken,
        },
        Harness {
            name: "registry-put-shared-tmp",
            about: "seeded bug: same-key writers sharing one tmp path (the pre-fix registry protocol)",
            seeded_bug: true,
            body: registry_put_shared_tmp,
        },
        Harness {
            name: "publish-relaxed",
            about: "seeded bug: Relaxed gate load guarding plain published data (caught as a data race)",
            seeded_bug: true,
            body: publish_relaxed,
        },
        Harness {
            name: "serve-queue-lost-wakeup",
            about: "seeded bug: consumer unlocks then parks as two steps — a drain notify in the gap is lost (deadlock)",
            seeded_bug: true,
            body: serve_queue_lost_wakeup,
        },
    ]
}

/// Looks a harness up by CLI name.
#[must_use]
pub fn find_harness(name: &str) -> Option<&'static Harness> {
    harnesses().iter().find(|h| h.name == name)
}

// ---------------------------------------------------------------------
// 1. obs thread-local merge commutativity
// ---------------------------------------------------------------------

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Agg {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hist: BTreeMap<&'static str, [u64; 2]>,
}

#[derive(Debug, Clone, Copy)]
enum Entry {
    Counter(&'static str, u64),
    Gauge(&'static str, u64),
    Hist(&'static str, usize),
}

fn merge(agg: &mut Agg, e: Entry, gauge_max: bool) {
    match e {
        Entry::Counter(k, v) => *agg.counters.entry(k).or_insert(0) += v,
        Entry::Gauge(k, v) => {
            let slot = agg.gauges.entry(k).or_insert(0);
            if gauge_max {
                *slot = (*slot).max(v);
            } else {
                // The seeded bug: last write wins, so the final value
                // depends on flush order.
                *slot = v;
            }
        }
        Entry::Hist(k, bucket) => agg.hist.entry(k).or_insert([0, 0])[bucket] += 1,
    }
}

/// The model mirrors `paraconv-obs`: each worker owns a thread-local
/// buffer and flushes entry-by-entry under the global mutex; the
/// merged aggregate must equal the sequential expectation no matter
/// how flushes interleave.
fn obs_merge_model(gauge_max: bool) {
    const THREAD_ENTRIES: [&[Entry]; 2] = [
        &[
            Entry::Counter("tasks", 2),
            Entry::Gauge("peak", 5),
            Entry::Hist("lat", 0),
        ],
        &[
            Entry::Counter("tasks", 3),
            Entry::Gauge("peak", 3),
            Entry::Hist("lat", 1),
        ],
    ];
    let global = Arc::new(Mutex::new("obs.global", Agg::default()));
    let workers: Vec<shim::JoinHandle> = THREAD_ENTRIES
        .iter()
        .map(|entries| {
            let global = Arc::clone(&global);
            let entries = *entries;
            shim::spawn(move || {
                for &e in entries {
                    let mut g = global.lock();
                    merge(&mut g, e, gauge_max);
                }
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
    let mut expected = Agg::default();
    for entries in THREAD_ENTRIES {
        for &e in entries {
            merge(&mut expected, e, true);
        }
    }
    let got = global.lock();
    assert_eq!(
        *got, expected,
        "merged aggregate differs from the sequential expectation"
    );
}

fn obs_merge() {
    obs_merge_model(true);
}

fn obs_merge_broken() {
    obs_merge_model(false);
}

// ---------------------------------------------------------------------
// 2. flight-recorder bounded ring
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Ring {
    next_seq: u64,
    cap: usize,
    events: Vec<u64>,
}

/// Mirrors `paraconv_obs::flight`: a Relaxed `AtomicBool` gate, the
/// ring mutated only under its mutex, `enable` clearing and storing
/// the gate while still holding the lock. Recorded events must carry
/// a dense unique sequence and the ring must hold exactly the
/// latest-`cap` suffix — no lost or duplicated events.
fn flight_ring() {
    let gate = Arc::new(AtomicBool::new("flight.active", false));
    let ring = Arc::new(Mutex::new(
        "flight.ring",
        Ring {
            next_seq: 0,
            cap: 2,
            events: Vec::new(),
        },
    ));
    let recorders: Vec<shim::JoinHandle> = (0..2)
        .map(|_| {
            let gate = Arc::clone(&gate);
            let ring = Arc::clone(&ring);
            shim::spawn(move || {
                for _ in 0..2 {
                    if gate.load(Ordering::Relaxed) {
                        let mut r = ring.lock();
                        let seq = r.next_seq;
                        r.next_seq += 1;
                        r.events.push(seq);
                        while r.events.len() > r.cap {
                            r.events.remove(0);
                        }
                    }
                }
            })
        })
        .collect();
    {
        // flight_enable: reset under the lock, then open the gate while
        // still holding it.
        let mut r = ring.lock();
        r.events.clear();
        r.next_seq = 0;
        gate.store(true, Ordering::Relaxed);
    }
    for rec in recorders {
        rec.join();
    }
    let r = ring.lock();
    let n = r.next_seq;
    assert!(r.events.len() <= r.cap, "ring exceeded its capacity");
    let expected: Vec<u64> = (n.saturating_sub(r.events.len() as u64)..n).collect();
    assert_eq!(
        r.events, expected,
        "ring is not the dense suffix of the assigned sequence numbers"
    );
}

// ---------------------------------------------------------------------
// 3. registry concurrent put/get over a model filesystem
// ---------------------------------------------------------------------

/// POSIX-flavoured model filesystem: truncating create, positional
/// writes through per-handle offsets (zero-filling over truncation,
/// like a real sparse write), atomic rename, whole-file read. Every
/// call is one critical section under the model mutex — the atomicity
/// real syscalls give — with schedule points between calls.
#[derive(Debug, Default)]
struct ModelFs {
    names: BTreeMap<String, usize>,
    inodes: Vec<Vec<u8>>,
}

#[derive(Debug, Clone, Copy)]
struct FileHandle {
    ino: usize,
    off: usize,
}

impl ModelFs {
    fn create(&mut self, path: &str) -> FileHandle {
        if let Some(&ino) = self.names.get(path) {
            self.inodes[ino].clear();
            return FileHandle { ino, off: 0 };
        }
        let ino = self.inodes.len();
        self.inodes.push(Vec::new());
        self.names.insert(path.to_string(), ino);
        FileHandle { ino, off: 0 }
    }

    fn write(&mut self, h: &mut FileHandle, bytes: &[u8]) {
        let file = &mut self.inodes[h.ino];
        if file.len() < h.off {
            // Another handle truncated the inode under us: writing at
            // our stale offset zero-fills the gap, exactly like POSIX.
            file.resize(h.off, 0);
        }
        for (i, &b) in bytes.iter().enumerate() {
            if h.off + i < file.len() {
                file[h.off + i] = b;
            } else {
                file.push(b);
            }
        }
        h.off += bytes.len();
    }

    fn rename(&mut self, from: &str, to: &str) -> bool {
        match self.names.remove(from) {
            Some(ino) => {
                self.names.insert(to.to_string(), ino);
                true
            }
            None => false,
        }
    }

    fn read(&self, path: &str) -> Option<Vec<u8>> {
        self.names.get(path).map(|&ino| self.inodes[ino].clone())
    }
}

const PAYLOAD_A: &[u8] = b"artifact-alpha";
const PAYLOAD_B: &[u8] = b"artifact-bravo";

fn put(fs: &Mutex<ModelFs>, tmp: &str, dst: &str, payload: &[u8]) {
    let mid = payload.len() / 2;
    let mut h = fs.lock().create(tmp);
    fs.lock().write(&mut h, &payload[..mid]);
    fs.lock().write(&mut h, &payload[mid..]);
    let renamed = fs.lock().rename(tmp, dst);
    assert!(renamed, "tmp file vanished before rename: {tmp}");
}

fn getter_check(fs: &Mutex<ModelFs>, path: &str, valid: &[&[u8]]) {
    let got = fs.lock().read(path);
    match got {
        None => {}
        Some(bytes) => assert!(
            valid.iter().any(|v| bytes == *v),
            "torn artifact visible at {path}: {bytes:?}"
        ),
    }
}

fn registry_model(tmp_a: &'static str, tmp_b: &'static str) {
    let fs = Arc::new(Mutex::new("registry.fs", ModelFs::default()));
    let p1 = {
        let fs = Arc::clone(&fs);
        shim::spawn(move || put(&fs, tmp_a, "objects/aa/obj", PAYLOAD_A))
    };
    let p2 = {
        let fs = Arc::clone(&fs);
        shim::spawn(move || put(&fs, tmp_b, "objects/aa/obj", PAYLOAD_B))
    };
    let g = {
        let fs = Arc::clone(&fs);
        shim::spawn(move || getter_check(&fs, "objects/aa/obj", &[PAYLOAD_A, PAYLOAD_B]))
    };
    p1.join();
    p2.join();
    g.join();
    let final_bytes = fs.lock().read("objects/aa/obj");
    assert!(
        final_bytes.as_deref() == Some(PAYLOAD_A) || final_bytes.as_deref() == Some(PAYLOAD_B),
        "final artifact is not one writer's bytes: {final_bytes:?}"
    );
}

/// The fixed protocol: every put owns a unique tmp path, so a
/// concurrent reader sees nothing or one writer's complete bytes.
fn registry_put_same_key() {
    registry_model("objects/aa/.tmp-1", "objects/aa/.tmp-2");
}

/// The pre-fix protocol: both writers share one tmp path. The explorer
/// finds the truncation interleaving that renames a torn artifact into
/// place (or loses the tmp file for the slower writer).
fn registry_put_shared_tmp() {
    registry_model("objects/aa/.tmp-shared", "objects/aa/.tmp-shared");
}

/// Sibling keys under concurrent writers must never interact at all.
fn registry_put_sibling_keys() {
    let fs = Arc::new(Mutex::new("registry.fs", ModelFs::default()));
    let p1 = {
        let fs = Arc::clone(&fs);
        shim::spawn(move || put(&fs, "objects/aa/.tmp-1", "objects/aa/obj1", PAYLOAD_A))
    };
    let p2 = {
        let fs = Arc::clone(&fs);
        shim::spawn(move || put(&fs, "objects/ab/.tmp-2", "objects/ab/obj2", PAYLOAD_B))
    };
    let g = {
        let fs = Arc::clone(&fs);
        shim::spawn(move || getter_check(&fs, "objects/aa/obj1", &[PAYLOAD_A]))
    };
    p1.join();
    p2.join();
    g.join();
    let fs_guard = fs.lock();
    assert_eq!(fs_guard.read("objects/aa/obj1").as_deref(), Some(PAYLOAD_A));
    assert_eq!(fs_guard.read("objects/ab/obj2").as_deref(), Some(PAYLOAD_B));
}

// ---------------------------------------------------------------------
// 4. sweep worker pool work distribution
// ---------------------------------------------------------------------

/// Mirrors `paraconv::sweep::parallel_map`: workers claim indices with
/// a Relaxed `fetch_add` and write disjoint result slots; the parent
/// reduces in index order after joining. The claim must hand out each
/// index exactly once and the reduction must be byte-identical at any
/// schedule — and the vector-clock checker proves the join edge is
/// what makes the parent's reads race-free.
fn sweep_pool() {
    const ITEMS: u64 = 4;
    let cursor = Arc::new(AtomicU64::new("sweep.cursor", 0));
    let slots: Arc<Vec<Cell>> = Arc::new(
        (0..ITEMS)
            .map(|i| Cell::new(&format!("sweep.slot{i}"), 0))
            .collect(),
    );
    let workers: Vec<shim::JoinHandle> = (0..2)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            let slots = Arc::clone(&slots);
            shim::spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= ITEMS {
                    break;
                }
                slots[i as usize].set((i + 1) * 10);
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
    let reduced: Vec<u64> = slots.iter().map(Cell::get).collect();
    assert_eq!(
        reduced,
        vec![10, 20, 30, 40],
        "reduction is schedule-dependent"
    );
}

// ---------------------------------------------------------------------
// 5. gate-publication ordering pin
// ---------------------------------------------------------------------

/// The ordering rule the `atomic-ordering` lint enforces, as a model:
/// plain data published through an atomic gate needs Release on the
/// store *and* Acquire on the load. The obs/fault/flight gates get to
/// stay fully Relaxed only because their data lives behind a mutex —
/// which harnesses 1 and 2 model directly.
fn publish_model(load_order: Ordering) {
    let flag = Arc::new(AtomicBool::new("ready", false));
    let data = Arc::new(Cell::new("payload", 0));
    let writer = {
        let flag = Arc::clone(&flag);
        let data = Arc::clone(&data);
        shim::spawn(move || {
            data.set(42);
            flag.store(true, Ordering::Release);
        })
    };
    if flag.load(load_order) {
        assert_eq!(data.get(), 42, "gate observed before the payload");
    }
    writer.join();
}

fn publish_acquire() {
    publish_model(Ordering::Acquire);
}

fn publish_relaxed() {
    publish_model(Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// 6. serve admission queue wait/notify protocol
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ModelQueue {
    items: Vec<u64>,
    draining: bool,
}

/// One consumer's blocking pop, mirroring `BoundedQueue::pop`: check
/// for an item, then the drain flag, **under the same lock the wait
/// releases**; sleep otherwise. `detached` swaps the atomic
/// release-and-wait for the seeded two-step unlock-then-park.
fn model_pop(queue: &Mutex<ModelQueue>, available: &Condvar, detached: bool) -> Option<u64> {
    let mut q = queue.lock();
    loop {
        if !q.items.is_empty() {
            return Some(q.items.remove(0));
        }
        if q.draining {
            return None;
        }
        q = if detached {
            available.wait_detached(q)
        } else {
            available.wait(q)
        };
    }
}

/// Mirrors the serve daemon's `BoundedQueue` protocol: producers push
/// under the lock and `notify_one` after releasing it, `drain` sets
/// the flag and `notify_all`s, consumers loop in [`model_pop`]. Under
/// every schedule, each admitted item is consumed exactly once and
/// every consumer exits after drain — no lost wakeups, no lost items,
/// no consumer left parked.
fn serve_queue_model(detached: bool) {
    let queue = Arc::new(Mutex::new(
        "serve.queue",
        ModelQueue {
            items: Vec::new(),
            draining: false,
        },
    ));
    let available = Arc::new(Condvar::new("serve.available"));
    let popped = Arc::new(Mutex::new("serve.popped", Vec::<u64>::new()));
    let consumers: Vec<shim::JoinHandle> = (0..2)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let available = Arc::clone(&available);
            let popped = Arc::clone(&popped);
            shim::spawn(move || {
                while let Some(item) = model_pop(&queue, &available, detached) {
                    popped.lock().push(item);
                }
            })
        })
        .collect();
    // The root thread is the producer: admit two items, then drain.
    for item in [1u64, 2] {
        queue.lock().items.push(item);
        available.notify_one();
    }
    {
        queue.lock().draining = true;
        available.notify_all();
    }
    for c in consumers {
        c.join();
    }
    let mut got = popped.lock().clone();
    got.sort_unstable();
    assert_eq!(
        got,
        vec![1, 2],
        "admitted items must be consumed exactly once"
    );
    let q = queue.lock();
    assert!(q.items.is_empty(), "drain abandoned admitted work");
}

fn serve_queue() {
    serve_queue_model(false);
}

fn serve_queue_lost_wakeup() {
    serve_queue_model(true);
}
