//! # paraconv-analyze
//!
//! A vendored, dependency-free **model checker** for the Para-CONV
//! concurrent core — the third static-analysis head next to
//! `paraconv-verify`'s plan verifier and lint engine.
//!
//! The crate has three layers:
//!
//! * [`explore`] — a loom-style deterministic interleaving explorer:
//!   real OS threads serialized to one schedule point at a time, a
//!   DFS over scheduling decisions with a **bounded preemption
//!   budget**, vector-clock happens-before race detection, and
//!   replayable schedule seeds (`explore::replay`).
//! * [`shim`] — instrumented `AtomicU64`/`AtomicBool`/`Mutex`/plain
//!   [`shim::Cell`] data and `spawn`/`join`, which model code uses in
//!   place of the `std::sync` originals. Clock transfer follows the
//!   `Ordering` argument, so a `Relaxed` gate really publishes
//!   nothing.
//! * [`harness`] — model-checked harnesses for the concurrent cores
//!   the `paraconv serve` daemon stands on (obs merge commutativity,
//!   flight-recorder ring, registry put/get, sweep worker pool, and
//!   the daemon's bounded admission queue wait/notify protocol), plus
//!   deliberately seeded-bug fixtures proving the explorer catches
//!   what it claims to catch.
//!
//! Scope, stated honestly: modeled **values** are sequentially
//! consistent — the explorer does not speculate weak-memory load
//! results. Ordering bugs surface through the vector-clock checker
//! (a `Relaxed`-gated read of plain published data is reported as a
//! data race) rather than through stale values.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod clock;
mod exec;
pub mod explore;
pub mod harness;
pub mod shim;

pub use exec::FailureKind;
pub use explore::{explore, replay, ExploreOpts, Explored, ModelFailure};
pub use harness::{find_harness, harnesses, Harness};
