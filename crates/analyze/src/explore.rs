//! The DFS schedule explorer: runs a model closure under every
//! interleaving reachable within a bounded preemption budget, and
//! reports the first failing schedule as a replayable seed.

use std::sync::Arc;

use crate::exec::{Decision, Exec, FailureKind};

/// Exploration limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOpts {
    /// Stop (incomplete) after this many executed schedules.
    pub max_schedules: usize,
    /// How many times one execution may switch away from a
    /// still-runnable thread. Forced switches (blocking on a mutex or
    /// join) are free. 2 catches the overwhelming majority of real
    /// ordering bugs (classic context-bounding result) while keeping
    /// the state space exhaustively checkable.
    pub preemption_budget: usize,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            max_schedules: 100_000,
            preemption_budget: 2,
        }
    }
}

/// Summary of a completed (failure-free) exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Executed schedules.
    pub schedules: usize,
    /// Whether the bounded state space was exhausted (`false` when the
    /// `max_schedules` budget ran out first).
    pub complete: bool,
    /// Schedule points in the longest execution.
    pub max_steps: usize,
    /// The preemption budget the exploration ran under.
    pub preemption_budget: usize,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ModelFailure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The harness assertion / race / deadlock message.
    pub message: String,
    /// Replayable schedule seed: the chosen thread at every decision
    /// point, dot-separated. Feed it back through [`replay`].
    pub schedule: String,
    /// Schedules executed before (and including) the failing one.
    pub schedules: usize,
    /// The failing interleaving, one `T<tid> <op>` line per step.
    pub trace: Vec<String>,
}

impl std::fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model failure ({}) on schedule {} of the exploration",
            self.kind, self.schedules
        )?;
        writeln!(f, "  message:  {}", self.message)?;
        writeln!(f, "  schedule: {}", self.schedule)?;
        writeln!(f, "  interleaving:")?;
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ModelFailure {}

fn fmt_schedule(decisions: &[Decision]) -> String {
    let parts: Vec<String> = decisions.iter().map(|d| d.chosen.to_string()).collect();
    parts.join(".")
}

fn fmt_trace(trace: Vec<(usize, String)>) -> Vec<String> {
    trace
        .into_iter()
        .map(|(tid, msg)| format!("T{tid} {msg}"))
        .collect()
}

/// Explores every schedule of `f` reachable within the preemption
/// budget, depth-first. Returns the first failure (assertion, data
/// race, deadlock) with its replayable schedule seed, or exploration
/// statistics when every schedule passes.
pub fn explore<F>(opts: &ExploreOpts, f: F) -> Result<Explored, ModelFailure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<Decision> = Vec::new();
    let mut schedules = 0usize;
    let mut max_steps = 0usize;
    loop {
        let exec = Arc::new(Exec::new(prefix, opts.preemption_budget));
        let run = exec.run(Arc::clone(&f));
        schedules += 1;
        max_steps = max_steps.max(run.steps);
        if let Some(fail) = run.failure {
            return Err(ModelFailure {
                kind: fail.kind,
                message: fail.message,
                schedule: fmt_schedule(&run.decisions),
                schedules,
                trace: fmt_trace(run.trace),
            });
        }
        // Backtrack: deepest decision with an untried alternative.
        let mut d = run.decisions;
        loop {
            match d.last_mut() {
                None => {
                    return Ok(Explored {
                        schedules,
                        complete: true,
                        max_steps,
                        preemption_budget: opts.preemption_budget,
                    });
                }
                Some(last) => {
                    if let Some(next) = last.pending.pop() {
                        last.chosen = next;
                        break;
                    }
                    d.pop();
                }
            }
        }
        if schedules >= opts.max_schedules {
            return Ok(Explored {
                schedules,
                complete: false,
                max_steps,
                preemption_budget: opts.preemption_budget,
            });
        }
        prefix = d;
    }
}

/// Replays one schedule seed (as printed in a [`ModelFailure`]) and
/// returns the failure it reproduces, `None` when the run passes, or
/// an error for a malformed seed.
pub fn replay<F>(opts: &ExploreOpts, schedule: &str, f: F) -> Result<Option<ModelFailure>, String>
where
    F: Fn() + Send + Sync + 'static,
{
    let mut forced = Vec::new();
    for part in schedule.split('.').filter(|s| !s.is_empty()) {
        let chosen: usize = part
            .parse()
            .map_err(|_| format!("malformed schedule component `{part}`"))?;
        forced.push(Decision {
            chosen,
            pending: Vec::new(),
        });
    }
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let exec = Arc::new(Exec::new(forced, opts.preemption_budget));
    let run = exec.run(f);
    Ok(run.failure.map(|fail| ModelFailure {
        kind: fail.kind,
        message: fail.message,
        schedule: fmt_schedule(&run.decisions),
        schedules: 1,
        trace: fmt_trace(run.trace),
    }))
}
