//! Vector clocks for happens-before tracking inside the model.
//!
//! Every model thread carries a [`VClock`]; synchronization edges
//! (spawn, join, mutex hand-off, release/acquire atomic pairs) join
//! clocks together. A plain-memory access by thread `t` is racy when
//! the previous conflicting access — recorded as `(thread, stamp)` —
//! is **not** ordered before `t`'s current clock.

/// A grow-on-demand vector clock: component `i` counts the events of
/// model thread `i` that are known to have happened before.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock (nothing happened before).
    #[must_use]
    pub const fn new() -> Self {
        VClock(Vec::new())
    }

    /// The component for thread `tid` (0 when never touched).
    #[must_use]
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances this thread's own component and returns the new stamp.
    pub fn tick(&mut self, tid: usize) -> u64 {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Componentwise maximum: afterwards everything ordered before
    /// either input is ordered before `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Forgets all ordering (used when a `Relaxed` store breaks a
    /// release chain: later acquire loads must not inherit stale
    /// happens-before edges the hardware would not provide).
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Is the event `(tid, stamp)` ordered before this clock?
    #[must_use]
    pub fn covers(&self, tid: usize, stamp: u64) -> bool {
        self.get(tid) >= stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_cover() {
        let mut a = VClock::new();
        let s = a.tick(2);
        assert_eq!(s, 1);
        assert!(a.covers(2, 1));
        assert!(!a.covers(2, 2));
        assert!(a.covers(5, 0));
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        a.join(&b);
        assert!(a.covers(0, 2));
        assert!(a.covers(1, 1));
        b.join(&a);
        assert!(b.covers(0, 2));
    }

    #[test]
    fn clear_forgets_everything() {
        let mut a = VClock::new();
        a.tick(3);
        a.clear();
        assert!(!a.covers(3, 1));
    }
}
