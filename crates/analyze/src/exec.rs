//! The controlled execution runtime: real OS threads serialized down
//! to one runnable thread at a time, with every instrumented operation
//! a schedule point the DFS explorer can branch on.
//!
//! A model execution spawns one OS thread per model thread, but a
//! "baton" (`active` under the `Exec` mutex) guarantees only the
//! scheduled thread performs its next operation; everyone else waits
//! on the condvar. Each operation records a trace line, transfers
//! vector clocks according to its synchronization semantics, and then
//! picks the next thread to run — following the forced decision prefix
//! during replay, defaulting to "keep running the current thread"
//! otherwise, and recording which alternatives remain for the DFS.
//!
//! Switching away from a still-runnable thread is a **preemption**;
//! alternatives are only recorded while the execution's preemption
//! count is below the budget, which is what keeps the state space
//! finite and small (classic iterative context bounding).

use std::panic::panic_any;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

use crate::clock::VClock;

/// Schedule points one execution may take before the explorer calls it
/// a runaway (a model loop that never converges).
pub const MAX_STEPS: usize = 100_000;

/// Panic payload used to unwind model threads once an execution is
/// aborting; never reported as a harness failure.
pub(crate) struct AbortToken;

/// Why a model execution failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A harness assertion (or any other panic) fired.
    Panic,
    /// Two unordered conflicting plain-memory accesses (vector-clock
    /// happens-before violation).
    DataRace,
    /// Every live thread was blocked.
    Deadlock,
    /// The execution exceeded [`MAX_STEPS`] schedule points.
    Runaway,
    /// A forced replay decision named a thread that was not runnable —
    /// the replayed schedule does not match the model.
    Divergence,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::Panic => "assertion",
            FailureKind::DataRace => "data race",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Runaway => "runaway",
            FailureKind::Divergence => "schedule divergence",
        };
        f.write_str(s)
    }
}

/// A failure recorded inside one execution.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub kind: FailureKind,
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitKind {
    Mutex(usize),
    Join(usize),
    Condvar(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(WaitKind),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
}

/// One scheduling decision: which thread ran, and which runnable
/// alternatives the DFS has not tried yet at this point.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    pub chosen: usize,
    pub pending: Vec<usize>,
}

struct AtomicSlot {
    name: String,
    value: u64,
    clock: VClock,
}

struct MutexSlot {
    name: String,
    held_by: Option<usize>,
    clock: VClock,
}

struct CellSlot {
    name: String,
    value: u64,
    last_write: (usize, u64),
    reads: Vec<(usize, u64)>,
}

pub(crate) struct ExecInner {
    threads: Vec<ThreadState>,
    active: usize,
    decisions: Vec<Decision>,
    step: usize,
    preemptions: usize,
    budget: usize,
    trace: Vec<(usize, String)>,
    failure: Option<Failure>,
    aborting: bool,
    atomics: Vec<AtomicSlot>,
    mutexes: Vec<MutexSlot>,
    cells: Vec<CellSlot>,
    condvars: Vec<String>,
}

/// What one model execution produced, harvested by the explorer.
pub(crate) struct RunResult {
    pub decisions: Vec<Decision>,
    pub failure: Option<Failure>,
    pub steps: usize,
    pub trace: Vec<(usize, String)>,
}

enum Step<R> {
    Done(R),
    Block(WaitKind),
    Fail(FailureKind, String),
}

const fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

const fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

impl ExecInner {
    fn note(&mut self, tid: usize, msg: String) {
        self.trace.push((tid, msg));
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        !self.threads.is_empty() && self.threads.iter().all(|t| t.status == Status::Finished)
    }

    fn record_failure(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure { kind, message });
        }
        self.aborting = true;
    }

    /// The scheduling decision after thread `me` completed an
    /// operation: replay the forced prefix, otherwise default to
    /// continuing `me` and record budget-affordable alternatives.
    fn pick_next(&mut self, me: usize) {
        if self.trace.len() >= MAX_STEPS {
            self.record_failure(
                FailureKind::Runaway,
                format!("execution exceeded {MAX_STEPS} schedule points"),
            );
        }
        if self.aborting {
            self.active = usize::MAX;
            return;
        }
        let runnable = self.runnable();
        if runnable.is_empty() {
            if !self.all_finished() {
                let blocked: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.status, Status::Blocked(_)))
                    .map(|(i, _)| format!("T{i}"))
                    .collect();
                self.record_failure(
                    FailureKind::Deadlock,
                    format!("all live threads blocked: {}", blocked.join(", ")),
                );
            }
            self.active = usize::MAX;
            return;
        }
        let me_runnable = self
            .threads
            .get(me)
            .is_some_and(|t| t.status == Status::Runnable);
        let chosen = if self.step < self.decisions.len() {
            let c = self.decisions[self.step].chosen;
            if !runnable.contains(&c) {
                self.record_failure(
                    FailureKind::Divergence,
                    format!(
                        "replayed schedule chose T{c} at step {} but it is not runnable",
                        self.step
                    ),
                );
                self.active = usize::MAX;
                return;
            }
            c
        } else {
            let default = if me_runnable { me } else { runnable[0] };
            let mut pending: Vec<usize> =
                runnable.iter().copied().filter(|&t| t != default).collect();
            if me_runnable && self.preemptions >= self.budget {
                // Out of preemption budget: switching away from a
                // runnable thread is no longer on the table.
                pending.clear();
            }
            self.decisions.push(Decision {
                chosen: default,
                pending,
            });
            default
        };
        self.step += 1;
        if me_runnable && chosen != me {
            self.preemptions += 1;
        }
        self.active = chosen;
    }
}

pub(crate) struct Exec {
    inner: StdMutex<ExecInner>,
    cv: Condvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The executing model thread's runtime context; model shims resolve
/// their `Exec` through this.
pub(crate) fn ctx() -> (Arc<Exec>, usize) {
    let cur = CURRENT.with(|c| c.borrow().clone());
    match cur {
        Some(pair) => pair,
        None => panic_any("model shim used outside a model thread".to_string()),
    }
}

fn payload_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Installs (once per process) a panic hook that keeps model-thread
/// panics quiet: the explorer captures every payload and prints a
/// tidy interleaving report itself, so the default hook's backtraces
/// — including one per `AbortToken` unwind — are pure noise. Panics
/// outside model threads still reach the previous hook untouched.
fn silence_model_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = CURRENT.try_with(|c| c.borrow().is_some()).unwrap_or(false);
            if !in_model {
                prev(info);
            }
        }));
    });
}

fn run_thread(exec: Arc<Exec>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    if let Err(payload) = result {
        if !payload.is::<AbortToken>() {
            exec.fail_from(tid, FailureKind::Panic, payload_message(&payload));
        }
    }
    exec.thread_exit(tid);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Exec {
    pub(crate) fn new(prefix: Vec<Decision>, budget: usize) -> Self {
        Exec {
            inner: StdMutex::new(ExecInner {
                threads: Vec::new(),
                active: 0,
                decisions: prefix,
                step: 0,
                preemptions: 0,
                budget,
                trace: Vec::new(),
                failure: None,
                aborting: false,
                atomics: Vec::new(),
                mutexes: Vec::new(),
                cells: Vec::new(),
                condvars: Vec::new(),
            }),
            cv: Condvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_inner(&self) -> StdMutexGuard<'_, ExecInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs one execution of `f` as model thread 0 and harvests the
    /// result once every model thread has finished.
    pub(crate) fn run(self: &Arc<Self>, f: Arc<dyn Fn() + Send + Sync>) -> RunResult {
        silence_model_panics();
        {
            let mut inner = self.lock_inner();
            let mut clock = VClock::new();
            clock.tick(0);
            inner.threads.push(ThreadState {
                status: Status::Runnable,
                clock,
            });
            inner.active = 0;
        }
        let exec = Arc::clone(self);
        let root = std::thread::spawn(move || run_thread(exec, 0, Box::new(move || f())));
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(root);
        let mut inner = self.lock_inner();
        while !inner.all_finished() {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        let result = RunResult {
            decisions: std::mem::take(&mut inner.decisions),
            failure: inner.failure.take(),
            steps: inner.trace.len(),
            trace: std::mem::take(&mut inner.trace),
        };
        drop(inner);
        let handles: Vec<_> =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            // A model thread that panicked already recorded its failure;
            // the join result carries nothing further.
            let _ = h.join();
        }
        result
    }

    /// Core op protocol: wait for the baton, run `f` under the runtime
    /// lock, then schedule the next thread. `Block` parks the thread
    /// (a forced, budget-free switch) and retries when rescheduled;
    /// `Fail` aborts the whole execution.
    fn with_turn<R>(&self, tid: usize, mut f: impl FnMut(&mut ExecInner) -> Step<R>) -> R {
        let mut inner = self.lock_inner();
        loop {
            while !inner.aborting && inner.active != tid {
                inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
            }
            if inner.aborting {
                drop(inner);
                panic_any(AbortToken);
            }
            match f(&mut inner) {
                Step::Done(r) => {
                    inner.pick_next(tid);
                    self.cv.notify_all();
                    return r;
                }
                Step::Block(kind) => {
                    inner.threads[tid].status = Status::Blocked(kind);
                    inner.pick_next(tid);
                    self.cv.notify_all();
                }
                Step::Fail(kind, message) => {
                    inner.note(tid, format!("FAIL ({kind}): {message}"));
                    inner.record_failure(kind, message);
                    inner.active = usize::MAX;
                    self.cv.notify_all();
                    drop(inner);
                    panic_any(AbortToken);
                }
            }
        }
    }

    pub(crate) fn fail_from(&self, tid: usize, kind: FailureKind, message: String) {
        let mut inner = self.lock_inner();
        inner.note(tid, format!("FAIL ({kind}): {message}"));
        inner.record_failure(kind, message);
        self.cv.notify_all();
    }

    /// Marks `tid` finished. Unlike ordinary ops this never panics —
    /// it runs outside `catch_unwind` — and short-circuits when the
    /// execution is aborting.
    pub(crate) fn thread_exit(&self, tid: usize) {
        let mut inner = self.lock_inner();
        while !inner.aborting && inner.active != tid {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        inner.threads[tid].clock.tick(tid);
        inner.threads[tid].status = Status::Finished;
        for t in &mut inner.threads {
            if t.status == Status::Blocked(WaitKind::Join(tid)) {
                t.status = Status::Runnable;
            }
        }
        if inner.aborting {
            inner.active = usize::MAX;
        } else {
            inner.note(tid, "exit".to_string());
            inner.pick_next(tid);
        }
        self.cv.notify_all();
    }

    pub(crate) fn spawn(
        self: &Arc<Self>,
        parent: usize,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> usize {
        let child = self.with_turn(parent, |inner| {
            let child = inner.threads.len();
            let mut clock = inner.threads[parent].clock.clone();
            clock.tick(child);
            inner.threads.push(ThreadState {
                status: Status::Runnable,
                clock,
            });
            inner.threads[parent].clock.tick(parent);
            inner.note(parent, format!("spawn T{child}"));
            Step::Done(child)
        });
        let exec = Arc::clone(self);
        let cell = StdMutex::new(Some(f));
        let handle = std::thread::spawn(move || {
            let f = cell
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .unwrap_or_else(|| Box::new(|| {}));
            run_thread(exec, child, f);
        });
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
        child
    }

    pub(crate) fn join(&self, tid: usize, target: usize) {
        self.with_turn(tid, |inner| {
            if inner.threads[target].status == Status::Finished {
                let c = inner.threads[target].clock.clone();
                inner.threads[tid].clock.join(&c);
                inner.note(tid, format!("join T{target}"));
                Step::Done(())
            } else {
                inner.note(tid, format!("join T{target} (blocked)"));
                Step::Block(WaitKind::Join(target))
            }
        })
    }

    pub(crate) fn atomic_new(&self, tid: usize, name: &str, init: u64) -> usize {
        self.with_turn(tid, |inner| {
            let idx = inner.atomics.len();
            inner.note(tid, format!("atomic.new {name}={init}"));
            inner.atomics.push(AtomicSlot {
                name: name.to_string(),
                value: init,
                clock: VClock::new(),
            });
            Step::Done(idx)
        })
    }

    pub(crate) fn atomic_load(&self, tid: usize, idx: usize, order: Ordering) -> u64 {
        self.with_turn(tid, |inner| {
            let v = inner.atomics[idx].value;
            let label = format!("{}.load({order:?}) -> {v}", inner.atomics[idx].name);
            if acquires(order) {
                let c = inner.atomics[idx].clock.clone();
                inner.threads[tid].clock.join(&c);
            }
            inner.note(tid, label);
            Step::Done(v)
        })
    }

    pub(crate) fn atomic_store(&self, tid: usize, idx: usize, v: u64, order: Ordering) {
        self.with_turn(tid, |inner| {
            let label = format!("{}.store({v}, {order:?})", inner.atomics[idx].name);
            inner.atomics[idx].value = v;
            if releases(order) {
                let tc = inner.threads[tid].clock.clone();
                inner.atomics[idx].clock.join(&tc);
            } else {
                // A relaxed store heads no release sequence and (since
                // C++20 semantics) does not continue one: later acquire
                // loads must not inherit happens-before through it.
                inner.atomics[idx].clock.clear();
            }
            inner.note(tid, label);
            Step::Done(())
        })
    }

    /// Read-modify-write (`fetch_add`-style). A relaxed RMW continues
    /// an existing release sequence, so the location clock is kept.
    pub(crate) fn atomic_rmw(&self, tid: usize, idx: usize, delta: u64, order: Ordering) -> u64 {
        self.with_turn(tid, |inner| {
            let old = inner.atomics[idx].value;
            let label = format!(
                "{}.fetch_add({delta}, {order:?}) -> {old}",
                inner.atomics[idx].name
            );
            inner.atomics[idx].value = old.wrapping_add(delta);
            if acquires(order) {
                let c = inner.atomics[idx].clock.clone();
                inner.threads[tid].clock.join(&c);
            }
            if releases(order) {
                let tc = inner.threads[tid].clock.clone();
                inner.atomics[idx].clock.join(&tc);
            }
            inner.note(tid, label);
            Step::Done(old)
        })
    }

    pub(crate) fn mutex_new(&self, tid: usize, name: &str) -> usize {
        self.with_turn(tid, |inner| {
            let idx = inner.mutexes.len();
            inner.note(tid, format!("mutex.new {name}"));
            inner.mutexes.push(MutexSlot {
                name: name.to_string(),
                held_by: None,
                clock: VClock::new(),
            });
            Step::Done(idx)
        })
    }

    pub(crate) fn mutex_lock(&self, tid: usize, idx: usize) {
        self.with_turn(tid, |inner| match inner.mutexes[idx].held_by {
            Some(holder) => {
                let label = format!("{}.lock() blocked on T{holder}", inner.mutexes[idx].name);
                inner.note(tid, label);
                Step::Block(WaitKind::Mutex(idx))
            }
            None => {
                inner.mutexes[idx].held_by = Some(tid);
                let label = format!("{}.lock() acquired", inner.mutexes[idx].name);
                let c = inner.mutexes[idx].clock.clone();
                inner.threads[tid].clock.join(&c);
                inner.note(tid, label);
                Step::Done(())
            }
        })
    }

    /// Releases a model mutex. Callable from guard drops during an
    /// abort unwind, so instead of the panicking op protocol it bows
    /// out silently once the execution is aborting.
    pub(crate) fn mutex_unlock(&self, tid: usize, idx: usize) {
        let mut inner = self.lock_inner();
        while !inner.aborting && inner.active != tid {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        inner.mutexes[idx].held_by = None;
        let tc = inner.threads[tid].clock.clone();
        inner.mutexes[idx].clock.join(&tc);
        for t in &mut inner.threads {
            if t.status == Status::Blocked(WaitKind::Mutex(idx)) {
                t.status = Status::Runnable;
            }
        }
        if !inner.aborting {
            let label = format!("{}.unlock()", inner.mutexes[idx].name);
            inner.note(tid, label);
            inner.pick_next(tid);
        }
        self.cv.notify_all();
    }

    pub(crate) fn condvar_new(&self, tid: usize, name: &str) -> usize {
        self.with_turn(tid, |inner| {
            let idx = inner.condvars.len();
            inner.note(tid, format!("condvar.new {name}"));
            inner.condvars.push(name.to_string());
            Step::Done(idx)
        })
    }

    /// Atomic release-and-wait — the real `Condvar::wait` contract.
    /// One schedule point releases `mutex` (waking its blocked
    /// lockers) **and** parks this thread on the condvar, so no
    /// notify can land between the two. After a wake-up, the mutex is
    /// re-acquired like an ordinary (possibly blocking) lock, joining
    /// the mutex clock — which is how a notifier's writes become
    /// visible, exactly as in real code.
    ///
    /// Happens-before flows only through the mutex: the condvar itself
    /// carries no clock, matching the `std::sync::Condvar` contract
    /// that data must be guarded by the paired mutex.
    pub(crate) fn condvar_wait(&self, tid: usize, cv: usize, mutex: usize) {
        let mut released = false;
        self.with_turn(tid, |inner| {
            if !released {
                released = true;
                inner.mutexes[mutex].held_by = None;
                let tc = inner.threads[tid].clock.clone();
                inner.mutexes[mutex].clock.join(&tc);
                for t in &mut inner.threads {
                    if t.status == Status::Blocked(WaitKind::Mutex(mutex)) {
                        t.status = Status::Runnable;
                    }
                }
                let label = format!(
                    "{}.wait() releases {}",
                    inner.condvars[cv], inner.mutexes[mutex].name
                );
                inner.note(tid, label);
                return Step::Block(WaitKind::Condvar(cv));
            }
            match inner.mutexes[mutex].held_by {
                Some(holder) => {
                    let label = format!(
                        "{}.wait() woken; {}.lock() blocked on T{holder}",
                        inner.condvars[cv], inner.mutexes[mutex].name
                    );
                    inner.note(tid, label);
                    Step::Block(WaitKind::Mutex(mutex))
                }
                None => {
                    inner.mutexes[mutex].held_by = Some(tid);
                    let c = inner.mutexes[mutex].clock.clone();
                    inner.threads[tid].clock.join(&c);
                    let label = format!(
                        "{}.wait() woken; {} re-acquired",
                        inner.condvars[cv], inner.mutexes[mutex].name
                    );
                    inner.note(tid, label);
                    Step::Done(())
                }
            }
        })
    }

    /// Parks the thread on the condvar *without* touching any mutex —
    /// the detached wait behind the seeded lost-wakeup fixture. Real
    /// code gets this shape by unlocking first and waiting as a
    /// separate step, opening the window where a notify fires between
    /// the two, wakes nobody, and is lost forever.
    pub(crate) fn condvar_block(&self, tid: usize, cv: usize) {
        let mut parked = false;
        self.with_turn(tid, |inner| {
            if !parked {
                parked = true;
                let label = format!("{}.wait_detached() parks", inner.condvars[cv]);
                inner.note(tid, label);
                return Step::Block(WaitKind::Condvar(cv));
            }
            let label = format!("{}.wait_detached() woken", inner.condvars[cv]);
            inner.note(tid, label);
            Step::Done(())
        })
    }

    /// Wakes the lowest-tid parked waiter (`notify_one`). Which waiter
    /// a real OS wakes is unspecified; the model pins it for
    /// determinism, which is exact whenever the waiters are
    /// interchangeable (as the serve workers are).
    pub(crate) fn condvar_notify_one(&self, tid: usize, cv: usize) {
        self.with_turn(tid, |inner| {
            let waiter = inner
                .threads
                .iter()
                .position(|t| t.status == Status::Blocked(WaitKind::Condvar(cv)));
            let label = match waiter {
                Some(w) => {
                    inner.threads[w].status = Status::Runnable;
                    format!("{}.notify_one() wakes T{w}", inner.condvars[cv])
                }
                None => format!("{}.notify_one() wakes nobody", inner.condvars[cv]),
            };
            inner.note(tid, label);
            Step::Done(())
        })
    }

    /// Wakes every thread parked on the condvar.
    pub(crate) fn condvar_notify_all(&self, tid: usize, cv: usize) {
        self.with_turn(tid, |inner| {
            let mut woken = 0usize;
            for t in &mut inner.threads {
                if t.status == Status::Blocked(WaitKind::Condvar(cv)) {
                    t.status = Status::Runnable;
                    woken += 1;
                }
            }
            let label = format!("{}.notify_all() wakes {woken}", inner.condvars[cv]);
            inner.note(tid, label);
            Step::Done(())
        })
    }

    pub(crate) fn cell_new(&self, tid: usize, name: &str, value: u64) -> usize {
        self.with_turn(tid, |inner| {
            let idx = inner.cells.len();
            inner.note(tid, format!("cell.new {name}={value}"));
            let stamp = inner.threads[tid].clock.tick(tid);
            inner.cells.push(CellSlot {
                name: name.to_string(),
                value,
                last_write: (tid, stamp),
                reads: Vec::new(),
            });
            Step::Done(idx)
        })
    }

    pub(crate) fn cell_get(&self, tid: usize, idx: usize) -> u64 {
        self.with_turn(tid, |inner| {
            let (wt, ws) = inner.cells[idx].last_write;
            if !inner.threads[tid].clock.covers(wt, ws) {
                return Step::Fail(
                    FailureKind::DataRace,
                    format!(
                        "T{tid} reads `{}` without ordering against T{wt}'s write",
                        inner.cells[idx].name
                    ),
                );
            }
            let v = inner.cells[idx].value;
            let label = format!("{}.get() -> {v}", inner.cells[idx].name);
            let stamp = inner.threads[tid].clock.tick(tid);
            let reads = &mut inner.cells[idx].reads;
            match reads.iter_mut().find(|(t, _)| *t == tid) {
                Some(entry) => entry.1 = stamp,
                None => reads.push((tid, stamp)),
            }
            inner.note(tid, label);
            Step::Done(v)
        })
    }

    pub(crate) fn cell_set(&self, tid: usize, idx: usize, v: u64) {
        self.with_turn(tid, |inner| {
            let (wt, ws) = inner.cells[idx].last_write;
            if !inner.threads[tid].clock.covers(wt, ws) {
                return Step::Fail(
                    FailureKind::DataRace,
                    format!(
                        "T{tid} writes `{}` without ordering against T{wt}'s write",
                        inner.cells[idx].name
                    ),
                );
            }
            let tclock = inner.threads[tid].clock.clone();
            let racy_read = inner.cells[idx]
                .reads
                .iter()
                .find(|&&(rt, rs)| rt != tid && !tclock.covers(rt, rs))
                .map(|&(rt, _)| rt);
            if let Some(rt) = racy_read {
                return Step::Fail(
                    FailureKind::DataRace,
                    format!(
                        "T{tid} writes `{}` without ordering against T{rt}'s read",
                        inner.cells[idx].name
                    ),
                );
            }
            let label = format!("{}.set({v})", inner.cells[idx].name);
            let stamp = inner.threads[tid].clock.tick(tid);
            let cell = &mut inner.cells[idx];
            cell.value = v;
            cell.last_write = (tid, stamp);
            cell.reads.clear();
            inner.note(tid, label);
            Step::Done(())
        })
    }
}
