//! Canonical example graphs from the paper, used by tests, examples and
//! documentation.

use crate::{GraphError, TaskGraph, TaskGraphBuilder};

/// Builds the five-operation CNN graph of the paper's Figure 2(b) /
/// Figure 3 motivational example.
///
/// Structure: `T1 → {T2, T3}`, `T2 → {T4, T5}`, `T3 → {T4, T5}` — five
/// convolutions, six intermediate processing results (`I_{1,2}`,
/// `I_{1,3}`, `I_{2,4}`, `I_{2,5}`, `I_{3,4}`, `I_{3,5}`). All
/// execution times and IPR sizes are one unit, matching the example's
/// assumption that each PE data cache holds exactly one IPR.
///
/// Note the paper's `T1…T5` correspond to node IDs `T0…T4` here (IDs are
/// zero-based).
///
/// # Examples
///
/// ```
/// let g = paraconv_graph::examples::motivational();
/// assert_eq!(g.node_count(), 5);
/// assert_eq!(g.edge_count(), 6);
/// ```
#[must_use]
pub fn motivational() -> TaskGraph {
    // lint: allow(no-unwrap) — hard-coded example graphs are valid by inspection
    try_motivational().expect("motivational example graph is statically valid")
}

fn try_motivational() -> Result<TaskGraph, GraphError> {
    let mut b = TaskGraphBuilder::new("motivational");
    let t1 = b.add_conv(1);
    let t2 = b.add_conv(1);
    let t3 = b.add_conv(1);
    let t4 = b.add_conv(1);
    let t5 = b.add_conv(1);
    b.add_edge(t1, t2, 1)?;
    b.add_edge(t1, t3, 1)?;
    b.add_edge(t2, t4, 1)?;
    b.add_edge(t2, t5, 1)?;
    b.add_edge(t3, t4, 1)?;
    b.add_edge(t3, t5, 1)?;
    b.build()
}

/// Builds a linear chain of `n` unit-time convolutions — the worst case
/// for parallelism (width 1) and the best case for retiming (every
/// dependency can move inter-iteration).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let g = paraconv_graph::examples::chain(4);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.max_width(), 1);
/// ```
#[must_use]
pub fn chain(n: usize) -> TaskGraph {
    assert!(n > 0, "chain length must be positive");
    let mut b = TaskGraphBuilder::new(format!("chain{n}"));
    let mut prev = b.add_conv(1);
    for _ in 1..n {
        let next = b.add_conv(1);
        b.add_edge(prev, next, 1)
            // lint: allow(no-unwrap) — hard-coded example graphs are valid by inspection
            .expect("chain edges are unique and acyclic");
        prev = next;
    }
    // lint: allow(no-unwrap) — hard-coded example graphs are valid by inspection
    b.build().expect("chains are valid DAGs")
}

/// Builds a fork-join graph: one source, `width` independent middle
/// operations, one sink. Maximum intra-iteration parallelism equals
/// `width`.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Examples
///
/// ```
/// let g = paraconv_graph::examples::fork_join(8);
/// assert_eq!(g.node_count(), 10);
/// assert_eq!(g.max_width(), 8);
/// ```
#[must_use]
pub fn fork_join(width: usize) -> TaskGraph {
    assert!(width > 0, "fork width must be positive");
    let mut b = TaskGraphBuilder::new(format!("forkjoin{width}"));
    let src = b.add_conv(1);
    let sink_pending: Vec<_> = (0..width)
        .map(|_| {
            let mid = b.add_conv(1);
            b.add_edge(src, mid, 1)
                // lint: allow(no-unwrap) — hard-coded example graphs are valid by inspection
                .expect("fork edges are unique and acyclic");
            mid
        })
        .collect();
    let sink = b.add_conv(1);
    for mid in sink_pending {
        b.add_edge(mid, sink, 1)
            // lint: allow(no-unwrap) — hard-coded example graphs are valid by inspection
            .expect("join edges are unique and acyclic");
    }
    // lint: allow(no-unwrap) — hard-coded example graphs are valid by inspection
    b.build().expect("fork-join graphs are valid DAGs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn motivational_matches_paper_structure() {
        let g = motivational();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        // T1 (id 0) feeds T2, T3.
        let mut s = g.successors(NodeId::new(0)).unwrap();
        s.sort();
        assert_eq!(s, vec![NodeId::new(1), NodeId::new(2)]);
        // T4, T5 each consume from both T2 and T3.
        for sink in [NodeId::new(3), NodeId::new(4)] {
            let mut p = g.predecessors(sink).unwrap();
            p.sort();
            assert_eq!(p, vec![NodeId::new(1), NodeId::new(2)]);
        }
        // Levels: T1 at 0; T2,T3 at 1; T4,T5 at 2 → sequential length 3.
        assert_eq!(g.depth(), 3);
        assert_eq!(g.critical_path_length(), 3);
        assert_eq!(g.max_width(), 2);
    }

    #[test]
    fn chain_properties() {
        let g = chain(10);
        assert_eq!(g.depth(), 10);
        assert_eq!(g.critical_path_length(), 10);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn fork_join_properties() {
        let g = fork_join(5);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chain_panics() {
        let _ = chain(0);
    }
}
