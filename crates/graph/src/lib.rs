//! Task-graph model for Para-CONV: CNN applications as weighted DAGs.
//!
//! This crate implements the application model of *"Exploiting
//! Parallelism for Convolutional Connections in Processing-In-Memory
//! Architecture"* (DAC 2017), §2.2: a CNN is a weighted directed acyclic
//! graph `G = (V, E, P, R)` whose vertices are convolution or pooling
//! operations and whose edges carry *intermediate processing results*
//! (IPRs) — the partial sums produced by one operation and requested by
//! another. The graph executes periodically with period `p`; every
//! operation `V_i` carries a timing tuple `(s_i, c_i, d_i)` that shifts
//! by `(ℓ-1)·p` in the `ℓ`-th iteration.
//!
//! The companion crates build on this model: `paraconv-retime` moves
//! operations across iterations, `paraconv-alloc` places IPRs in cache
//! or eDRAM, `paraconv-sched` produces schedules and `paraconv-pim`
//! simulates their execution on the PIM architecture.
//!
//! # Examples
//!
//! Building the paper's motivational graph by hand:
//!
//! ```
//! use paraconv_graph::{OpKind, TaskGraphBuilder};
//!
//! let mut b = TaskGraphBuilder::new("figure-2b");
//! let t1 = b.add_conv(1);
//! let t2 = b.add_conv(1);
//! let t3 = b.add_conv(1);
//! let t4 = b.add_conv(1);
//! let t5 = b.add_conv(1);
//! for (src, dst) in [(t1, t2), (t1, t3), (t2, t4), (t2, t5), (t3, t4), (t3, t5)] {
//!     b.add_edge(src, dst, 1)?;
//! }
//! let g = b.build()?;
//! assert_eq!(g.node_count(), 5);
//! assert_eq!(g.edge_count(), 6);
//! assert_eq!(g.critical_path_length(), 3);
//! # Ok::<(), paraconv_graph::GraphError>(())
//! ```
//!
//! Or using the canned version from [`examples`]:
//!
//! ```
//! let g = paraconv_graph::examples::motivational();
//! assert_eq!(g.max_width(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod analysis;
mod dot;
mod error;
pub mod examples;
mod graph;
mod id;
mod ipr;
mod node;
mod timing;
mod topo;

pub use analysis::GraphSummary;
pub use error::GraphError;
pub use graph::{TaskGraph, TaskGraphBuilder};
pub use id::{EdgeId, NodeId};
pub use ipr::{Ipr, Placement};
pub use node::{OpKind, TaskNode};
pub use timing::TimingTuple;
