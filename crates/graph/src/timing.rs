//! Timing tuples for periodically executed operations (§2.2).
//!
//! Each operation `V_i` is associated with `(s_i, c_i, d_i)` — start
//! time, execution time, deadline. For the `ℓ`-th iteration (`ℓ ≥ 1`)
//! these become `s_i^ℓ = s_i + (ℓ-1)·p`, `c_i^ℓ = c_i`,
//! `d_i^ℓ = d_i + (ℓ-1)·p`, where `p` is the iteration period.
//! Intermediate processing results carry the same style of tuple.

use core::fmt;

/// The `(s, c, d)` tuple of a periodically executed entity — either an
/// operation `V_i(s_i, c_i, d_i)` or an intermediate processing result
/// `I_{i,j}(s_{i,j}, c_{i,j}, d_{i,j})`.
///
/// # Examples
///
/// ```
/// use paraconv_graph::TimingTuple;
///
/// let t = TimingTuple::new(2, 3, 6);
/// assert_eq!(t.start(), 2);
/// assert_eq!(t.exec(), 3);
/// assert_eq!(t.deadline(), 6);
/// assert_eq!(t.finish(), 5);
/// assert!(t.meets_deadline());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingTuple {
    start: u64,
    exec: u64,
    deadline: u64,
}

impl TimingTuple {
    /// Creates a timing tuple for the first iteration.
    #[must_use]
    pub const fn new(start: u64, exec: u64, deadline: u64) -> Self {
        TimingTuple {
            start,
            exec,
            deadline,
        }
    }

    /// Returns the start time `s`.
    #[must_use]
    pub const fn start(self) -> u64 {
        self.start
    }

    /// Returns the execution time `c`.
    #[must_use]
    pub const fn exec(self) -> u64 {
        self.exec
    }

    /// Returns the deadline `d`.
    #[must_use]
    pub const fn deadline(self) -> u64 {
        self.deadline
    }

    /// Returns the finish time `s + c`.
    #[must_use]
    pub const fn finish(self) -> u64 {
        self.start + self.exec
    }

    /// Returns `true` if the entity finishes no later than its deadline.
    #[must_use]
    pub const fn meets_deadline(self) -> bool {
        self.finish() <= self.deadline
    }

    /// Returns the tuple of the `iteration`-th iteration (`iteration ≥ 1`)
    /// for period `p`: `(s + (ℓ-1)·p, c, d + (ℓ-1)·p)`.
    ///
    /// # Panics
    ///
    /// Panics if `iteration == 0`; iterations are 1-based as in the paper.
    #[must_use]
    pub fn at_iteration(self, period: u64, iteration: u64) -> TimingTuple {
        assert!(iteration >= 1, "iterations are 1-based (ℓ ≥ 1)");
        let shift = (iteration - 1) * period;
        TimingTuple {
            start: self.start + shift,
            exec: self.exec,
            deadline: self.deadline + shift,
        }
    }

    /// Returns `true` if the half-open execution windows `[s, s+c)` of
    /// `self` and `other` overlap.
    #[must_use]
    pub const fn overlaps(self, other: TimingTuple) -> bool {
        self.start < other.finish() && other.start < self.finish()
    }
}

impl fmt::Display for TimingTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(s={}, c={}, d={})",
            self.start, self.exec, self.deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_shift_matches_paper_formula() {
        let t = TimingTuple::new(3, 2, 7);
        let p = 10;
        // ℓ = 1 is the base tuple.
        assert_eq!(t.at_iteration(p, 1), t);
        // ℓ = 4: s + 3p, d + 3p, c unchanged.
        let t4 = t.at_iteration(p, 4);
        assert_eq!(t4.start(), 3 + 30);
        assert_eq!(t4.exec(), 2);
        assert_eq!(t4.deadline(), 7 + 30);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zeroth_iteration_panics() {
        let _ = TimingTuple::new(0, 1, 1).at_iteration(5, 0);
    }

    #[test]
    fn deadline_check() {
        assert!(TimingTuple::new(0, 3, 3).meets_deadline());
        assert!(!TimingTuple::new(1, 3, 3).meets_deadline());
    }

    #[test]
    fn overlap_is_symmetric_and_half_open() {
        let a = TimingTuple::new(0, 3, 10); // [0,3)
        let b = TimingTuple::new(3, 2, 10); // [3,5) — touching, not overlapping
        let c = TimingTuple::new(2, 2, 10); // [2,4)
        assert!(!a.overlaps(b));
        assert!(!b.overlaps(a));
        assert!(a.overlaps(c));
        assert!(c.overlaps(a));
        assert!(b.overlaps(c));
    }

    #[test]
    fn display_shows_all_fields() {
        let t = TimingTuple::new(1, 2, 3).to_string();
        assert!(t.contains("s=1") && t.contains("c=2") && t.contains("d=3"));
    }
}
