//! Graphviz DOT export for task graphs.

use std::fmt::Write as _;

use crate::TaskGraph;

impl TaskGraph {
    /// Renders the graph in Graphviz DOT syntax.
    ///
    /// Convolution nodes are boxes, pooling nodes ellipses,
    /// fully-connected nodes hexagons; edges are labelled with their IPR
    /// id and size. Useful for inspecting generated benchmarks:
    ///
    /// ```
    /// use paraconv_graph::{OpKind, TaskGraphBuilder};
    ///
    /// let mut b = TaskGraphBuilder::new("tiny");
    /// let a = b.add_conv(1);
    /// let c = b.add_conv(1);
    /// b.add_edge(a, c, 2)?;
    /// let dot = b.build()?.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("T0 -> T1"));
    /// # Ok::<(), paraconv_graph::GraphError>(())
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", sanitize(self.name()));
        let _ = writeln!(out, "  rankdir=TB;");
        for node in self.nodes() {
            let shape = match node.kind() {
                crate::OpKind::Convolution => "box",
                crate::OpKind::Pooling => "ellipse",
                crate::OpKind::FullyConnected => "hexagon",
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}\\nc={}\" shape={}];",
                node.id(),
                sanitize(node.name()),
                node.exec_time(),
                shape
            );
        }
        for edge in self.edges() {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{} sp={}\"];",
                edge.src(),
                edge.dst(),
                edge.id(),
                edge.size()
            );
        }
        out.push_str("}\n");
        out
    }
}

/// Strips characters that would break DOT string literals.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c == '"' || c == '\\' { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::{OpKind, TaskGraphBuilder};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = TaskGraphBuilder::new("dot-test");
        let c = b.add_node("c", OpKind::Convolution, 1);
        let p = b.add_node("p", OpKind::Pooling, 2);
        let f = b.add_node("f", OpKind::FullyConnected, 3);
        b.add_edge(c, p, 1).unwrap();
        b.add_edge(p, f, 4).unwrap();
        let dot = b.build().unwrap().to_dot();
        assert!(dot.contains("T0"));
        assert!(dot.contains("T1"));
        assert!(dot.contains("T2"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=hexagon"));
        assert!(dot.contains("T0 -> T1"));
        assert!(dot.contains("T1 -> T2"));
        assert!(dot.contains("sp=4"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_sanitizes_quotes() {
        let mut b = TaskGraphBuilder::new("evil\"name");
        b.add_node("n\"ode", OpKind::Convolution, 1);
        let dot = b.build().unwrap().to_dot();
        assert!(!dot.contains("evil\"name"));
        assert!(!dot.contains("n\"ode"));
    }
}
