//! Topological ordering and level (ASAP) analysis.

use crate::{GraphError, NodeId, TaskGraph};

impl TaskGraph {
    /// Computes a topological order of all operations (Kahn's algorithm,
    /// deterministic: ties broken by node ID).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] naming a node on a cycle if the
    /// graph is not acyclic. Graphs produced by
    /// [`TaskGraphBuilder::build`](crate::TaskGraphBuilder::build) are
    /// validated, so for them this never fails.
    pub fn topological_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.node_count();
        let mut in_deg: Vec<usize> = (0..n)
            .map(|i| self.in_edges(NodeId::new(i as u32)).map(<[_]>::len))
            .collect::<Result<_, _>>()?;
        // Min-ID-first ready queue for determinism.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = in_deg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(NodeId::new(i as u32)))
            .collect();

        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(id)) = ready.pop() {
            order.push(id);
            for &e in self.out_edges(id)? {
                let dst = self.edge(e)?.dst();
                in_deg[dst.index()] -= 1;
                if in_deg[dst.index()] == 0 {
                    ready.push(std::cmp::Reverse(dst));
                }
            }
        }

        if order.len() != n {
            // Some node still has positive in-degree: it is on a cycle.
            let culprit = in_deg
                .iter()
                .position(|&d| d > 0)
                .map(|i| NodeId::new(i as u32))
                // lint: allow(no-unwrap) — queue/degree bookkeeping guarantees the entry exists
                .expect("order shorter than node count implies a leftover node");
            return Err(GraphError::Cycle(culprit));
        }
        Ok(order)
    }

    /// Computes the ASAP level of each node: sources are level 0 and
    /// every other node is one more than its deepest predecessor.
    ///
    /// Levels ignore execution times; for weighted depth see
    /// [`critical_path_length`](TaskGraph::critical_path_length).
    ///
    /// # Examples
    ///
    /// ```
    /// use paraconv_graph::{OpKind, TaskGraphBuilder};
    ///
    /// let mut b = TaskGraphBuilder::new("chain");
    /// let a = b.add_conv(1);
    /// let c = b.add_conv(1);
    /// b.add_edge(a, c, 1)?;
    /// let g = b.build()?;
    /// let levels = g.levels();
    /// assert_eq!(levels[a.index()], 0);
    /// assert_eq!(levels[c.index()], 1);
    /// # Ok::<(), paraconv_graph::GraphError>(())
    /// ```
    #[must_use]
    pub fn levels(&self) -> Vec<usize> {
        // lint: allow(no-unwrap) — queue/degree bookkeeping guarantees the entry exists
        let order = self.topological_order().expect("built graphs are acyclic");
        let mut level = vec![0usize; self.node_count()];
        for &id in &order {
            // lint: allow(no-unwrap) — queue/degree bookkeeping guarantees the entry exists
            for &e in self.out_edges(id).expect("node from topological order") {
                // lint: allow(no-unwrap) — queue/degree bookkeeping guarantees the entry exists
                let dst = self.edge(e).expect("edge from adjacency").dst();
                level[dst.index()] = level[dst.index()].max(level[id.index()] + 1);
            }
        }
        level
    }

    /// Returns the number of distinct levels (the unweighted depth of
    /// the graph plus one).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels().iter().copied().max().map_or(0, |d| d + 1)
    }

    /// Returns, per level, how many operations sit at that level — the
    /// *width profile*, an upper bound on exploitable intra-iteration
    /// parallelism under ASAP scheduling.
    #[must_use]
    pub fn width_profile(&self) -> Vec<usize> {
        let levels = self.levels();
        let depth = levels.iter().copied().max().map_or(0, |d| d + 1);
        let mut width = vec![0usize; depth];
        for l in levels {
            width[l] += 1;
        }
        width
    }

    /// Returns the maximum width over all levels — the peak number of
    /// operations that could run concurrently.
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.width_profile().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::{NodeId, TaskGraphBuilder};

    fn fork_join() -> crate::TaskGraph {
        // 0 -> {1,2,3} -> 4
        let mut b = TaskGraphBuilder::new("forkjoin");
        let s = b.add_conv(1);
        let m1 = b.add_conv(1);
        let m2 = b.add_conv(1);
        let m3 = b.add_conv(1);
        let t = b.add_conv(1);
        for m in [m1, m2, m3] {
            b.add_edge(s, m, 1).unwrap();
            b.add_edge(m, t, 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = fork_join();
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), g.node_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for e in g.edges() {
            assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }

    #[test]
    fn topo_order_is_deterministic_min_id_first() {
        let g = fork_join();
        let order = g.topological_order().unwrap();
        assert_eq!(order[0], NodeId::new(0));
        assert_eq!(order[1], NodeId::new(1));
        assert_eq!(order[2], NodeId::new(2));
        assert_eq!(order[3], NodeId::new(3));
        assert_eq!(order[4], NodeId::new(4));
    }

    #[test]
    fn levels_and_width() {
        let g = fork_join();
        assert_eq!(g.levels(), vec![0, 1, 1, 1, 2]);
        assert_eq!(g.depth(), 3);
        assert_eq!(g.width_profile(), vec![1, 3, 1]);
        assert_eq!(g.max_width(), 3);
    }

    #[test]
    fn independent_nodes_all_level_zero() {
        let mut b = TaskGraphBuilder::new("independent");
        for _ in 0..4 {
            b.add_conv(1);
        }
        let g = b.build().unwrap();
        assert_eq!(g.levels(), vec![0; 4]);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.max_width(), 4);
    }
}
