//! Intermediate processing results (IPRs): the data carried on each edge.
//!
//! For each directed edge `(V_i, V_j) ∈ E`, an intermediate processing
//! result `I_{i,j}` denotes the partial-sum data produced by `V_i` and
//! consumed by `V_j`. Where that data lives — scarce on-chip PE cache or
//! the slower 3D-stacked eDRAM — determines its transfer latency and
//! therefore the data-dependency slack of the schedule. The paper
//! associates each IPR with two profits `P_α` (cache) and `P_β` (eDRAM)
//! with `P_α ≫ P_β`.

use core::fmt;

use crate::{EdgeId, NodeId};

/// Where an intermediate processing result is allocated.
///
/// # Examples
///
/// ```
/// use paraconv_graph::Placement;
///
/// assert!(Placement::Cache.is_on_chip());
/// assert!(!Placement::Edram.is_on_chip());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Placement {
    /// The on-chip data cache inside the PE array (fast, capacity 100–300
    /// KB for the whole array in current PIM architectures).
    Cache,
    /// eDRAM in the 3D-stacked memory, reached through TSVs (2–10× the
    /// cache latency/energy).
    #[default]
    Edram,
}

impl Placement {
    /// Returns `true` if the placement is the on-chip PE-array cache.
    #[must_use]
    pub const fn is_on_chip(self) -> bool {
        matches!(self, Placement::Cache)
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Placement::Cache => "cache",
            Placement::Edram => "eDRAM",
        })
    }
}

/// An intermediate processing result `I_{i,j}` — the weighted edge
/// `(V_i, V_j)` of the task graph.
///
/// Carries the size of the intermediate data (in abstract capacity
/// units; one unit is the granularity at which the PE data cache is
/// partitioned) and the base transfer time when served from the on-chip
/// cache. The eDRAM transfer time is derived from the architecture's
/// penalty factor, so it is *not* stored here — see
/// `paraconv-pim`'s cost model.
///
/// # Examples
///
/// ```
/// use paraconv_graph::{OpKind, TaskGraphBuilder};
///
/// let mut b = TaskGraphBuilder::new("demo");
/// let a = b.add_node("a", OpKind::Convolution, 1);
/// let c = b.add_node("c", OpKind::Convolution, 1);
/// let e = b.add_edge(a, c, 1)?;
/// let g = b.build()?;
/// let ipr = g.edge(e)?;
/// assert_eq!(ipr.src(), a);
/// assert_eq!(ipr.dst(), c);
/// assert_eq!(ipr.size(), 1);
/// # Ok::<(), paraconv_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ipr {
    id: EdgeId,
    src: NodeId,
    dst: NodeId,
    size: u64,
}

impl Ipr {
    pub(crate) fn new(id: EdgeId, src: NodeId, dst: NodeId, size: u64) -> Self {
        Ipr { id, src, dst, size }
    }

    /// Returns this IPR's identifier.
    #[must_use]
    pub const fn id(&self) -> EdgeId {
        self.id
    }

    /// Returns the producing operation `V_i`.
    #[must_use]
    pub const fn src(&self) -> NodeId {
        self.src
    }

    /// Returns the consuming operation `V_j`.
    #[must_use]
    pub const fn dst(&self) -> NodeId {
        self.dst
    }

    /// Returns the size `sp` of the intermediate data in capacity units.
    ///
    /// This is the space the IPR occupies if allocated to the on-chip
    /// cache, and the knapsack weight of the dynamic program of §3.3.
    #[must_use]
    pub const fn size(&self) -> u64 {
        self.size
    }

    /// Returns the `(src, dst)` endpoint pair.
    #[must_use]
    pub const fn endpoints(&self) -> (NodeId, NodeId) {
        (self.src, self.dst)
    }
}

impl fmt::Display for Ipr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} (sp={})",
            self.id, self.src, self.dst, self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipr_accessors() {
        let ipr = Ipr::new(EdgeId::new(2), NodeId::new(0), NodeId::new(1), 5);
        assert_eq!(ipr.id(), EdgeId::new(2));
        assert_eq!(ipr.src(), NodeId::new(0));
        assert_eq!(ipr.dst(), NodeId::new(1));
        assert_eq!(ipr.size(), 5);
        assert_eq!(ipr.endpoints(), (NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn placement_default_is_edram() {
        // Unallocated IPRs conservatively live off-chip.
        assert_eq!(Placement::default(), Placement::Edram);
    }

    #[test]
    fn placement_display() {
        assert_eq!(Placement::Cache.to_string(), "cache");
        assert_eq!(Placement::Edram.to_string(), "eDRAM");
    }

    #[test]
    fn ipr_display_mentions_endpoints() {
        let ipr = Ipr::new(EdgeId::new(0), NodeId::new(3), NodeId::new(4), 1);
        let s = ipr.to_string();
        assert!(s.contains("T3"));
        assert!(s.contains("T4"));
    }
}
