//! Task nodes: the convolution and pooling operations of a CNN graph.

use core::fmt;

use crate::NodeId;

/// The functional kind of a task node.
///
/// The paper partitions CNN applications "based on the functionality
/// (i.e., convolution, or pooling)" (§4.1); fully-connected layers are
/// treated as a special kind of convolutional layer (§2.2) but are kept
/// distinguishable here for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OpKind {
    /// A convolution operation (inner product of inputs and filter
    /// weights, reduced into one output neuron).
    #[default]
    Convolution,
    /// A pooling operation (maximum or average over a small window).
    Pooling,
    /// A fully-connected layer, "a special kind of convolutional layer".
    FullyConnected,
}

impl OpKind {
    /// Returns `true` for operation kinds that perform convolution
    /// arithmetic ([`Convolution`] and [`FullyConnected`]).
    ///
    /// [`Convolution`]: OpKind::Convolution
    /// [`FullyConnected`]: OpKind::FullyConnected
    ///
    /// # Examples
    ///
    /// ```
    /// use paraconv_graph::OpKind;
    ///
    /// assert!(OpKind::Convolution.is_convolutional());
    /// assert!(OpKind::FullyConnected.is_convolutional());
    /// assert!(!OpKind::Pooling.is_convolutional());
    /// ```
    #[must_use]
    pub const fn is_convolutional(self) -> bool {
        matches!(self, OpKind::Convolution | OpKind::FullyConnected)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Convolution => "conv",
            OpKind::Pooling => "pool",
            OpKind::FullyConnected => "fc",
        };
        f.write_str(s)
    }
}

/// A task node `V_i`: one convolution or pooling operation of the
/// periodically executed dataflow.
///
/// Each node carries its worst-case execution time `c_i` in abstract
/// time units. Start time `s_i` and deadline `d_i` are *schedule*
/// artifacts and therefore live in timing tables produced by the
/// schedulers, not on the node itself (see [`TimingTuple`]).
///
/// [`TimingTuple`]: crate::TimingTuple
///
/// # Examples
///
/// ```
/// use paraconv_graph::{OpKind, TaskGraphBuilder};
///
/// let mut b = TaskGraphBuilder::new("demo");
/// let id = b.add_node("conv1", OpKind::Convolution, 3);
/// let g = b.build()?;
/// let node = g.node(id)?;
/// assert_eq!(node.name(), "conv1");
/// assert_eq!(node.exec_time(), 3);
/// # Ok::<(), paraconv_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskNode {
    id: NodeId,
    name: String,
    kind: OpKind,
    exec_time: u64,
}

impl TaskNode {
    pub(crate) fn new(id: NodeId, name: impl Into<String>, kind: OpKind, exec_time: u64) -> Self {
        TaskNode {
            id,
            name: name.into(),
            kind,
            exec_time,
        }
    }

    /// Returns this node's identifier.
    #[must_use]
    pub const fn id(&self) -> NodeId {
        self.id
    }

    /// Returns the human-readable name of the operation.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the functional kind of the operation.
    #[must_use]
    pub const fn kind(&self) -> OpKind {
        self.kind
    }

    /// Returns the execution time `c_i` in abstract time units.
    ///
    /// Execution time is invariant across iterations: `c_i^ℓ = c_i`.
    #[must_use]
    pub const fn exec_time(&self) -> u64 {
        self.exec_time
    }
}

impl fmt::Display for TaskNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({}, c={})",
            self.id, self.name, self.kind, self.exec_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_accessors() {
        let n = TaskNode::new(NodeId::new(4), "pool2", OpKind::Pooling, 2);
        assert_eq!(n.id(), NodeId::new(4));
        assert_eq!(n.name(), "pool2");
        assert_eq!(n.kind(), OpKind::Pooling);
        assert_eq!(n.exec_time(), 2);
    }

    #[test]
    fn kind_display() {
        assert_eq!(OpKind::Convolution.to_string(), "conv");
        assert_eq!(OpKind::Pooling.to_string(), "pool");
        assert_eq!(OpKind::FullyConnected.to_string(), "fc");
    }

    #[test]
    fn kind_default_is_convolution() {
        assert_eq!(OpKind::default(), OpKind::Convolution);
    }

    #[test]
    fn node_display_is_nonempty() {
        let n = TaskNode::new(NodeId::new(0), "c", OpKind::Convolution, 1);
        assert!(!n.to_string().is_empty());
    }
}
