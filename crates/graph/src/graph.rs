//! The task graph `G = (V, E, P, R)` and its builder.

use std::collections::HashSet;

use crate::{EdgeId, GraphError, Ipr, NodeId, OpKind, TaskNode};

/// A weighted directed acyclic graph modelling a CNN application (§2.2).
///
/// Vertices are convolution/pooling operations; each directed edge
/// `(V_i, V_j)` carries the intermediate processing result `I_{i,j}`
/// produced by `V_i` and requested by `V_j`. The graph is immutable once
/// built by [`TaskGraphBuilder`]; acyclicity is validated at build time
/// so every `TaskGraph` value is a DAG by construction.
///
/// # Examples
///
/// ```
/// use paraconv_graph::{OpKind, TaskGraphBuilder};
///
/// let mut b = TaskGraphBuilder::new("tiny");
/// let t1 = b.add_node("t1", OpKind::Convolution, 1);
/// let t2 = b.add_node("t2", OpKind::Convolution, 1);
/// b.add_edge(t1, t2, 1)?;
/// let g = b.build()?;
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// # Ok::<(), paraconv_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskGraph {
    name: String,
    nodes: Vec<TaskNode>,
    edges: Vec<Ipr>,
    /// Outgoing edge IDs per node, indexed by `NodeId::index()`.
    succ: Vec<Vec<EdgeId>>,
    /// Incoming edge IDs per node, indexed by `NodeId::index()`.
    pred: Vec<Vec<EdgeId>>,
}

impl TaskGraph {
    /// Returns the application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of operations (vertices) in the graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of intermediate processing results (edges).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Looks up a node by ID.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not in the graph.
    pub fn node(&self, id: NodeId) -> Result<&TaskNode, GraphError> {
        self.nodes
            .get(id.index())
            .ok_or(GraphError::UnknownNode(id))
    }

    /// Looks up an edge (IPR) by ID.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if `id` is not in the graph.
    pub fn edge(&self, id: EdgeId) -> Result<&Ipr, GraphError> {
        self.edges
            .get(id.index())
            .ok_or(GraphError::UnknownEdge(id))
    }

    /// Iterates over all nodes in ID order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &TaskNode> + '_ {
        self.nodes.iter()
    }

    /// Iterates over all edges (IPRs) in ID order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = &Ipr> + '_ {
        self.edges.iter()
    }

    /// Iterates over all node IDs in ID order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over all edge IDs in ID order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone + '_ {
        (0..self.edges.len() as u32).map(EdgeId::new)
    }

    /// Returns the outgoing edges of `id` — the IPRs produced by `V_id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not in the graph.
    pub fn out_edges(&self, id: NodeId) -> Result<&[EdgeId], GraphError> {
        self.succ
            .get(id.index())
            .map(Vec::as_slice)
            .ok_or(GraphError::UnknownNode(id))
    }

    /// Returns the incoming edges of `id` — the IPRs `V_id` consumes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not in the graph.
    pub fn in_edges(&self, id: NodeId) -> Result<&[EdgeId], GraphError> {
        self.pred
            .get(id.index())
            .map(Vec::as_slice)
            .ok_or(GraphError::UnknownNode(id))
    }

    /// Returns the successor operations of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not in the graph.
    pub fn successors(&self, id: NodeId) -> Result<Vec<NodeId>, GraphError> {
        Ok(self
            .out_edges(id)?
            .iter()
            .map(|&e| self.edges[e.index()].dst())
            .collect())
    }

    /// Returns the predecessor operations of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not in the graph.
    pub fn predecessors(&self, id: NodeId) -> Result<Vec<NodeId>, GraphError> {
        Ok(self
            .in_edges(id)?
            .iter()
            .map(|&e| self.edges[e.index()].src())
            .collect())
    }

    /// Returns the in-degree of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not in the graph.
    pub fn in_degree(&self, id: NodeId) -> Result<usize, GraphError> {
        Ok(self.in_edges(id)?.len())
    }

    /// Returns the out-degree of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not in the graph.
    pub fn out_degree(&self, id: NodeId) -> Result<usize, GraphError> {
        Ok(self.out_edges(id)?.len())
    }

    /// Returns the nodes with no predecessors (the graph inputs).
    #[must_use]
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| self.pred[id.index()].is_empty())
            .collect()
    }

    /// Returns the nodes with no successors (the graph outputs).
    #[must_use]
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| self.succ[id.index()].is_empty())
            .collect()
    }

    /// Looks up the edge between an ordered node pair, if one exists.
    #[must_use]
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.succ.get(src.index()).and_then(|out| {
            out.iter()
                .copied()
                .find(|&e| self.edges[e.index()].dst() == dst)
        })
    }

    /// Returns the sum of all node execution times — the serial workload
    /// of one iteration.
    #[must_use]
    pub fn total_exec_time(&self) -> u64 {
        self.nodes.iter().map(TaskNode::exec_time).sum()
    }

    /// Returns the sum of all IPR sizes — the total intermediate-data
    /// footprint of one iteration.
    #[must_use]
    pub fn total_ipr_size(&self) -> u64 {
        self.edges.iter().map(Ipr::size).sum()
    }
}

/// Incremental builder for [`TaskGraph`] (C-BUILDER).
///
/// Nodes receive dense IDs in insertion order. [`build`] validates the
/// assembled graph: it must be non-empty and acyclic, every node must
/// have a positive execution time and every edge a positive size.
///
/// [`build`]: TaskGraphBuilder::build
///
/// # Examples
///
/// ```
/// use paraconv_graph::{OpKind, TaskGraphBuilder};
///
/// let mut b = TaskGraphBuilder::new("app");
/// let a = b.add_node("a", OpKind::Convolution, 2);
/// let p = b.add_node("p", OpKind::Pooling, 1);
/// b.add_edge(a, p, 1)?;
/// let g = b.build()?;
/// assert_eq!(g.sources(), vec![a]);
/// assert_eq!(g.sinks(), vec![p]);
/// # Ok::<(), paraconv_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    name: String,
    nodes: Vec<TaskNode>,
    edges: Vec<Ipr>,
    edge_set: HashSet<(NodeId, NodeId)>,
}

impl TaskGraphBuilder {
    /// Creates an empty builder for an application with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            edge_set: HashSet::new(),
        }
    }

    /// Adds an operation with execution time `exec_time` and returns its ID.
    pub fn add_node(&mut self, name: impl Into<String>, kind: OpKind, exec_time: u64) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(TaskNode::new(id, name, kind, exec_time));
        id
    }

    /// Adds a convolution node with the given execution time.
    ///
    /// Convenience wrapper over [`add_node`](Self::add_node) that names
    /// the node after its ID, as in the paper's `T_1 … T_n` notation.
    pub fn add_conv(&mut self, exec_time: u64) -> NodeId {
        let name = format!("conv{}", self.nodes.len());
        self.add_node(name, OpKind::Convolution, exec_time)
    }

    /// Adds an edge carrying an IPR of `size` capacity units and returns
    /// its ID.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if either endpoint has not
    /// been added, [`GraphError::SelfLoop`] if `src == dst`, or
    /// [`GraphError::DuplicateEdge`] if the ordered pair already has an
    /// edge.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, size: u64) -> Result<EdgeId, GraphError> {
        if src.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(dst));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if !self.edge_set.insert((src, dst)) {
            return Err(GraphError::DuplicateEdge(src, dst));
        }
        let id = EdgeId::new(self.edges.len() as u32);
        self.edges.push(Ipr::new(id, src, dst, size));
        Ok(id)
    }

    /// Returns the number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validates and finishes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for a graph with no nodes,
    /// [`GraphError::ZeroExecTime`] / [`GraphError::ZeroIprSize`] for
    /// degenerate weights, and [`GraphError::Cycle`] if the edges form a
    /// dependency cycle.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        for node in &self.nodes {
            if node.exec_time() == 0 {
                return Err(GraphError::ZeroExecTime(node.id()));
            }
        }
        for edge in &self.edges {
            if edge.size() == 0 {
                return Err(GraphError::ZeroIprSize(edge.src(), edge.dst()));
            }
        }

        let n = self.nodes.len();
        let mut succ: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut pred: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for edge in &self.edges {
            succ[edge.src().index()].push(edge.id());
            pred[edge.dst().index()].push(edge.id());
        }

        let graph = TaskGraph {
            name: self.name,
            nodes: self.nodes,
            edges: self.edges,
            succ,
            pred,
        };
        // Acyclicity: a topological order must cover all nodes.
        graph.topological_order()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // a -> b -> d, a -> c -> d
        let mut b = TaskGraphBuilder::new("diamond");
        let a = b.add_conv(1);
        let x = b.add_conv(2);
        let y = b.add_conv(3);
        let d = b.add_conv(1);
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(a, y, 1).unwrap();
        b.add_edge(x, d, 2).unwrap();
        b.add_edge(y, d, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.name(), "diamond");
        assert_eq!(g.sources(), vec![NodeId::new(0)]);
        assert_eq!(g.sinks(), vec![NodeId::new(3)]);
        assert_eq!(g.total_exec_time(), 7);
        assert_eq!(g.total_ipr_size(), 6);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        let a = NodeId::new(0);
        let d = NodeId::new(3);
        assert_eq!(g.out_degree(a).unwrap(), 2);
        assert_eq!(g.in_degree(a).unwrap(), 0);
        assert_eq!(g.in_degree(d).unwrap(), 2);
        let mut succ = g.successors(a).unwrap();
        succ.sort();
        assert_eq!(succ, vec![NodeId::new(1), NodeId::new(2)]);
        let mut pred = g.predecessors(d).unwrap();
        pred.sort();
        assert_eq!(pred, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn find_edge_works() {
        let g = diamond();
        assert!(g.find_edge(NodeId::new(0), NodeId::new(1)).is_some());
        assert!(g.find_edge(NodeId::new(1), NodeId::new(0)).is_none());
        assert!(g.find_edge(NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(
            TaskGraphBuilder::new("empty").build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TaskGraphBuilder::new("loop");
        let a = b.add_conv(1);
        assert_eq!(b.add_edge(a, a, 1).unwrap_err(), GraphError::SelfLoop(a));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = TaskGraphBuilder::new("dup");
        let a = b.add_conv(1);
        let c = b.add_conv(1);
        b.add_edge(a, c, 1).unwrap();
        assert_eq!(
            b.add_edge(a, c, 2).unwrap_err(),
            GraphError::DuplicateEdge(a, c)
        );
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = TaskGraphBuilder::new("unknown");
        let a = b.add_conv(1);
        let ghost = NodeId::new(99);
        assert_eq!(
            b.add_edge(a, ghost, 1).unwrap_err(),
            GraphError::UnknownNode(ghost)
        );
        assert_eq!(
            b.add_edge(ghost, a, 1).unwrap_err(),
            GraphError::UnknownNode(ghost)
        );
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TaskGraphBuilder::new("cycle");
        let a = b.add_conv(1);
        let c = b.add_conv(1);
        let d = b.add_conv(1);
        b.add_edge(a, c, 1).unwrap();
        b.add_edge(c, d, 1).unwrap();
        b.add_edge(d, a, 1).unwrap();
        assert!(matches!(b.build().unwrap_err(), GraphError::Cycle(_)));
    }

    #[test]
    fn rejects_zero_exec_time() {
        let mut b = TaskGraphBuilder::new("zero");
        let a = b.add_node("a", OpKind::Convolution, 0);
        assert_eq!(b.build().unwrap_err(), GraphError::ZeroExecTime(a));
    }

    #[test]
    fn rejects_zero_ipr_size() {
        let mut b = TaskGraphBuilder::new("zero-ipr");
        let a = b.add_conv(1);
        let c = b.add_conv(1);
        b.add_edge(a, c, 0).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::ZeroIprSize(a, c));
    }

    #[test]
    fn unknown_lookups_error() {
        let g = diamond();
        let ghost = NodeId::new(50);
        assert_eq!(g.node(ghost).unwrap_err(), GraphError::UnknownNode(ghost));
        assert_eq!(
            g.edge(EdgeId::new(50)).unwrap_err(),
            GraphError::UnknownEdge(EdgeId::new(50))
        );
        assert!(g.out_edges(ghost).is_err());
        assert!(g.in_edges(ghost).is_err());
    }

    #[test]
    fn single_node_graph_is_valid() {
        let mut b = TaskGraphBuilder::new("one");
        b.add_conv(1);
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.sources(), g.sinks());
    }
}
