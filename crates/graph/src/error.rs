//! Error types for task-graph construction and queries.

use core::fmt;

use crate::{EdgeId, NodeId};

/// Errors produced while building or querying a [`TaskGraph`].
///
/// [`TaskGraph`]: crate::TaskGraph
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node ID did not refer to any node in the graph.
    UnknownNode(NodeId),
    /// An edge ID did not refer to any edge in the graph.
    UnknownEdge(EdgeId),
    /// An edge from a node to itself was requested; the application model
    /// is a DAG of distinct operations, so self-loops are rejected.
    SelfLoop(NodeId),
    /// A second edge between the same ordered node pair was requested.
    /// Each producer/consumer pair exchanges exactly one intermediate
    /// processing result per iteration.
    DuplicateEdge(NodeId, NodeId),
    /// The finished graph contains a dependency cycle; a CNN is modelled
    /// as a *directed acyclic* graph (§2.2).
    Cycle(NodeId),
    /// The graph has no nodes; an empty application cannot be scheduled.
    Empty,
    /// A node was given a zero execution time; every operation occupies
    /// its PE for at least one time unit.
    ZeroExecTime(NodeId),
    /// An edge was given a zero data size; every intermediate processing
    /// result occupies at least one capacity unit.
    ZeroIprSize(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node {id}"),
            GraphError::UnknownEdge(id) => write!(f, "unknown edge {id}"),
            GraphError::SelfLoop(id) => write!(f, "self-loop on node {id}"),
            GraphError::DuplicateEdge(src, dst) => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            GraphError::Cycle(id) => {
                write!(f, "dependency cycle through node {id}")
            }
            GraphError::Empty => f.write_str("graph has no nodes"),
            GraphError::ZeroExecTime(id) => {
                write!(f, "node {id} has zero execution time")
            }
            GraphError::ZeroIprSize(src, dst) => {
                write!(f, "edge {src} -> {dst} has zero data size")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            GraphError::UnknownNode(NodeId::new(1)),
            GraphError::UnknownEdge(EdgeId::new(2)),
            GraphError::SelfLoop(NodeId::new(3)),
            GraphError::DuplicateEdge(NodeId::new(0), NodeId::new(1)),
            GraphError::Cycle(NodeId::new(4)),
            GraphError::Empty,
            GraphError::ZeroExecTime(NodeId::new(5)),
            GraphError::ZeroIprSize(NodeId::new(0), NodeId::new(2)),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }
}
