//! Strongly-typed identifiers for task-graph entities.
//!
//! Nodes (convolution/pooling operations) and edges (intermediate
//! processing results) are referred to by index-based IDs. Newtypes keep
//! the two index spaces from being confused at compile time (C-NEWTYPE).

use core::fmt;

/// Identifier of a task node (a convolution or pooling operation `V_i`).
///
/// IDs are dense indices assigned by [`TaskGraphBuilder`] in insertion
/// order, so they can be used to index per-node side tables.
///
/// [`TaskGraphBuilder`]: crate::TaskGraphBuilder
///
/// # Examples
///
/// ```
/// use paraconv_graph::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "T3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node ID from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node, suitable for indexing
    /// per-node side tables.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Identifier of an intermediate processing result `I_{i,j}` (a graph
/// edge carrying data from `V_i` to `V_j`).
///
/// # Examples
///
/// ```
/// use paraconv_graph::EdgeId;
///
/// let id = EdgeId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(id.to_string(), "I7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge ID from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// Returns the dense index of this edge, suitable for indexing
    /// per-edge side tables.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

impl From<EdgeId> for usize {
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        for i in [0u32, 1, 42, u32::MAX] {
            assert_eq!(NodeId::new(i).index(), i as usize);
        }
    }

    #[test]
    fn edge_id_roundtrip() {
        for i in [0u32, 1, 42, u32::MAX] {
            assert_eq!(EdgeId::new(i).index(), i as usize);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::new(0).to_string(), "T0");
        assert_eq!(EdgeId::new(12).to_string(), "I12");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(3) > EdgeId::new(0));
    }

    #[test]
    fn usize_conversion() {
        assert_eq!(usize::from(NodeId::new(5)), 5);
        assert_eq!(usize::from(EdgeId::new(6)), 6);
    }
}
