//! Weighted graph analyses: critical path, workload bounds, summaries.

use crate::{NodeId, OpKind, TaskGraph};

/// A structural summary of a task graph, convenient for reporting the
/// "# of vertex" / "# of edge" columns of the paper's Table 1 plus
/// derived bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphSummary {
    /// Application name.
    pub name: String,
    /// Number of convolution/pooling operations (vertices).
    pub vertices: usize,
    /// Number of intermediate processing results (edges).
    pub edges: usize,
    /// Unweighted depth (number of ASAP levels).
    pub depth: usize,
    /// Peak level width (upper bound on intra-iteration parallelism).
    pub max_width: usize,
    /// Sum of execution times (serial workload per iteration).
    pub total_exec_time: u64,
    /// Length of the weighted critical path.
    pub critical_path: u64,
    /// Number of convolution vertices.
    pub conv_ops: usize,
    /// Number of pooling vertices.
    pub pool_ops: usize,
}

impl TaskGraph {
    /// Computes the length of the weighted critical path: the maximum
    /// over all paths of the sum of node execution times along the path.
    ///
    /// Edge (IPR transfer) costs are placement-dependent and therefore
    /// excluded here; schedulers add them per allocation. The critical
    /// path is a lower bound on the makespan of one iteration when
    /// intra-iteration dependencies are kept (i.e. without retiming).
    ///
    /// # Examples
    ///
    /// ```
    /// use paraconv_graph::{OpKind, TaskGraphBuilder};
    ///
    /// let mut b = TaskGraphBuilder::new("chain");
    /// let a = b.add_conv(2);
    /// let c = b.add_conv(3);
    /// b.add_edge(a, c, 1)?;
    /// let g = b.build()?;
    /// assert_eq!(g.critical_path_length(), 5);
    /// # Ok::<(), paraconv_graph::GraphError>(())
    /// ```
    #[must_use]
    pub fn critical_path_length(&self) -> u64 {
        self.finish_depths().into_iter().max().unwrap_or(0)
    }

    /// Computes, for each node, the weighted depth at which it *finishes*
    /// on an unbounded machine: `finish(v) = c_v + max over preds p of
    /// finish(p)` (0 max for sources).
    #[must_use]
    pub fn finish_depths(&self) -> Vec<u64> {
        // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
        let order = self.topological_order().expect("built graphs are acyclic");
        let mut finish = vec![0u64; self.node_count()];
        for &id in &order {
            // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
            let c = self.node(id).expect("node from topo order").exec_time();
            let pred_max = self
                .in_edges(id)
                // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
                .expect("node from topo order")
                .iter()
                // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
                .map(|&e| finish[self.edge(e).expect("edge from adjacency").src().index()])
                .max()
                .unwrap_or(0);
            finish[id.index()] = pred_max + c;
        }
        finish
    }

    /// Computes, for each node, the length of the longest weighted path
    /// from the node (inclusive) to any sink — the classic *bottom
    /// level* used as a list-scheduling priority.
    #[must_use]
    pub fn bottom_levels(&self) -> Vec<u64> {
        // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
        let order = self.topological_order().expect("built graphs are acyclic");
        let mut bl = vec![0u64; self.node_count()];
        for &id in order.iter().rev() {
            // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
            let c = self.node(id).expect("node from topo order").exec_time();
            let succ_max = self
                .out_edges(id)
                // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
                .expect("node from topo order")
                .iter()
                // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
                .map(|&e| bl[self.edge(e).expect("edge from adjacency").dst().index()])
                .max()
                .unwrap_or(0);
            bl[id.index()] = succ_max + c;
        }
        bl
    }

    /// Returns the set of nodes lying on at least one critical path.
    #[must_use]
    pub fn critical_nodes(&self) -> Vec<NodeId> {
        let finish = self.finish_depths();
        let bottom = self.bottom_levels();
        let cp = self.critical_path_length();
        self.node_ids()
            .filter(|id| {
                // lint: allow(no-unwrap) — nodes exist after a successful toposort of the same graph
                let c = self.node(*id).expect("iterating own ids").exec_time();
                // start depth + bottom level spans the whole critical path
                (finish[id.index()] - c) + bottom[id.index()] == cp
            })
            .collect()
    }

    /// Produces a [`GraphSummary`] for reporting.
    #[must_use]
    pub fn summary(&self) -> GraphSummary {
        let conv_ops = self.nodes().filter(|n| n.kind().is_convolutional()).count();
        let pool_ops = self.nodes().filter(|n| n.kind() == OpKind::Pooling).count();
        GraphSummary {
            name: self.name().to_owned(),
            vertices: self.node_count(),
            edges: self.edge_count(),
            depth: self.depth(),
            max_width: self.max_width(),
            total_exec_time: self.total_exec_time(),
            critical_path: self.critical_path_length(),
            conv_ops,
            pool_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{OpKind, TaskGraphBuilder};

    #[test]
    fn critical_path_of_diamond() {
        let mut b = TaskGraphBuilder::new("diamond");
        let a = b.add_conv(1); // 1
        let x = b.add_conv(5); // long branch
        let y = b.add_conv(2); // short branch
        let d = b.add_conv(1);
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(a, y, 1).unwrap();
        b.add_edge(x, d, 1).unwrap();
        b.add_edge(y, d, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.critical_path_length(), 1 + 5 + 1);
        let crit = g.critical_nodes();
        assert!(crit.contains(&a));
        assert!(crit.contains(&x));
        assert!(crit.contains(&d));
        assert!(!crit.contains(&y));
    }

    #[test]
    fn bottom_levels_match_reverse_depths() {
        let mut b = TaskGraphBuilder::new("chain");
        let a = b.add_conv(2);
        let c = b.add_conv(3);
        let d = b.add_conv(4);
        b.add_edge(a, c, 1).unwrap();
        b.add_edge(c, d, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.bottom_levels(), vec![9, 7, 4]);
        assert_eq!(g.finish_depths(), vec![2, 5, 9]);
    }

    #[test]
    fn summary_counts_kinds() {
        let mut b = TaskGraphBuilder::new("mix");
        let c1 = b.add_node("c1", OpKind::Convolution, 1);
        let p1 = b.add_node("p1", OpKind::Pooling, 1);
        let f1 = b.add_node("f1", OpKind::FullyConnected, 1);
        b.add_edge(c1, p1, 1).unwrap();
        b.add_edge(p1, f1, 1).unwrap();
        let g = b.build().unwrap();
        let s = g.summary();
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.conv_ops, 2); // conv + fc are convolutional
        assert_eq!(s.pool_ops, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.critical_path, 3);
        assert_eq!(s.name, "mix");
    }

    #[test]
    fn single_node_critical_path_is_its_exec_time() {
        let mut b = TaskGraphBuilder::new("one");
        b.add_conv(7);
        let g = b.build().unwrap();
        assert_eq!(g.critical_path_length(), 7);
        assert_eq!(g.critical_nodes().len(), 1);
    }
}
