//! Property-based tests for the task-graph invariants.

use proptest::prelude::*;

use paraconv_graph::{GraphError, NodeId, OpKind, TaskGraph, TaskGraphBuilder};

/// Strategy: a random DAG described by node count, per-node execution
/// times, and a set of forward edges (src < dst guarantees acyclicity).
fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..40).prop_flat_map(|n| {
        let exec_times = proptest::collection::vec(1u64..10, n);
        let edges = proptest::collection::btree_set((0..n, 0..n), 0..(n * 2));
        (exec_times, edges).prop_map(move |(times, edges)| {
            let mut b = TaskGraphBuilder::new("prop");
            let ids: Vec<NodeId> = times
                .iter()
                .map(|&c| b.add_node("n", OpKind::Convolution, c))
                .collect();
            for (a, z) in edges {
                let (lo, hi) = (a.min(z), a.max(z));
                if lo != hi {
                    // Duplicate (lo,hi) pairs are skipped; the builder
                    // rejects them and that is fine for generation.
                    let _ = b.add_edge(ids[lo], ids[hi], 1 + ((lo + hi) as u64 % 5));
                }
            }
            b.build().expect("forward edges cannot form a cycle")
        })
    })
}

proptest! {
    #[test]
    fn topological_order_is_a_permutation_respecting_edges(g in arb_dag()) {
        let order = g.topological_order().unwrap();
        prop_assert_eq!(order.len(), g.node_count());
        let mut pos = vec![usize::MAX; g.node_count()];
        for (i, id) in order.iter().enumerate() {
            prop_assert_eq!(pos[id.index()], usize::MAX, "node repeated in order");
            pos[id.index()] = i;
        }
        for e in g.edges() {
            prop_assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }

    #[test]
    fn critical_path_bounds(g in arb_dag()) {
        let cp = g.critical_path_length();
        let max_node = g.nodes().map(|n| n.exec_time()).max().unwrap();
        // The critical path is at least the longest single node and at
        // most the serial sum of all nodes.
        prop_assert!(cp >= max_node);
        prop_assert!(cp <= g.total_exec_time());
    }

    #[test]
    fn bottom_level_of_source_on_critical_path_equals_cp(g in arb_dag()) {
        let bl = g.bottom_levels();
        let cp = g.critical_path_length();
        // The maximum bottom level over all nodes is the critical path.
        prop_assert_eq!(bl.iter().copied().max().unwrap(), cp);
    }

    #[test]
    fn width_profile_sums_to_node_count(g in arb_dag()) {
        let total: usize = g.width_profile().iter().sum();
        prop_assert_eq!(total, g.node_count());
        prop_assert!(g.max_width() >= 1);
        prop_assert_eq!(g.width_profile().len(), g.depth());
    }

    #[test]
    fn degrees_are_consistent_with_edge_count(g in arb_dag()) {
        let out_sum: usize = g.node_ids().map(|id| g.out_degree(id).unwrap()).sum();
        let in_sum: usize = g.node_ids().map(|id| g.in_degree(id).unwrap()).sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
    }

    #[test]
    fn sources_have_no_predecessors_sinks_no_successors(g in arb_dag()) {
        for s in g.sources() {
            prop_assert!(g.predecessors(s).unwrap().is_empty());
        }
        for s in g.sinks() {
            prop_assert!(g.successors(s).unwrap().is_empty());
        }
        prop_assert!(!g.sources().is_empty());
        prop_assert!(!g.sinks().is_empty());
    }

    #[test]
    fn find_edge_agrees_with_edges(g in arb_dag()) {
        for e in g.edges() {
            prop_assert_eq!(g.find_edge(e.src(), e.dst()), Some(e.id()));
        }
    }

    #[test]
    fn dot_output_mentions_every_node(g in arb_dag()) {
        let dot = g.to_dot();
        for id in g.node_ids() {
            let needle = format!("{id} ");
            prop_assert!(dot.contains(&needle));
        }
    }
}

#[test]
fn cycle_detection_on_back_edge() {
    let mut b = TaskGraphBuilder::new("cyc");
    let n: Vec<NodeId> = (0..5).map(|_| b.add_conv(1)).collect();
    for w in n.windows(2) {
        b.add_edge(w[0], w[1], 1).unwrap();
    }
    b.add_edge(n[4], n[0], 1).unwrap();
    assert!(matches!(b.build(), Err(GraphError::Cycle(_))));
}
