//! Serde roundtrips for the graph model (run with
//! `cargo test -p paraconv-graph --features serde`).

#![cfg(feature = "serde")]

use paraconv_graph::{examples, NodeId, Placement, TaskGraph, TimingTuple};

#[test]
fn task_graph_roundtrips_through_json() {
    let g = examples::motivational();
    let json = serde_json::to_string(&g).expect("serializes");
    let back: TaskGraph = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(g, back);
    // Derived analyses agree after the roundtrip.
    assert_eq!(g.critical_path_length(), back.critical_path_length());
    assert_eq!(g.levels(), back.levels());
}

#[test]
fn ids_serialize_transparently() {
    let id = NodeId::new(7);
    assert_eq!(serde_json::to_string(&id).unwrap(), "7");
    let back: NodeId = serde_json::from_str("7").unwrap();
    assert_eq!(back, id);
}

#[test]
fn placement_and_timing_roundtrip() {
    for p in [Placement::Cache, Placement::Edram] {
        let json = serde_json::to_string(&p).unwrap();
        let back: Placement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
    let t = TimingTuple::new(1, 2, 3);
    let back: TimingTuple = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(back, t);
}

#[test]
fn graphs_of_every_size_roundtrip() {
    for g in [
        examples::chain(1),
        examples::chain(12),
        examples::fork_join(9),
    ] {
        let json = serde_json::to_string(&g).expect("serializes");
        let back: TaskGraph = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(g, back);
    }
}
