//! Property-based tests: the dynamic program is an exact optimum.

use proptest::prelude::*;

use paraconv_alloc::{
    brute_force_max_profit, edf_feasibility, max_profit_compact, sort_by_deadline, AllocItem,
    CacheAllocator, DpTable, IncrementalDp,
};
use paraconv_graph::EdgeId;

fn arb_items(max_n: usize) -> impl Strategy<Value = Vec<AllocItem>> {
    proptest::collection::vec((1u64..8, 0u64..4, 0u64..50), 0..max_n).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (space, profit, deadline))| {
                AllocItem::new(EdgeId::new(i as u32), space, profit, deadline)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn dp_matches_brute_force(items in arb_items(12), capacity in 0u64..30) {
        let sorted = sort_by_deadline(items.clone());
        let table = DpTable::fill(&sorted, capacity);
        prop_assert_eq!(table.max_profit(), brute_force_max_profit(&items, capacity));
    }

    #[test]
    fn dp_profit_is_monotone_in_capacity(items in arb_items(10)) {
        let sorted = sort_by_deadline(items);
        let mut last = 0;
        for capacity in 0..25 {
            let profit = DpTable::fill(&sorted, capacity).max_profit();
            prop_assert!(profit >= last);
            last = profit;
        }
    }

    #[test]
    fn reconstruction_is_feasible_and_optimal(items in arb_items(12), capacity in 0u64..25) {
        let sorted = sort_by_deadline(items);
        let table = DpTable::fill(&sorted, capacity);
        let chosen = table.reconstruct();
        let space: u64 = sorted.iter().zip(&chosen).filter(|(_, &c)| c).map(|(i, _)| i.space()).sum();
        let profit: u64 = sorted.iter().zip(&chosen).filter(|(_, &c)| c).map(|(i, _)| i.delta_r()).sum();
        prop_assert!(space <= capacity);
        prop_assert_eq!(profit, table.max_profit());
    }

    #[test]
    fn allocator_profit_matches_dp_on_competing_items(items in arb_items(12), capacity in 0u64..25) {
        let competing: Vec<AllocItem> = items.iter().copied().filter(|i| i.delta_r() > 0).collect();
        let expected = DpTable::fill(&sort_by_deadline(competing), capacity).max_profit();
        let allocation = CacheAllocator::new(capacity).allocate(items);
        prop_assert_eq!(allocation.total_profit(), expected);
        prop_assert!(allocation.used_capacity() <= capacity);
    }

    #[test]
    fn allocator_never_caches_zero_profit(items in arb_items(12), capacity in 0u64..25) {
        let allocation = CacheAllocator::new(capacity).allocate(items.clone());
        for item in &items {
            if item.delta_r() == 0 {
                prop_assert_eq!(
                    allocation.placement(item.edge()),
                    Some(paraconv_graph::Placement::Edram)
                );
            }
        }
    }

    #[test]
    fn compact_dp_matches_table_dp(items in arb_items(20), capacity in 0u64..40) {
        let sorted = sort_by_deadline(items);
        prop_assert_eq!(
            max_profit_compact(&sorted, capacity),
            DpTable::fill(&sorted, capacity).max_profit()
        );
    }

    #[test]
    fn fill_sweep_matches_per_capacity_fill(items in arb_items(14), caps in proptest::collection::vec(0u64..40, 1..8)) {
        let sorted = sort_by_deadline(items);
        let sweep = DpTable::fill_sweep(&sorted, &caps);
        prop_assert_eq!(sweep.len(), caps.len());
        for (&capacity, &profit) in caps.iter().zip(&sweep) {
            prop_assert_eq!(profit, DpTable::fill(&sorted, capacity).max_profit());
            prop_assert_eq!(profit, max_profit_compact(&sorted, capacity));
        }
    }

    #[test]
    fn reconstruct_at_agrees_with_dedicated_fill(items in arb_items(12), capacity in 0u64..25, extra in 0u64..15) {
        // A table filled at a larger capacity reconstructs the same
        // optimal profit at any smaller sweep point.
        let sorted = sort_by_deadline(items);
        let table = DpTable::fill(&sorted, capacity + extra);
        let chosen = table.reconstruct_at(capacity);
        let space: u64 = sorted.iter().zip(&chosen).filter(|(_, &c)| c).map(|(i, _)| i.space()).sum();
        let profit: u64 = sorted.iter().zip(&chosen).filter(|(_, &c)| c).map(|(i, _)| i.delta_r()).sum();
        prop_assert!(space <= capacity);
        prop_assert_eq!(profit, DpTable::fill(&sorted, capacity).max_profit());
    }

    #[test]
    fn incremental_resolve_matches_cold_fill(
        items in arb_items(12),
        steps in proptest::collection::vec(
            (proptest::collection::vec((0usize..12, 0u8..4, 0u64..50), 1..5), 0u64..30),
            1..10,
        ),
    ) {
        // One long-lived session re-solves after every perturbation
        // batch — several item field edits and deadline moves applied
        // *together*, the way a degraded-mode replan moves many items
        // at once, plus capacity changes — and must stay bit-for-bit
        // equal to a from-scratch fill: same optimum, same
        // reconstruction. Multi-edit batches exercise the
        // convergence-aware refill (skipped rows between and after
        // moved items), not just the shared-prefix path.
        let mut current = sort_by_deadline(items);
        let mut session = IncrementalDp::new();
        for (edits, capacity) in steps {
            let mut resort = false;
            for (idx, field, value) in edits {
                if current.is_empty() {
                    break;
                }
                let i = idx % current.len();
                let it = current[i];
                current[i] = match field {
                    0 => AllocItem::new(it.edge(), 1 + value % 8, it.delta_r(), it.deadline()),
                    1 => AllocItem::new(it.edge(), it.space(), value % 4, it.deadline()),
                    2 => AllocItem::new(it.edge(), it.space(), it.delta_r(), value),
                    _ => it, // identity edit: capacity-only pressure
                };
                resort |= field == 2;
            }
            if resort {
                current = sort_by_deadline(current);
            }
            session.resolve(&current, capacity);
            let cold = DpTable::fill(&current, capacity);
            prop_assert_eq!(session.max_profit(), cold.max_profit());
            prop_assert_eq!(session.reconstruct(), cold.reconstruct());
        }
    }

    #[test]
    fn edf_feasibility_is_order_invariant(items in arb_items(10), seed in 0usize..10) {
        let mut shuffled = items.clone();
        let rot = seed % shuffled.len().max(1);
        shuffled.rotate_left(rot);
        prop_assert_eq!(edf_feasibility(&items), edf_feasibility(&shuffled));
    }

    #[test]
    fn edf_slack_zero_sets_are_tight(items in arb_items(8)) {
        // Adding any positive-length item with the same final deadline
        // to a zero-slack set makes it infeasible.
        if let paraconv_alloc::Feasibility::Feasible { slack } = edf_feasibility(&items) {
            if !items.is_empty() && slack == 0 {
                let last_deadline = items.iter().map(|i| i.deadline()).max().unwrap();
                let mut extended = items.clone();
                extended.push(AllocItem::new(EdgeId::new(999), 1, 1, last_deadline));
                prop_assert!(!edf_feasibility(&extended).is_feasible());
            }
        }
    }

    #[test]
    fn allocator_covers_every_item(items in arb_items(12), capacity in 0u64..25) {
        let allocation = CacheAllocator::new(capacity).allocate(items.clone());
        for item in &items {
            prop_assert!(allocation.placement(item.edge()).is_some());
        }
    }
}
