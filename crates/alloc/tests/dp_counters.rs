//! Observability contract of the incremental DP session.
//!
//! The `dp.*` counters are the evidence that the convergence-aware
//! refill actually skips rows: `dp.rows_reused` must count *every*
//! reused row — the shared item prefix and any suffix rows whose
//! recurrence converged — and `dp.cells_filled` must only charge for
//! rows that were genuinely recomputed. The historical bug was a
//! refill lower bound stuck at the first moved item, which both
//! refilled untouched rows and undercounted `dp.rows_reused`.
//!
//! The obs recorder is process-global; this binary holds every test
//! that enables it for the alloc crate, serialized on one lock, so the
//! counter deltas are exact.

use std::sync::{Mutex, MutexGuard};

use paraconv_alloc::{AllocItem, IncrementalDp};
use paraconv_graph::EdgeId;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn item(id: u32, space: u64, profit: u64) -> AllocItem {
    AllocItem::new(EdgeId::new(id), space, profit, id as u64)
}

/// Runs `f` with the recorder on and returns the exact deltas of
/// (`dp.rows_reused`, `dp.cells_filled`, `dp.incremental_hits`).
fn counted(f: impl FnOnce()) -> (u64, u64, u64) {
    paraconv_obs::reset();
    paraconv_obs::enable();
    f();
    paraconv_obs::disable();
    let snapshot = paraconv_obs::snapshot();
    (
        snapshot.counter("dp.rows_reused"),
        snapshot.counter("dp.cells_filled"),
        snapshot.counter("dp.incremental_hits"),
    )
}

#[test]
fn tail_perturbation_reuses_the_prefix() {
    let _guard = lock();
    let mut items: Vec<AllocItem> = (0..6).map(|i| item(i, 2, 3 + u64::from(i))).collect();
    let mut session = IncrementalDp::new();
    session.resolve(&items, 9);
    items[5] = item(5, 1, 40);
    let (reused, filled, hits) = counted(|| session.resolve(&items, 9));
    assert_eq!(reused, 5, "rows 0..5 share the item prefix");
    assert_eq!(filled, 10, "exactly one row of width capacity + 1");
    assert_eq!(hits, 1);
}

#[test]
fn converged_refill_skips_the_untouched_tail() {
    let _guard = lock();
    // Items 1 and 4 are oversized: their rows copy straight through,
    // so replacing them with other oversized items recomputes a row
    // that lands byte-identical on the stored one and the refill goes
    // clean again. The old first-moved-item lower bound would have
    // refilled rows 1..6 and reported rows_reused = 1.
    let mut items = vec![
        item(0, 2, 3),
        item(1, 50, 5),
        item(2, 1, 2),
        item(3, 4, 7),
        item(4, 60, 4),
        item(5, 3, 6),
    ];
    let mut session = IncrementalDp::new();
    session.resolve(&items, 9);
    items[1] = item(1, 70, 9);
    items[4] = item(4, 80, 1);
    let (reused, filled, hits) = counted(|| session.resolve(&items, 9));
    assert_eq!(
        reused, 4,
        "rows 0, 2, 3 and 5 are reused, not just the one-row prefix"
    );
    assert_eq!(filled, 20, "only the two moved rows are recomputed");
    assert_eq!(hits, 1);
}

#[test]
fn identical_resolves_recompute_nothing() {
    let _guard = lock();
    let items: Vec<AllocItem> = (0..4).map(|i| item(i, 1 + u64::from(i) % 3, 2)).collect();
    let mut session = IncrementalDp::new();
    session.resolve(&items, 6);
    let (reused, filled, hits) = counted(|| {
        session.resolve(&items, 6);
        session.resolve(&items, 3); // capacity move within the width
    });
    assert_eq!(reused, 8, "all four rows reused on both resolves");
    assert_eq!(filled, 0);
    assert_eq!(hits, 2);
}

#[test]
fn diverging_perturbation_still_refills_downstream_rows() {
    let _guard = lock();
    // A genuine value change in row 1 dirties every later row until it
    // converges; with distinct profits it never does, so only the
    // prefix is reused — the skip logic must not over-skip.
    let mut items = vec![item(0, 2, 3), item(1, 2, 5), item(2, 3, 7), item(3, 1, 11)];
    let mut session = IncrementalDp::new();
    session.resolve(&items, 9);
    items[1] = item(1, 2, 6);
    let (reused, filled, _) = counted(|| session.resolve(&items, 9));
    assert_eq!(reused, 1, "only row 0 precedes the moved item");
    assert_eq!(filled, 30, "rows 1..4 all recompute");
}
