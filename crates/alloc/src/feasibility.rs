//! Deadline feasibility of an allocation (§3.3.1's premise).
//!
//! The dynamic program considers intermediate processing results in
//! increasing deadline order because "the subset of intermediate
//! processing results that are scheduled will be done in increasing
//! order of deadline" — i.e. the cached transfers themselves form an
//! EDF schedule on the cache port. This module checks that premise for
//! a concrete selection: given each cached IPR's transfer time and
//! deadline, is the earliest-deadline-first order feasible on a single
//! resource?
//!
//! The deadline order is also what makes the incremental re-solve
//! ([`crate::IncrementalDp`]) sound: session rows are keyed by the
//! deadline-sorted item prefix, so a perturbation that moves an item's
//! deadline re-sorts the instance and invalidates exactly the rows
//! from the first changed position onward.

use crate::AllocItem;

/// The result of an EDF feasibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// Every transfer meets its deadline in EDF order.
    Feasible {
        /// Total slack remaining at the last deadline.
        slack: u64,
    },
    /// The first deadline miss in EDF order.
    Infeasible {
        /// Index (in deadline order) of the first item that misses.
        item: usize,
        /// Its completion time in EDF order.
        completes_at: u64,
        /// Its deadline.
        deadline: u64,
    },
}

impl Feasibility {
    /// Returns `true` for the feasible case.
    #[must_use]
    pub const fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible { .. })
    }
}

/// Checks single-resource EDF feasibility of a set of transfers, each
/// described by `(service_time, deadline)` taken from the item's
/// `space` (a proxy for transfer length in capacity units) and
/// `deadline`.
///
/// EDF is optimal for single-resource deadline scheduling, so
/// feasibility here is feasibility outright.
///
/// # Examples
///
/// ```
/// use paraconv_alloc::{edf_feasibility, AllocItem, Feasibility};
/// use paraconv_graph::EdgeId;
///
/// let items = vec![
///     AllocItem::new(EdgeId::new(0), 2, 1, 2),
///     AllocItem::new(EdgeId::new(1), 2, 1, 4),
/// ];
/// assert!(edf_feasibility(&items).is_feasible());
///
/// let tight = vec![AllocItem::new(EdgeId::new(0), 5, 1, 3)];
/// assert!(matches!(
///     edf_feasibility(&tight),
///     Feasibility::Infeasible { completes_at: 5, deadline: 3, .. }
/// ));
/// ```
#[must_use]
pub fn edf_feasibility(items: &[AllocItem]) -> Feasibility {
    let mut order: Vec<&AllocItem> = items.iter().collect();
    order.sort_by_key(|i| (i.deadline(), i.edge()));
    let mut clock = 0u64;
    for (idx, item) in order.iter().enumerate() {
        clock += item.space();
        if clock > item.deadline() {
            return Feasibility::Infeasible {
                item: idx,
                completes_at: clock,
                deadline: item.deadline(),
            };
        }
    }
    let slack = order.last().map_or(0, |last| last.deadline() - clock);
    Feasibility::Feasible { slack }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::EdgeId;

    fn item(id: u32, space: u64, deadline: u64) -> AllocItem {
        AllocItem::new(EdgeId::new(id), space, 1, deadline)
    }

    #[test]
    fn empty_set_is_feasible() {
        assert_eq!(edf_feasibility(&[]), Feasibility::Feasible { slack: 0 });
    }

    #[test]
    fn feasible_with_slack() {
        let items = vec![item(0, 1, 3), item(1, 1, 10)];
        assert_eq!(edf_feasibility(&items), Feasibility::Feasible { slack: 8 });
    }

    #[test]
    fn order_does_not_matter() {
        let a = vec![item(0, 2, 2), item(1, 2, 4), item(2, 2, 6)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(edf_feasibility(&a), edf_feasibility(&b));
        assert!(edf_feasibility(&a).is_feasible());
    }

    #[test]
    fn first_miss_is_reported() {
        // Deadlines 2, 3, 4 with unit-2 services: item 1 completes at 4
        // > 3.
        let items = vec![item(0, 2, 2), item(1, 2, 3), item(2, 2, 9)];
        assert_eq!(
            edf_feasibility(&items),
            Feasibility::Infeasible {
                item: 1,
                completes_at: 4,
                deadline: 3
            }
        );
    }

    #[test]
    fn edf_succeeds_where_reverse_order_would_fail() {
        // Served late-deadline-first this set would miss; EDF meets it.
        let items = vec![item(0, 3, 10), item(1, 1, 1)];
        assert!(edf_feasibility(&items).is_feasible());
    }
}
