//! The dynamic program of §3.3.2.
//!
//! `B[S, m]` is the maximum total profit (total `ΔR`) achievable by a
//! subset of the first `m` intermediate processing results (in
//! deadline order) within cache capacity `S`:
//!
//! ```text
//! B[S, m] = 0                                  if m = 0 or S = 0
//! B[S, 1] = 0                                  if sp_1 > S
//! B[S, 1] = ΔR(1)                              if sp_1 ≤ S
//! B[S, m] = max(B[S, m-1],
//!               B[S - sp_m, m-1] + ΔR(m))      if m > 1
//! ```
//!
//! Each entry takes `O(1)`, so filling the table is `O(n · S)` — the
//! paper's `O(n · d_n)` with its capacity expressed in deadline slots.
//!
//! The fill keeps only a **rolling row pair** of values (`O(S)` live
//! memory instead of the full `O(n · S)` matrix) plus one *decision
//! bit* per cell: bit `(m, s)` records whether item `m` improved the
//! optimum at capacity `s`, i.e. `B[s, m] > B[s, m-1]`. That bit is
//! exactly the predicate backtracking tests, so reconstruction — and
//! even recomputing any interior entry `B[s, m]` — works from the
//! bitset alone at 1/64th the memory of the old value matrix.

use crate::{AllocItem, IncrementalDp};

/// The filled `B[S, m]` recurrence with backtracking support.
///
/// Only the final value row `B[·, n]` is materialized; interior rows
/// are represented by the per-item decision bitset (see the module
/// docs). Rows are item counts `0..=n`, columns capacities `0..=S`.
///
/// # Examples
///
/// ```
/// use paraconv_alloc::{AllocItem, DpTable};
/// use paraconv_graph::EdgeId;
///
/// let items = vec![
///     AllocItem::new(EdgeId::new(0), 2, 3, 1),
///     AllocItem::new(EdgeId::new(1), 2, 2, 2),
///     AllocItem::new(EdgeId::new(2), 1, 2, 3),
/// ];
/// let table = DpTable::fill(&items, 3);
/// assert_eq!(table.max_profit(), 5); // items 0 and 2
/// let chosen = table.reconstruct();
/// assert_eq!(chosen, vec![true, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpTable {
    /// The final value row `B[s, n]`, `s ∈ 0..=capacity`.
    final_row: Vec<u64>,
    /// Decision bits, row-major: bit `s` of row `m` (at word
    /// `m * words_per_row + s / 64`) is set iff `B[s, m+1] > B[s, m]`,
    /// i.e. iff backtracking takes item `m` at residual capacity `s`.
    decisions: Vec<u64>,
    words_per_row: usize,
    capacity: u64,
    items: Vec<AllocItem>,
}

impl DpTable {
    /// Fills the table for items *already in deadline order* (use
    /// [`sort_by_deadline`](crate::sort_by_deadline) first) and a cache
    /// capacity `S`.
    #[must_use]
    pub fn fill(items: &[AllocItem], capacity: u64) -> Self {
        let _span = paraconv_obs::span("alloc.dp.fill", "alloc");
        let n = items.len();
        let cols = capacity as usize + 1;
        paraconv_obs::counter_add("dp.fills", 1);
        paraconv_obs::counter_add("dp.cells_filled", (n as u64) * cols as u64);
        paraconv_obs::observe("dp.items_per_fill", n as u64);
        let words_per_row = cols.div_ceil(64);
        let mut decisions = vec![0u64; n * words_per_row];
        // One arena, two logical rows, swapped each item: the previous
        // row is read linearly while the current row is written
        // linearly, so the fill stays cache-resident for any `n`.
        let mut arena = vec![0u64; 2 * cols];
        let (mut prev, mut curr) = arena.split_at_mut(cols);
        for (m, item) in items.iter().enumerate() {
            // Cooperative cancellation inside the hottest planning
            // loop: when the ambient token fires (serve deadline or
            // drain) the fill stops early. The truncated table is
            // garbage, but the token stays cancelled, so the scheduler
            // discards it at the next phase boundary before anything
            // can read it.
            if m % 64 == 0 && paraconv_obs::cancel_requested() {
                break;
            }
            // lint: allow(unchecked-index) — row index bounded by n, the decisions length divisor
            let row_bits = &mut decisions[m * words_per_row..(m + 1) * words_per_row];
            if item.space() >= cols as u64 {
                // The item never fits: the row is a verbatim copy and
                // every decision bit stays clear.
                curr.copy_from_slice(prev);
            } else {
                let sp = item.space() as usize;
                let dr = item.delta_r();
                // Below `sp` the item cannot be taken, so B is carried.
                // lint: allow(unchecked-index) — sp < cols, the width of both rows
                curr[..sp].copy_from_slice(&prev[..sp]);
                for s in sp..cols {
                    // lint: allow(unchecked-index) — s ranges over the row width both slices share
                    let without = prev[s];
                    // lint: allow(unchecked-index) — s ≥ sp here, so s - sp is in range
                    let with = prev[s - sp] + dr;
                    if with > without {
                        // lint: allow(unchecked-index) — s and s/64 are bounded by the row widths
                        curr[s] = with;
                        // lint: allow(unchecked-index) — s/64 < words_per_row by construction
                        row_bits[s >> 6] |= 1u64 << (s & 63);
                    } else {
                        // lint: allow(unchecked-index) — s ranges over the row width both slices share
                        curr[s] = without;
                    }
                }
            }
            core::mem::swap(&mut prev, &mut curr);
        }
        DpTable {
            final_row: prev.to_vec(),
            decisions,
            words_per_row,
            capacity,
            items: items.to_vec(),
        }
    }

    /// Whether backtracking takes item `m` (0-based) at residual
    /// capacity `s` — the decision bit `B[s, m+1] > B[s, m]`.
    fn takes(&self, m: usize, s: usize) -> bool {
        // lint: allow(unchecked-index) — callers bound m by n and s by the filled capacity
        (self.decisions[m * self.words_per_row + (s >> 6)] >> (s & 63)) & 1 == 1
    }

    /// The table entry `B[S, m]`.
    ///
    /// Interior rows are no longer materialized; the entry is rebuilt
    /// in `O(m)` by backtracking the decision bitset from `(s, m)` and
    /// summing the taken items' `ΔR` — by induction on the recurrence
    /// this equals the discarded `B[s, m]` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `m > n` or `s > S`.
    #[must_use]
    pub fn entry(&self, s: u64, m: usize) -> u64 {
        assert!(m <= self.items.len(), "m out of range");
        assert!(s <= self.capacity, "capacity out of range");
        let mut residual = s as usize;
        let mut profit = 0u64;
        for row in (0..m).rev() {
            if self.takes(row, residual) {
                // lint: allow(unchecked-index) — row < m ≤ n is asserted above
                let item = &self.items[row];
                profit += item.delta_r();
                // A set bit implies the item fit, so sp ≤ residual.
                residual -= item.space() as usize;
            }
        }
        profit
    }

    /// The optimal total profit `B[S, n]`.
    #[must_use]
    pub fn max_profit(&self) -> u64 {
        // lint: allow(unchecked-index) — the final row has capacity + 1 entries
        self.final_row[self.capacity as usize]
    }

    /// The capacity the table was filled for.
    #[must_use]
    pub const fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The optimal total profit at a *smaller* capacity: `B[s, n]`.
    ///
    /// A table filled at capacity `S` answers the whole capacity sweep
    /// `0..=S` for free — the column `B[s, ·]` is exactly the table the
    /// dynamic program would have produced at capacity `s`. See
    /// [`DpTable::fill_sweep`] for the batch form.
    ///
    /// # Panics
    ///
    /// Panics if `s` exceeds the filled capacity.
    #[must_use]
    pub fn max_profit_at(&self, s: u64) -> u64 {
        assert!(s <= self.capacity, "capacity out of range");
        // lint: allow(unchecked-index) — s ≤ capacity is asserted above
        self.final_row[s as usize]
    }

    /// Fills **one** incremental session at the largest requested
    /// capacity and reads every sweep point from it as a shared-suffix
    /// re-solve, returning the optimal profit for each capacity in
    /// `capacities` (input order preserved).
    ///
    /// This replaces the `O(n · S)`-per-point refill a naive capacity
    /// sweep performs with one `O(n · max S)` fill plus `O(1)` reads —
    /// every per-point [`IncrementalDp::resolve`] reuses all `n` rows
    /// of the primed session (the column-prefix property).
    ///
    /// # Examples
    ///
    /// ```
    /// use paraconv_alloc::{max_profit_compact, AllocItem, DpTable};
    /// use paraconv_graph::EdgeId;
    ///
    /// let items = vec![
    ///     AllocItem::new(EdgeId::new(0), 2, 3, 1),
    ///     AllocItem::new(EdgeId::new(1), 2, 2, 2),
    ///     AllocItem::new(EdgeId::new(2), 1, 2, 3),
    /// ];
    /// let sweep = DpTable::fill_sweep(&items, &[0, 3, 5]);
    /// assert_eq!(sweep, vec![0, 5, 7]);
    /// assert_eq!(sweep[1], max_profit_compact(&items, 3));
    /// ```
    #[must_use]
    pub fn fill_sweep(items: &[AllocItem], capacities: &[u64]) -> Vec<u64> {
        if capacities.is_empty() {
            return Vec::new();
        }
        let max_capacity = capacities.iter().copied().max().unwrap_or(0);
        let mut session = IncrementalDp::new();
        session.resolve(items, max_capacity);
        capacities
            .iter()
            .map(|&s| {
                session.resolve(items, s);
                session.max_profit()
            })
            .collect()
    }

    /// Backtracks an optimal subset: `result[m]` is `true` iff the
    /// `m`-th item (deadline order) is allocated to cache.
    #[must_use]
    pub fn reconstruct(&self) -> Vec<bool> {
        self.reconstruct_at(self.capacity)
    }

    /// Backtracks an optimal subset at a *smaller* capacity, for
    /// reading several sweep points out of one filled table.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds the filled capacity.
    #[must_use]
    pub fn reconstruct_at(&self, capacity: u64) -> Vec<bool> {
        paraconv_obs::counter_add("dp.reconstructs", 1);
        assert!(capacity <= self.capacity, "capacity out of range");
        let n = self.items.len();
        let mut chosen = vec![false; n];
        let mut s = capacity as usize;
        for m in (0..n).rev() {
            // The item was taken iff skipping it loses profit at the
            // current residual capacity — the stored decision bit.
            if self.takes(m, s) {
                // lint: allow(unchecked-index) — m < n bounds both accesses
                chosen[m] = true;
                // lint: allow(unchecked-index) — m < n bounds both accesses
                s -= self.items[m].space() as usize;
            }
        }
        chosen
    }
}

/// Space-optimized variant of the dynamic program: computes `B[S, n]`
/// with two rows (`O(S)` memory instead of `O(n·S)`), for use on very
/// large instances where only the optimal *value* is needed (the full
/// [`DpTable`] is required for reconstruction).
///
/// # Examples
///
/// ```
/// use paraconv_alloc::{max_profit_compact, AllocItem, DpTable};
/// use paraconv_graph::EdgeId;
///
/// let items: Vec<AllocItem> = (0..20)
///     .map(|i| AllocItem::new(EdgeId::new(i), 1 + u64::from(i % 3), u64::from(i % 4), u64::from(i)))
///     .collect();
/// assert_eq!(max_profit_compact(&items, 12), DpTable::fill(&items, 12).max_profit());
/// ```
#[must_use]
pub fn max_profit_compact(items: &[AllocItem], capacity: u64) -> u64 {
    let cols = capacity as usize + 1;
    paraconv_obs::counter_add("dp.compact_fills", 1);
    paraconv_obs::counter_add("dp.cells_filled", items.len() as u64 * cols as u64);
    let mut row = vec![0u64; cols];
    for item in items {
        let sp = item.space() as usize;
        // 0/1 knapsack over one row: iterate capacity downward so each
        // item is used at most once.
        if sp <= capacity as usize {
            for s in (sp..cols).rev() {
                // lint: allow(unchecked-index) — indices are bounded by the table dimensions fixed in fill()
                row[s] = row[s].max(row[s - sp] + item.delta_r());
            }
        }
    }
    // lint: allow(unchecked-index) — indices are bounded by the table dimensions fixed in fill()
    row[capacity as usize]
}

/// Exhaustive optimum for cross-checking the DP, `O(2^n)` — only for
/// small `n` in tests and verification harnesses.
///
/// # Panics
///
/// Panics if `items.len() > 24` to keep runtime bounded.
#[must_use]
pub fn brute_force_max_profit(items: &[AllocItem], capacity: u64) -> u64 {
    assert!(items.len() <= 24, "brute force limited to 24 items");
    let mut best = 0u64;
    for mask in 0u32..(1u32 << items.len()) {
        let mut space = 0u64;
        let mut profit = 0u64;
        for (i, item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                space += item.space();
                profit += item.delta_r();
            }
        }
        if space <= capacity {
            best = best.max(profit);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::EdgeId;

    fn item(id: u32, space: u64, profit: u64) -> AllocItem {
        AllocItem::new(EdgeId::new(id), space, profit, id as u64)
    }

    #[test]
    fn base_cases_match_recurrence() {
        let items = vec![item(0, 3, 5)];
        let table = DpTable::fill(&items, 4);
        // m = 0 or S = 0 → 0.
        assert_eq!(table.entry(4, 0), 0);
        assert_eq!(table.entry(0, 1), 0);
        // m = 1, sp_1 ≤ S → ΔR(1).
        assert_eq!(table.entry(3, 1), 5);
        assert_eq!(table.entry(4, 1), 5);
        // m = 1, sp_1 > S → 0.
        assert_eq!(table.entry(2, 1), 0);
    }

    #[test]
    fn entry_matches_a_full_reference_table() {
        // The O(m) bitset backtrack must rebuild every interior entry
        // the old dense matrix materialized.
        let items = vec![
            item(0, 3, 2),
            item(1, 2, 2),
            item(2, 4, 10),
            item(3, 1, 1),
            item(4, 5, 3),
        ];
        let capacity = 9u64;
        let table = DpTable::fill(&items, capacity);
        let n = items.len();
        let cols = capacity as usize + 1;
        let mut reference = vec![0u64; (n + 1) * cols];
        for (m, it) in items.iter().enumerate() {
            for s in 0..cols {
                let without = reference[m * cols + s];
                let with = if it.space() <= s as u64 {
                    reference[m * cols + s - it.space() as usize] + it.delta_r()
                } else {
                    0
                };
                reference[(m + 1) * cols + s] = without.max(with);
            }
        }
        for m in 0..=n {
            for s in 0..cols {
                assert_eq!(
                    table.entry(s as u64, m),
                    reference[m * cols + s],
                    "B[{s}, {m}]"
                );
            }
        }
    }

    #[test]
    fn classic_knapsack_instance() {
        let items = vec![item(0, 1, 1), item(1, 3, 4), item(2, 4, 5), item(3, 5, 7)];
        let table = DpTable::fill(&items, 7);
        assert_eq!(table.max_profit(), 9); // items 1 and 2
        let chosen = table.reconstruct();
        let total_space: u64 = items
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(i, _)| i.space())
            .sum();
        let total_profit: u64 = items
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(i, _)| i.delta_r())
            .sum();
        assert!(total_space <= 7);
        assert_eq!(total_profit, 9);
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let items = vec![item(0, 1, 10), item(1, 1, 10)];
        let table = DpTable::fill(&items, 0);
        assert_eq!(table.max_profit(), 0);
        assert_eq!(table.reconstruct(), vec![false, false]);
    }

    #[test]
    fn empty_items_profit_zero() {
        let table = DpTable::fill(&[], 10);
        assert_eq!(table.max_profit(), 0);
        assert!(table.reconstruct().is_empty());
    }

    #[test]
    fn all_fit_when_capacity_ample() {
        let items = vec![item(0, 1, 1), item(1, 2, 2), item(2, 3, 3)];
        let table = DpTable::fill(&items, 100);
        assert_eq!(table.max_profit(), 6);
        assert_eq!(table.reconstruct(), vec![true, true, true]);
    }

    #[test]
    fn matches_brute_force_on_fixed_instances() {
        let instances: Vec<(Vec<AllocItem>, u64)> = vec![
            (
                vec![item(0, 2, 3), item(1, 3, 4), item(2, 4, 5), item(3, 5, 6)],
                5,
            ),
            (vec![item(0, 1, 2), item(1, 1, 2), item(2, 1, 2)], 2),
            (vec![item(0, 10, 100)], 9),
            (
                vec![item(0, 6, 1), item(1, 6, 1), item(2, 6, 1), item(3, 5, 10)],
                11,
            ),
        ];
        for (items, cap) in instances {
            assert_eq!(
                DpTable::fill(&items, cap).max_profit(),
                brute_force_max_profit(&items, cap),
            );
        }
    }

    #[test]
    fn reconstruction_profit_equals_table_profit() {
        let items = vec![
            item(0, 3, 2),
            item(1, 2, 2),
            item(2, 4, 10),
            item(3, 1, 1),
            item(4, 5, 3),
        ];
        let table = DpTable::fill(&items, 8);
        let chosen = table.reconstruct();
        let profit: u64 = items
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(i, _)| i.delta_r())
            .sum();
        assert_eq!(profit, table.max_profit());
    }

    #[test]
    fn fill_sweep_matches_per_capacity_fills() {
        let items = vec![
            item(0, 3, 2),
            item(1, 2, 2),
            item(2, 4, 10),
            item(3, 1, 1),
            item(4, 5, 3),
        ];
        let capacities = [7, 0, 3, 12, 5, 12];
        let sweep = DpTable::fill_sweep(&items, &capacities);
        for (&cap, &profit) in capacities.iter().zip(&sweep) {
            assert_eq!(profit, DpTable::fill(&items, cap).max_profit(), "S={cap}");
            assert_eq!(profit, max_profit_compact(&items, cap), "S={cap}");
        }
    }

    #[test]
    fn fill_sweep_of_empty_inputs() {
        assert!(DpTable::fill_sweep(&[item(0, 1, 1)], &[]).is_empty());
        assert_eq!(DpTable::fill_sweep(&[], &[0, 5]), vec![0, 0]);
    }

    #[test]
    fn reconstruct_at_is_feasible_and_optimal_per_capacity() {
        let items = vec![item(0, 1, 1), item(1, 3, 4), item(2, 4, 5), item(3, 5, 7)];
        let table = DpTable::fill(&items, 9);
        for cap in 0..=9 {
            let chosen = table.reconstruct_at(cap);
            let space: u64 = items
                .iter()
                .zip(&chosen)
                .filter(|(_, &c)| c)
                .map(|(i, _)| i.space())
                .sum();
            let profit: u64 = items
                .iter()
                .zip(&chosen)
                .filter(|(_, &c)| c)
                .map(|(i, _)| i.delta_r())
                .sum();
            assert!(space <= cap);
            assert_eq!(profit, table.max_profit_at(cap));
        }
    }

    #[test]
    #[should_panic(expected = "capacity out of range")]
    fn entry_capacity_bound() {
        let table = DpTable::fill(&[item(0, 1, 1)], 2);
        let _ = table.entry(3, 1);
    }

    #[test]
    #[should_panic(expected = "m out of range")]
    fn entry_item_bound() {
        let table = DpTable::fill(&[item(0, 1, 1)], 2);
        let _ = table.entry(0, 2);
    }
}
