//! Optimal data allocation for convolutional connections (§3.3).
//!
//! Minimizing the prologue time of a retimed CNN is equivalent to
//! maximizing the total reduction `Σ ΔR(m)` of retiming values bought
//! by placing intermediate processing results in the scarce on-chip
//! cache. The problem has optimal substructure, and the paper solves it
//! with a dynamic program over items sorted by deadline.
//!
//! This crate provides:
//!
//! * [`AllocItem`] — one IPR candidate with space `sp_m`, profit
//!   `ΔR(m)` and deadline `d_m`;
//! * [`sort_by_deadline`] — the `O(n log n)` precomputation of §3.3.1;
//! * [`DpTable`] — the `B[S, m]` recurrence of §3.3.2 filled in
//!   `O(n · S)` with a rolling row pair plus a decision bitset for
//!   backtracking (`O(S)` value memory);
//! * [`IncrementalDp`] — a reusable session that re-solves perturbed
//!   instances (capacity sweeps, degraded replans) by refilling only
//!   the affected suffix rows, byte-identical to a cold fill;
//! * [`CacheAllocator`] / [`CacheAllocation`] — the full §3.3.3
//!   construction (zero-`ΔR` pre-routing + DP + reconstruction);
//! * [`brute_force_max_profit`] — an exhaustive cross-check used by the
//!   test suite to confirm optimality.
//!
//! # Examples
//!
//! ```
//! use paraconv_alloc::{AllocItem, CacheAllocator};
//! use paraconv_graph::EdgeId;
//!
//! // Three competing IPRs, cache capacity 2.
//! let items = vec![
//!     AllocItem::new(EdgeId::new(0), 1, 2, 4),
//!     AllocItem::new(EdgeId::new(1), 1, 1, 5),
//!     AllocItem::new(EdgeId::new(2), 1, 2, 6),
//! ];
//! let allocation = CacheAllocator::new(2).allocate(items);
//! assert_eq!(allocation.total_profit(), 4);
//! assert_eq!(allocation.cached_count(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod allocator;
mod dp;
mod feasibility;
mod incremental;
mod item;

pub use allocator::{CacheAllocation, CacheAllocator};
pub use dp::{brute_force_max_profit, max_profit_compact, DpTable};
pub use feasibility::{edf_feasibility, Feasibility};
pub use incremental::IncrementalDp;
pub use item::{sort_by_deadline, AllocItem};
