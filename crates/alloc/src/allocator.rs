//! Constructing the optimal allocation (§3.3.3).
//!
//! Given the allocation items of a task graph, the allocator:
//!
//! 1. routes zero-`ΔR` items (cases 1, 4 and 6 of Figure 4) to eDRAM —
//!    their placement "will not influence the prologue time", so they
//!    never occupy "the valuable space in on-chip cache";
//! 2. sorts the remaining items by deadline (§3.3.1);
//! 3. runs the dynamic program of §3.3.2 and reconstructs an optimal
//!    subset for the on-chip cache.

use std::collections::HashMap;

use paraconv_graph::{EdgeId, Placement};

use crate::{sort_by_deadline, AllocItem, DpTable, IncrementalDp};

/// The result of cache allocation: a placement per intermediate
/// processing result plus the achieved statistics.
///
/// # Examples
///
/// ```
/// use paraconv_alloc::{AllocItem, CacheAllocator};
/// use paraconv_graph::{EdgeId, Placement};
///
/// let items = vec![
///     AllocItem::new(EdgeId::new(0), 1, 0, 1), // ΔR = 0 → eDRAM
///     AllocItem::new(EdgeId::new(1), 1, 2, 2),
///     AllocItem::new(EdgeId::new(2), 1, 1, 3),
/// ];
/// let allocation = CacheAllocator::new(1).allocate(items);
/// assert_eq!(allocation.placement(EdgeId::new(0)), Some(Placement::Edram));
/// assert_eq!(allocation.placement(EdgeId::new(1)), Some(Placement::Cache));
/// assert_eq!(allocation.placement(EdgeId::new(2)), Some(Placement::Edram));
/// assert_eq!(allocation.total_profit(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheAllocation {
    placements: HashMap<EdgeId, Placement>,
    cached: Vec<EdgeId>,
    total_profit: u64,
    used_capacity: u64,
    capacity: u64,
}

impl CacheAllocation {
    /// The placement decided for an IPR, or `None` for an edge that was
    /// not among the items.
    #[must_use]
    pub fn placement(&self, edge: EdgeId) -> Option<Placement> {
        self.placements.get(&edge).copied()
    }

    /// The IPRs allocated to the on-chip cache, in deadline order.
    #[must_use]
    pub fn cached(&self) -> &[EdgeId] {
        &self.cached
    }

    /// Number of IPRs allocated to the on-chip cache — the metric of
    /// the paper's Figure 6.
    #[must_use]
    pub fn cached_count(&self) -> usize {
        self.cached.len()
    }

    /// Total `ΔR` bought by the allocation (the DP objective value).
    #[must_use]
    pub const fn total_profit(&self) -> u64 {
        self.total_profit
    }

    /// Cache capacity units consumed.
    #[must_use]
    pub const fn used_capacity(&self) -> u64 {
        self.used_capacity
    }

    /// The capacity the allocator ran with.
    #[must_use]
    pub const fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Materializes a dense placement vector for a graph with
    /// `edge_count` edges; edges not covered by any item default to
    /// eDRAM (the conservative placement).
    #[must_use]
    pub fn to_placement_vec(&self, edge_count: usize) -> Vec<Placement> {
        let mut v = vec![Placement::Edram; edge_count];
        // lint: allow(nondet-iteration) — each pair writes its own dense slot; the result is order-insensitive
        for (&edge, &placement) in &self.placements {
            if edge.index() < edge_count {
                // lint: allow(unchecked-index) — indices are bounded by the table dimensions fixed in fill()
                v[edge.index()] = placement;
            }
        }
        v
    }

    /// Iterates over every decided `(edge, placement)` pair, in the
    /// map's internal (unspecified) order — serializers should sort.
    pub fn placements(&self) -> impl Iterator<Item = (EdgeId, Placement)> + '_ {
        // lint: allow(nondet-iteration) — unspecified order is this API's documented contract; callers sort
        self.placements.iter().map(|(&e, &p)| (e, p))
    }

    /// Rebuilds an allocation from its recorded parts, as stored in a
    /// plan artifact.
    ///
    /// No optimality or capacity feasibility is implied: importers
    /// must re-check through the verifier gate (the DP-invariant and
    /// occupancy rules do) before trusting the result.
    #[must_use]
    pub fn from_parts(
        placements: Vec<(EdgeId, Placement)>,
        cached: Vec<EdgeId>,
        total_profit: u64,
        used_capacity: u64,
        capacity: u64,
    ) -> Self {
        CacheAllocation {
            // lint: allow(nondet-iteration) — `placements` here is the Vec parameter, not the hash field; the rule matches by name
            placements: placements.into_iter().collect(),
            cached,
            total_profit,
            used_capacity,
            capacity,
        }
    }
}

/// The §3.3 allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAllocator {
    capacity: u64,
}

impl CacheAllocator {
    /// Creates an allocator for an aggregate on-chip cache of
    /// `capacity` units.
    #[must_use]
    pub const fn new(capacity: u64) -> Self {
        CacheAllocator { capacity }
    }

    /// Decides a placement for every item.
    #[must_use]
    pub fn allocate(&self, items: Vec<AllocItem>) -> CacheAllocation {
        let (placements, competing) = Self::partition(items);
        // Step 3: dynamic program + reconstruction.
        let table = DpTable::fill(&competing, self.capacity);
        let chosen = table.reconstruct();
        self.assemble(placements, &competing, &chosen, table.max_profit())
    }

    /// Re-decides placements through a reusable [`IncrementalDp`]
    /// session, for replan loops and capacity sweeps that solve long
    /// runs of nearly identical instances.
    ///
    /// The result is **byte-identical** to [`allocate`] on the same
    /// items and capacity — the session reuses every dynamic-program
    /// row the perturbation did not touch (shared item prefixes,
    /// capacity moves within the stored width) instead of refilling
    /// the whole recurrence, but it never changes the optimum or the
    /// reconstructed subset. Degraded replans therefore produce
    /// exactly the plan a cold solve on the surviving configuration
    /// would, at a fraction of the fill cost.
    ///
    /// [`allocate`]: CacheAllocator::allocate
    #[must_use]
    pub fn reallocate(
        &self,
        session: &mut IncrementalDp,
        items: Vec<AllocItem>,
    ) -> CacheAllocation {
        let (placements, competing) = Self::partition(items);
        session.resolve(&competing, self.capacity);
        let chosen = session.reconstruct();
        self.assemble(placements, &competing, &chosen, session.max_profit())
    }

    /// Step 1 (zero-`ΔR` pre-routing) and step 2 (deadline order):
    /// routes free items to eDRAM and returns the sorted competitors.
    fn partition(items: Vec<AllocItem>) -> (HashMap<EdgeId, Placement>, Vec<AllocItem>) {
        let mut placements = HashMap::with_capacity(items.len());
        // Step 1: zero-ΔR items go to eDRAM for free.
        let mut competing = Vec::new();
        for item in items {
            if item.delta_r() == 0 {
                placements.insert(item.edge(), Placement::Edram);
            } else {
                competing.push(item);
            }
        }
        // Step 2: deadline order.
        (placements, sort_by_deadline(competing))
    }

    /// Materializes the allocation from a reconstructed subset.
    fn assemble(
        &self,
        mut placements: HashMap<EdgeId, Placement>,
        competing: &[AllocItem],
        chosen: &[bool],
        total_profit: u64,
    ) -> CacheAllocation {
        let mut cached = Vec::new();
        let mut used = 0u64;
        for (item, take) in competing.iter().zip(chosen) {
            if *take {
                placements.insert(item.edge(), Placement::Cache);
                cached.push(item.edge());
                used += item.space();
            } else {
                placements.insert(item.edge(), Placement::Edram);
            }
        }
        CacheAllocation {
            placements,
            cached,
            total_profit,
            used_capacity: used,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u32, space: u64, profit: u64, deadline: u64) -> AllocItem {
        AllocItem::new(EdgeId::new(id), space, profit, deadline)
    }

    #[test]
    fn zero_delta_items_never_cached() {
        let allocation = CacheAllocator::new(100).allocate(vec![
            item(0, 1, 0, 1),
            item(1, 1, 0, 2),
            item(2, 1, 1, 3),
        ]);
        assert_eq!(allocation.placement(EdgeId::new(0)), Some(Placement::Edram));
        assert_eq!(allocation.placement(EdgeId::new(1)), Some(Placement::Edram));
        assert_eq!(allocation.placement(EdgeId::new(2)), Some(Placement::Cache));
        assert_eq!(allocation.cached_count(), 1);
    }

    #[test]
    fn respects_capacity() {
        let allocation = CacheAllocator::new(3).allocate(vec![
            item(0, 2, 5, 1),
            item(1, 2, 4, 2),
            item(2, 1, 3, 3),
        ]);
        assert!(allocation.used_capacity() <= 3);
        assert_eq!(allocation.total_profit(), 8); // items 0 and 2
        assert_eq!(allocation.cached(), &[EdgeId::new(0), EdgeId::new(2)]);
    }

    #[test]
    fn cached_listed_in_deadline_order() {
        let allocation = CacheAllocator::new(10).allocate(vec![
            item(5, 1, 1, 30),
            item(2, 1, 1, 10),
            item(9, 1, 1, 20),
        ]);
        assert_eq!(
            allocation.cached(),
            &[EdgeId::new(2), EdgeId::new(9), EdgeId::new(5)]
        );
    }

    #[test]
    fn zero_capacity_puts_everything_in_edram() {
        let allocation = CacheAllocator::new(0).allocate(vec![item(0, 1, 9, 1), item(1, 1, 9, 2)]);
        assert_eq!(allocation.cached_count(), 0);
        assert_eq!(allocation.total_profit(), 0);
        assert_eq!(allocation.placement(EdgeId::new(0)), Some(Placement::Edram));
    }

    #[test]
    fn placement_vec_defaults_to_edram() {
        let allocation = CacheAllocator::new(5).allocate(vec![item(1, 1, 1, 1)]);
        let v = allocation.to_placement_vec(3);
        assert_eq!(v[0], Placement::Edram); // not an item
        assert_eq!(v[1], Placement::Cache);
        assert_eq!(v[2], Placement::Edram); // not an item
    }

    #[test]
    fn reallocate_matches_allocate_on_an_unchanged_problem() {
        let items = vec![item(0, 2, 5, 1), item(1, 2, 4, 2), item(2, 1, 3, 3)];
        let cold = CacheAllocator::new(3).allocate(items.clone());
        assert_eq!(cold.cached(), &[EdgeId::new(0), EdgeId::new(2)]);
        let mut session = crate::IncrementalDp::new();
        let first = CacheAllocator::new(3).reallocate(&mut session, items.clone());
        assert_eq!(first, cold, "a cold session is a cold solve");
        // Re-solving the identical instance reuses every row and still
        // reproduces the allocation exactly.
        let again = CacheAllocator::new(3).reallocate(&mut session, items);
        assert_eq!(again, cold);
    }

    #[test]
    fn reallocate_is_exact_when_capacity_shrinks() {
        let items = vec![item(0, 2, 5, 1), item(1, 2, 4, 2), item(2, 1, 3, 3)];
        let mut session = crate::IncrementalDp::new();
        let healthy = CacheAllocator::new(3).reallocate(&mut session, items.clone());
        assert_eq!(healthy.cached(), &[EdgeId::new(0), EdgeId::new(2)]);
        // Capacity 3 → 1: a pure capacity move within the stored rows;
        // the optimum drops to the best single-unit item, exactly as a
        // cold solve at the reduced capacity decides.
        let shrunk = CacheAllocator::new(1).reallocate(&mut session, items.clone());
        assert_eq!(shrunk, CacheAllocator::new(1).allocate(items));
        assert_eq!(shrunk.cached(), &[EdgeId::new(2)]);
        assert_eq!(shrunk.total_profit(), 3);
    }

    #[test]
    fn reallocate_is_exact_when_every_edge_changes() {
        let mut session = crate::IncrementalDp::new();
        let prior = CacheAllocator::new(4).reallocate(&mut session, vec![item(7, 1, 9, 1)]);
        assert_eq!(prior.cached(), &[EdgeId::new(7)]);
        // Edge 7 is gone from the new items: every row refills.
        let fresh = CacheAllocator::new(4).reallocate(&mut session, vec![item(0, 1, 2, 1)]);
        assert_eq!(fresh.cached(), &[EdgeId::new(0)]);
        assert_eq!(fresh.total_profit(), 2);
    }

    #[test]
    fn reallocate_never_caches_zero_profit_items() {
        // An edge the prior solve cached can drop to ΔR = 0 under new
        // timing (e.g. a longer kernel period absorbs the transfer);
        // it is pre-routed to eDRAM and the suffix rows refill.
        let mut session = crate::IncrementalDp::new();
        let allocator = CacheAllocator::new(4);
        let prior = allocator.reallocate(&mut session, vec![item(0, 1, 5, 1), item(1, 1, 2, 2)]);
        assert_eq!(prior.cached(), &[EdgeId::new(0), EdgeId::new(1)]);
        let fresh = allocator.reallocate(&mut session, vec![item(0, 1, 0, 1), item(1, 1, 2, 2)]);
        assert_eq!(fresh.placement(EdgeId::new(0)), Some(Placement::Edram));
        assert_eq!(fresh.cached(), &[EdgeId::new(1)]);
    }

    #[test]
    fn empty_input_is_fine() {
        let allocation = CacheAllocator::new(5).allocate(Vec::new());
        assert_eq!(allocation.cached_count(), 0);
        assert_eq!(allocation.total_profit(), 0);
        assert_eq!(allocation.used_capacity(), 0);
        assert!(allocation
            .to_placement_vec(2)
            .iter()
            .all(|&p| p == Placement::Edram));
    }
}
