//! Allocation items: one per intermediate processing result competing
//! for cache capacity.

use core::fmt;

use paraconv_graph::EdgeId;

/// One candidate for on-chip cache allocation.
///
/// * `space` — the cache capacity the IPR occupies if allocated on
///   chip (`sp_m` in §3.3.2). Callers typically scale the raw IPR size
///   by the number of kernel instances the data stays resident
///   (`k_cache + 1`), so capacity accounting stays sound in steady
///   state.
/// * `delta_r` — the reduction in retiming value `ΔR(m)` the cache
///   placement buys (the knapsack profit).
/// * `deadline` — the IPR's deadline `d_{i,j}` in the objective
///   schedule; the DP considers items in increasing deadline order
///   (§3.3.1).
///
/// # Examples
///
/// ```
/// use paraconv_alloc::AllocItem;
/// use paraconv_graph::EdgeId;
///
/// let item = AllocItem::new(EdgeId::new(0), 2, 1, 7);
/// assert_eq!(item.space(), 2);
/// assert_eq!(item.delta_r(), 1);
/// assert_eq!(item.deadline(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AllocItem {
    edge: EdgeId,
    space: u64,
    delta_r: u64,
    deadline: u64,
}

impl AllocItem {
    /// Creates an allocation item.
    #[must_use]
    pub const fn new(edge: EdgeId, space: u64, delta_r: u64, deadline: u64) -> Self {
        AllocItem {
            edge,
            space,
            delta_r,
            deadline,
        }
    }

    /// The intermediate processing result this item stands for.
    #[must_use]
    pub const fn edge(self) -> EdgeId {
        self.edge
    }

    /// Cache space requirement `sp_m` in capacity units.
    #[must_use]
    pub const fn space(self) -> u64 {
        self.space
    }

    /// Retiming reduction `ΔR(m)` bought by caching this IPR.
    #[must_use]
    pub const fn delta_r(self) -> u64 {
        self.delta_r
    }

    /// Deadline `d_{i,j}` used for the §3.3.1 ordering.
    #[must_use]
    pub const fn deadline(self) -> u64 {
        self.deadline
    }
}

impl fmt::Display for AllocItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (sp={}, ΔR={}, d={})",
            self.edge, self.space, self.delta_r, self.deadline
        )
    }
}

/// Sorts items by increasing deadline (ties broken by edge ID for
/// determinism), the precomputation of §3.3.1 — `O(n log n)`.
#[must_use]
pub fn sort_by_deadline(mut items: Vec<AllocItem>) -> Vec<AllocItem> {
    items.sort_by_key(|item| (item.deadline(), item.edge()));
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_sort_is_stable_and_deterministic() {
        let items = vec![
            AllocItem::new(EdgeId::new(2), 1, 1, 9),
            AllocItem::new(EdgeId::new(0), 1, 1, 3),
            AllocItem::new(EdgeId::new(3), 1, 1, 3),
            AllocItem::new(EdgeId::new(1), 1, 1, 1),
        ];
        let sorted = sort_by_deadline(items);
        let ids: Vec<u32> = sorted.iter().map(|i| i.edge().index() as u32).collect();
        assert_eq!(ids, vec![1, 0, 3, 2]);
    }

    #[test]
    fn accessors() {
        let item = AllocItem::new(EdgeId::new(5), 3, 2, 11);
        assert_eq!(item.edge(), EdgeId::new(5));
        assert_eq!(item.space(), 3);
        assert_eq!(item.delta_r(), 2);
        assert_eq!(item.deadline(), 11);
        assert!(item.to_string().contains("I5"));
    }
}
