//! Incremental re-solve sessions over the §3.3.2 dynamic program.
//!
//! Capacity sweeps and degraded-mode replans solve long runs of
//! *nearly identical* knapsack instances: one item's `sp`/`ΔR`
//! changes, an item appears or vanishes, or only the capacity bound
//! moves. Refilling the whole `B[S, m]` recurrence for every such
//! perturbation — what [`CacheAllocator::allocate`] does — wastes the
//! work of every row the perturbation did not touch.
//!
//! [`IncrementalDp`] is a reusable session that keeps all value rows
//! and decision bits of its last solve and exploits two structural
//! facts of the recurrence:
//!
//! * **row suffixes** — row `m` depends only on value row `m` and item
//!   `m`, so shared-prefix rows are reused verbatim, and once a
//!   recomputed row converges back onto its stored value, every later
//!   row whose item is unchanged is reused too;
//! * **column prefixes** — a table filled at capacity `S` contains the
//!   table for every capacity `s ≤ S` as its first `s + 1` columns, so
//!   a pure capacity move within the stored width costs *zero* cell
//!   refills.
//!
//! Every [`resolve`](IncrementalDp::resolve) leaves the session in the
//! state a from-scratch [`DpTable::fill`] at the same arguments would
//! produce, so profits and reconstructions are byte-identical to the
//! cold path — the property `tests/chaos.rs` and the allocation
//! proptests pin down.
//!
//! [`CacheAllocator::allocate`]: crate::CacheAllocator::allocate
//! [`DpTable::fill`]: crate::DpTable::fill

use crate::AllocItem;

/// A reusable dynamic-program session for incremental re-solves.
///
/// # Examples
///
/// ```
/// use paraconv_alloc::{AllocItem, DpTable, IncrementalDp};
/// use paraconv_graph::EdgeId;
///
/// let mut items = vec![
///     AllocItem::new(EdgeId::new(0), 2, 3, 1),
///     AllocItem::new(EdgeId::new(1), 2, 2, 2),
///     AllocItem::new(EdgeId::new(2), 1, 2, 3),
/// ];
/// let mut session = IncrementalDp::new();
/// session.resolve(&items, 3);
/// assert_eq!(session.max_profit(), 5);
///
/// // Perturb the last item: only its row is refilled.
/// items[2] = AllocItem::new(EdgeId::new(2), 1, 4, 3);
/// session.resolve(&items, 3);
/// assert_eq!(session.max_profit(), DpTable::fill(&items, 3).max_profit());
/// assert_eq!(session.reconstruct(), DpTable::fill(&items, 3).reconstruct());
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalDp {
    /// The item list of the last resolve, in the caller's (deadline)
    /// order — the row-reuse prefix is computed against it.
    items: Vec<AllocItem>,
    /// Stored row width: the largest `capacity + 1` seen so far, or 0
    /// while the session is unprimed.
    cols: usize,
    /// Words per decision-bit row (`cols / 64`, rounded up).
    words_per_row: usize,
    /// All value rows `B[·, 0..=n]`, row-major at width `cols`.
    rows: Vec<u64>,
    /// Decision bits, one row of `words_per_row` words per item.
    bits: Vec<u64>,
    /// The capacity of the last resolve (may be below `cols - 1`).
    query: u64,
}

impl IncrementalDp {
    /// Creates an unprimed session; the first
    /// [`resolve`](IncrementalDp::resolve) performs a full fill.
    #[must_use]
    pub fn new() -> Self {
        IncrementalDp::default()
    }

    /// Solves the instance `(items, capacity)`, reusing as much of the
    /// previous solve as the perturbation allows. Items must already
    /// be in deadline order (use
    /// [`sort_by_deadline`](crate::sort_by_deadline) first), like
    /// [`DpTable::fill`](crate::DpTable::fill).
    ///
    /// Reuse, from cheapest to priciest:
    ///
    /// * same items, `capacity` within the stored width → zero refill;
    /// * shared item prefix → suffix rows refill, and refilling stops
    ///   early again wherever a recomputed value row converges back
    ///   onto its stored bytes and the following items are unchanged
    ///   (multi-item perturbations no longer force refilling every row
    ///   past the first moved item);
    /// * `capacity` above every capacity seen so far → full refill at
    ///   the wider row (the stored rows are too narrow to extend).
    ///
    /// Observability: a full (re)fill counts as `dp.fills`; a reusing
    /// resolve counts as `dp.incremental_hits` and adds *every* reused
    /// row — shared prefix and converged tail alike — to
    /// `dp.rows_reused`. Both paths add their actually computed cells
    /// to `dp.cells_filled`.
    pub fn resolve(&mut self, items: &[AllocItem], capacity: u64) {
        let needed = capacity as usize + 1;
        if self.cols == 0 || needed > self.cols {
            self.prime(items, needed);
        } else {
            self.refill_suffix(items);
        }
        self.query = capacity;
    }

    /// Full fill at row width `cols`, discarding any previous state.
    fn prime(&mut self, items: &[AllocItem], cols: usize) {
        let _span = paraconv_obs::span("alloc.dp.fill", "alloc");
        let n = items.len();
        paraconv_obs::counter_add("dp.fills", 1);
        paraconv_obs::counter_add("dp.cells_filled", n as u64 * cols as u64);
        paraconv_obs::observe("dp.items_per_fill", n as u64);
        self.cols = cols;
        self.words_per_row = cols.div_ceil(64);
        self.rows.clear();
        self.rows.resize((n + 1) * cols, 0);
        self.bits.clear();
        self.bits.resize(n * self.words_per_row, 0);
        self.items = items.to_vec();
        for m in 0..n {
            self.fill_row(m);
        }
    }

    /// Refills only the rows the perturbation actually dirtied, at the
    /// stored row width.
    ///
    /// Row `m + 1` of the recurrence is a pure function of value row
    /// `m` and item `m`, so a stored row stays valid as long as its
    /// inputs do: the shared item prefix is reused verbatim, and when
    /// a recomputed row lands byte-identical on the stored one the
    /// refill goes *clean* again and skips forward to the next changed
    /// item. Multi-item structural perturbations therefore no longer
    /// pay for every row past the first moved item.
    fn refill_suffix(&mut self, items: &[AllocItem]) {
        let _span = paraconv_obs::span("alloc.dp.resolve", "alloc");
        let n = items.len();
        let cols = self.cols;
        let old_items = std::mem::replace(&mut self.items, items.to_vec());
        self.rows.resize((n + 1) * cols, 0);
        self.bits.resize(n * self.words_per_row, 0);
        let mut stale = vec![0u64; cols];
        let mut dirty = false;
        let mut reused = 0u64;
        let mut recomputed = 0u64;
        for (m, new_item) in items.iter().enumerate() {
            if !dirty && old_items.get(m) == Some(new_item) {
                // Value row m and item m both match the stored solve,
                // so value row m + 1 and bit row m are already right.
                reused += 1;
                continue;
            }
            // Rows are visited in order, so row m + 1 still holds the
            // previous solve's bytes (when it had that many rows).
            let had_next = m < old_items.len();
            if had_next {
                // lint: allow(unchecked-index) — resolve() sized rows for n + 1 rows and m < n
                stale.copy_from_slice(&self.rows[(m + 1) * cols..(m + 2) * cols]);
            }
            self.fill_row(m);
            recomputed += 1;
            // lint: allow(unchecked-index) — same row bounds as the stash above
            dirty = !had_next || self.rows[(m + 1) * cols..(m + 2) * cols] != stale[..];
        }
        if reused > 0 {
            paraconv_obs::counter_add("dp.incremental_hits", 1);
            paraconv_obs::counter_add("dp.rows_reused", reused);
        }
        if recomputed > 0 {
            paraconv_obs::counter_add("dp.cells_filled", recomputed * cols as u64);
        }
    }

    /// Computes value row `m + 1` and decision-bit row `m` from value
    /// row `m` — one step of the recurrence at the stored width.
    fn fill_row(&mut self, m: usize) {
        let cols = self.cols;
        let (prev_rows, curr_rows) = self.rows.split_at_mut((m + 1) * cols);
        // lint: allow(unchecked-index) — prev_rows holds exactly rows 0..=m of width cols
        let prev = &prev_rows[m * cols..];
        // lint: allow(unchecked-index) — curr_rows starts at row m + 1, which resolve() sized
        let curr = &mut curr_rows[..cols];
        // lint: allow(unchecked-index) — bits holds one words_per_row row per item
        let row_bits = &mut self.bits[m * self.words_per_row..(m + 1) * self.words_per_row];
        row_bits.fill(0);
        // lint: allow(unchecked-index) — m < items.len() for every fill_row call site
        let item = &self.items[m];
        if item.space() >= cols as u64 {
            curr.copy_from_slice(prev);
            return;
        }
        let sp = item.space() as usize;
        let dr = item.delta_r();
        // lint: allow(unchecked-index) — sp < cols, the width of both rows
        curr[..sp].copy_from_slice(&prev[..sp]);
        for s in sp..cols {
            // lint: allow(unchecked-index) — s ranges over the shared row width
            let without = prev[s];
            // lint: allow(unchecked-index) — s ≥ sp here, so s - sp is in range
            let with = prev[s - sp] + dr;
            if with > without {
                // lint: allow(unchecked-index) — s and s/64 are bounded by the row widths
                curr[s] = with;
                // lint: allow(unchecked-index) — s/64 < words_per_row by construction
                row_bits[s >> 6] |= 1u64 << (s & 63);
            } else {
                // lint: allow(unchecked-index) — s ranges over the shared row width
                curr[s] = without;
            }
        }
    }

    /// The optimal profit of the last [`resolve`](IncrementalDp::resolve).
    ///
    /// # Panics
    ///
    /// Panics if the session was never resolved.
    #[must_use]
    pub fn max_profit(&self) -> u64 {
        self.max_profit_at(self.query)
    }

    /// The optimal profit at any capacity within the stored width —
    /// `B[s, n]` of the last resolved item list.
    ///
    /// # Panics
    ///
    /// Panics if the session was never resolved or `s` exceeds the
    /// stored capacity.
    #[must_use]
    pub fn max_profit_at(&self, s: u64) -> u64 {
        assert!(self.cols > 0, "resolve() the session before reading it");
        assert!((s as usize) < self.cols, "capacity out of range");
        let n = self.items.len();
        // lint: allow(unchecked-index) — the final row spans cols entries and s < cols
        self.rows[n * self.cols + s as usize]
    }

    /// Backtracks an optimal subset at the last resolved capacity;
    /// `result[m]` is `true` iff the `m`-th item (deadline order) is
    /// allocated to cache. Byte-identical to
    /// [`DpTable::fill`](crate::DpTable::fill)` + reconstruct()` on the
    /// same instance.
    #[must_use]
    pub fn reconstruct(&self) -> Vec<bool> {
        paraconv_obs::counter_add("dp.reconstructs", 1);
        let n = self.items.len();
        let mut chosen = vec![false; n];
        let mut s = self.query as usize;
        for m in (0..n).rev() {
            // lint: allow(unchecked-index) — m < n and s stays within the stored width
            let word = self.bits[m * self.words_per_row + (s >> 6)];
            if (word >> (s & 63)) & 1 == 1 {
                // lint: allow(unchecked-index) — m < n bounds both accesses
                chosen[m] = true;
                // A set bit implies the item fit, so sp ≤ s.
                // lint: allow(unchecked-index) — m < n bounds both accesses
                s -= self.items[m].space() as usize;
            }
        }
        chosen
    }

    /// The capacity of the last resolve.
    #[must_use]
    pub const fn query_capacity(&self) -> u64 {
        self.query
    }

    /// The largest capacity the stored rows cover, or `None` while the
    /// session is unprimed. Resolves at or below this bound reuse
    /// every shared row.
    #[must_use]
    pub fn filled_capacity(&self) -> Option<u64> {
        (self.cols > 0).then(|| self.cols as u64 - 1)
    }

    /// The item list of the last resolve (deadline order).
    #[must_use]
    pub fn items(&self) -> &[AllocItem] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpTable;
    use paraconv_graph::EdgeId;

    fn item(id: u32, space: u64, profit: u64) -> AllocItem {
        AllocItem::new(EdgeId::new(id), space, profit, id as u64)
    }

    fn assert_matches_cold(session: &IncrementalDp, items: &[AllocItem], capacity: u64) {
        let cold = DpTable::fill(items, capacity);
        assert_eq!(session.max_profit(), cold.max_profit(), "profit diverged");
        assert_eq!(
            session.reconstruct(),
            cold.reconstruct(),
            "reconstruction diverged"
        );
    }

    #[test]
    fn first_resolve_is_a_cold_fill() {
        let items = vec![item(0, 1, 1), item(1, 3, 4), item(2, 4, 5), item(3, 5, 7)];
        let mut session = IncrementalDp::new();
        session.resolve(&items, 7);
        assert_eq!(session.max_profit(), 9);
        assert_eq!(session.filled_capacity(), Some(7));
        assert_matches_cold(&session, &items, 7);
    }

    #[test]
    fn item_perturbation_refills_only_the_suffix() {
        let mut items = vec![
            item(0, 3, 2),
            item(1, 2, 2),
            item(2, 4, 10),
            item(3, 1, 1),
            item(4, 5, 3),
        ];
        let mut session = IncrementalDp::new();
        session.resolve(&items, 8);
        for (perturb, space, profit) in [(4usize, 2, 9), (2, 1, 1), (0, 6, 20)] {
            items[perturb] = item(perturb as u32, space, profit);
            session.resolve(&items, 8);
            assert_matches_cold(&session, &items, 8);
        }
    }

    #[test]
    fn multi_item_perturbations_stay_exact() {
        let mut items = vec![
            item(0, 2, 3),
            item(1, 3, 5),
            item(2, 1, 2),
            item(3, 4, 7),
            item(4, 2, 4),
            item(5, 3, 6),
        ];
        let mut session = IncrementalDp::new();
        session.resolve(&items, 9);
        // Move several items at once, with untouched rows between and
        // after them — the batch shape a degraded-mode replan emits.
        items[1] = item(1, 2, 9);
        items[4] = item(4, 1, 1);
        session.resolve(&items, 9);
        assert_matches_cold(&session, &items, 9);
        // A batch whose edits all converge immediately (oversized items
        // copy their row through in both the old and new solve).
        items[0] = item(0, 50, 8);
        items[3] = item(3, 60, 2);
        session.resolve(&items, 9);
        items[0] = item(0, 70, 1);
        items[3] = item(3, 80, 5);
        session.resolve(&items, 9);
        assert_matches_cold(&session, &items, 9);
    }

    #[test]
    fn capacity_moves_within_the_stored_width_are_free() {
        let items = vec![item(0, 2, 5), item(1, 2, 4), item(2, 1, 3)];
        let mut session = IncrementalDp::new();
        session.resolve(&items, 5);
        for capacity in [0u64, 3, 5, 1, 4, 2] {
            session.resolve(&items, capacity);
            assert_eq!(session.query_capacity(), capacity);
            assert_eq!(session.filled_capacity(), Some(5), "no reprime expected");
            assert_matches_cold(&session, &items, capacity);
        }
    }

    #[test]
    fn capacity_growth_reprimes_at_the_wider_row() {
        let items = vec![item(0, 2, 5), item(1, 2, 4), item(2, 1, 3)];
        let mut session = IncrementalDp::new();
        session.resolve(&items, 2);
        session.resolve(&items, 9);
        assert_eq!(session.filled_capacity(), Some(9));
        assert_matches_cold(&session, &items, 9);
    }

    #[test]
    fn item_count_can_shrink_and_grow() {
        let base = vec![item(0, 1, 2), item(1, 2, 3), item(2, 3, 4), item(3, 1, 5)];
        let mut session = IncrementalDp::new();
        session.resolve(&base, 6);
        let shorter = &base[..2];
        session.resolve(shorter, 6);
        assert_matches_cold(&session, shorter, 6);
        session.resolve(&base, 6);
        assert_matches_cold(&session, &base, 6);
        session.resolve(&[], 6);
        assert_eq!(session.max_profit(), 0);
        assert!(session.reconstruct().is_empty());
    }

    #[test]
    fn disjoint_item_lists_still_solve_exactly() {
        let first = vec![item(0, 2, 3), item(1, 3, 4)];
        let second = vec![item(7, 1, 9), item(8, 4, 2), item(9, 2, 6)];
        let mut session = IncrementalDp::new();
        session.resolve(&first, 5);
        session.resolve(&second, 5);
        assert_matches_cold(&session, &second, 5);
    }

    #[test]
    #[should_panic(expected = "resolve() the session before reading it")]
    fn reading_an_unprimed_session_panics() {
        let _ = IncrementalDp::new().max_profit();
    }

    #[test]
    #[should_panic(expected = "capacity out of range")]
    fn reading_past_the_stored_width_panics() {
        let mut session = IncrementalDp::new();
        session.resolve(&[item(0, 1, 1)], 3);
        let _ = session.max_profit_at(4);
    }
}
