//! Property-based tests: every emitted plan survives full architectural
//! validation, and the schedulers' structural guarantees hold.

use proptest::prelude::*;

use paraconv_graph::{NodeId, OpKind, TaskGraph, TaskGraphBuilder};
use paraconv_pim::{simulate, PimConfig};
use paraconv_sched::{rotation_schedule, KernelSchedule, ParaConvScheduler, SpartaScheduler};

fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..18).prop_flat_map(|n| {
        let exec = proptest::collection::vec(1u64..4, n);
        let sizes = proptest::collection::vec(1u64..3, n * 2);
        let edges = proptest::collection::btree_set((0..n, 0..n), 0..(n * 2));
        (exec, sizes, edges).prop_map(move |(exec, sizes, edges)| {
            let mut b = TaskGraphBuilder::new("prop");
            let ids: Vec<NodeId> = exec
                .iter()
                .map(|&c| b.add_node("n", OpKind::Convolution, c))
                .collect();
            for (k, (a, z)) in edges.into_iter().enumerate() {
                let (lo, hi) = (a.min(z), a.max(z));
                if lo != hi {
                    let _ = b.add_edge(ids[lo], ids[hi], sizes[k % sizes.len()]);
                }
            }
            b.build().expect("forward edges are acyclic")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paraconv_plans_always_validate(
        g in arb_dag(), pes in prop::sample::select(vec![1usize, 2, 4, 16, 64]), iters in 1u64..6
    ) {
        let cfg = PimConfig::neurocube(pes).unwrap();
        let outcome = ParaConvScheduler::new(cfg.clone()).schedule(&g, iters).unwrap();
        let report = simulate(&g, &outcome.plan, &cfg).unwrap();
        prop_assert_eq!(report.iterations, iters);
        prop_assert!(report.peak_cache_occupancy <= report.cache_capacity);
    }

    #[test]
    fn sparta_plans_always_validate(
        g in arb_dag(), pes in prop::sample::select(vec![1usize, 2, 4, 16, 64]), iters in 1u64..6
    ) {
        let cfg = PimConfig::neurocube(pes).unwrap();
        let outcome = SpartaScheduler::new(cfg.clone()).schedule(&g, iters).unwrap();
        let report = simulate(&g, &outcome.plan, &cfg).unwrap();
        prop_assert_eq!(report.iterations, iters);
        prop_assert!(report.peak_cache_occupancy <= report.cache_capacity);
    }

    #[test]
    fn paraconv_steady_state_is_periodic(g in arb_dag(), iters in 2u64..6) {
        // The kernel repeats every p: with G = ⌈M/u⌉ iteration groups
        // the run ends inside the last window,
        // (R_max + G - 1)·p < total ≤ (R_max + G)·p.
        let cfg = PimConfig::neurocube(8).unwrap();
        let outcome = ParaConvScheduler::new(cfg).schedule(&g, iters).unwrap();
        let groups = iters.div_ceil(outcome.unroll());
        let upper = (outcome.rmax() + groups) * outcome.period();
        let lower = (outcome.rmax() + groups - 1) * outcome.period();
        prop_assert!(outcome.total_time() <= upper);
        prop_assert!(outcome.total_time() > lower);
    }

    #[test]
    fn paraconv_kernel_never_longer_than_sparta_batch_per_iteration(g in arb_dag()) {
        // The compacted kernel ignores intra-iteration dependencies, so
        // it is a lower bound on any dependency-respecting schedule of
        // one iteration.
        let cfg = PimConfig::neurocube(16).unwrap();
        let para = ParaConvScheduler::new(cfg.clone()).schedule(&g, 1).unwrap();
        let sparta = SpartaScheduler::new(cfg).schedule(&g, 1).unwrap();
        prop_assert!(para.period() <= sparta.batch_makespan);
    }

    #[test]
    fn kernel_period_is_list_scheduling_bound(g in arb_dag(), pes in 1usize..32) {
        let k = KernelSchedule::compact(&g, pes);
        let work = g.total_exec_time();
        let cmax = g.nodes().map(|n| n.exec_time()).max().unwrap();
        let lower = (work.div_ceil(pes as u64)).max(cmax);
        prop_assert!(k.period() >= lower.min(work).max(1));
        prop_assert!(k.period() <= work.div_ceil(pes as u64) + cmax);
    }

    #[test]
    fn more_pes_never_lengthen_the_kernel(g in arb_dag()) {
        let mut last = u64::MAX;
        for pes in [1usize, 2, 4, 8, 16] {
            let p = KernelSchedule::compact(&g, pes).period();
            prop_assert!(p <= last);
            last = p;
        }
    }

    #[test]
    fn cached_count_monotone_in_cache_size(g in arb_dag()) {
        // More aggregate cache never caches fewer IPRs under the DP.
        let mut last = 0usize;
        for per_pe in [0u64, 1, 2, 4, 16, 64] {
            let cfg = PimConfig::builder(4).per_pe_cache_units(per_pe).build().unwrap();
            let outcome = ParaConvScheduler::new(cfg).schedule(&g, 1).unwrap();
            let cached = outcome.cached_iprs();
            prop_assert!(cached >= last || outcome.allocation.total_profit() > 0,
                "cached {cached} after {last}");
            last = cached;
        }
    }

    #[test]
    fn rotation_compacts_monotonically(g in arb_dag(), pes in 1usize..8, rounds in 0usize..20) {
        let result = rotation_schedule(&g, pes, rounds);
        // Kernel length never increases round over round.
        for w in result.lengths.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
        // The accumulated retiming is always legal.
        prop_assert!(result.retiming.check_legal(&g).is_ok());
        // The kernel can never beat the resource bound.
        let bound = g.total_exec_time().div_ceil(pes as u64).max(
            g.nodes().map(|n| n.exec_time()).max().unwrap()
        );
        prop_assert!(result.final_length() >= bound);
    }

    #[test]
    fn retiming_values_cover_requirements(g in arb_dag(), pes in 1usize..16) {
        let cfg = PimConfig::neurocube(pes.max(1)).unwrap();
        let outcome = ParaConvScheduler::new(cfg).schedule(&g, 1).unwrap();
        prop_assert!(outcome.retiming.check_legal(&g).is_ok());
        // Producers always retimed at least as much as consumers.
        for ipr in g.edges() {
            let rs = outcome.retiming.node_value(ipr.src()).unwrap();
            let rd = outcome.retiming.node_value(ipr.dst()).unwrap();
            prop_assert!(rs >= rd);
        }
    }
}
