//! The SPARTA baseline (Donyanavard et al., CODES'16) re-implemented
//! for the PIM array.
//!
//! SPARTA is a *throughput-aware runtime task allocator* for many-core
//! platforms: it collects sensor data to characterize tasks and uses
//! the characterization to prioritize tasks during allocation. Applied
//! to the CNN dataflow it:
//!
//! * keeps intra-iteration data dependencies *intra-iteration* (no
//!   retiming — the distinguishing difference from Para-CONV);
//! * co-schedules several independent iterations when PEs outnumber the
//!   application's average parallelism, exactly as in the paper's
//!   Figure 3(a) motivational example;
//! * allocates IPRs to the on-chip cache greedily by characterized
//!   criticality (no dynamic program).
//!
//! Both schedulers emit plans for the same validating simulator, so the
//! comparison isolates the scheduling policy.

use paraconv_alloc::{AllocItem, CacheAllocator};
use paraconv_graph::{NodeId, Placement, TaskGraph};
use paraconv_pim::{CostModel, ExecutionPlan, PeId, PimConfig, PlannedTask, PlannedTransfer};

use crate::SchedError;

/// How the baseline fills its cache — greedy (SPARTA's own behaviour)
/// or the Para-CONV dynamic program grafted on, which isolates the
/// *retiming* contribution in ablation studies (DP allocation without
/// retiming vs full Para-CONV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BaselineCachePolicy {
    /// Greedy by consumer criticality (the re-implemented SPARTA).
    #[default]
    Greedy,
    /// The §3.3 knapsack with profit = transfer time saved per
    /// iteration.
    OptimalDp,
}

/// Result of scheduling a run with the SPARTA baseline.
#[derive(Debug, Clone)]
pub struct SpartaOutcome {
    /// The concrete plan, ready for [`paraconv_pim::simulate`].
    pub plan: ExecutionPlan,
    /// Makespan of one full batch of co-scheduled iterations.
    pub batch_makespan: u64,
    /// Iterations co-scheduled per batch.
    pub copies_per_batch: u64,
    /// IPRs (per iteration) the greedy policy placed in cache.
    pub cached_iprs: usize,
}

impl SpartaOutcome {
    /// Total execution time of the planned run.
    #[must_use]
    pub fn total_time(&self) -> u64 {
        self.plan.makespan()
    }

    /// Effective steady-state time per iteration.
    #[must_use]
    pub fn time_per_iteration(&self) -> f64 {
        self.batch_makespan as f64 / self.copies_per_batch as f64
    }
}

/// Sensor-driven task characterization: SPARTA observes each task's
/// load on the fabric and derives an allocation priority. In the
/// deterministic dataflow setting the observed load converges to the
/// task's downstream workload, so the priority is the classic bottom
/// level refined by the task's own execution time.
fn characterize(graph: &TaskGraph) -> Vec<u64> {
    let bottom = graph.bottom_levels();
    graph
        .node_ids()
        .map(|id| {
            // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
            let c = graph.node(id).expect("iterating own ids").exec_time();
            // Bottom level dominates; heavier tasks tie-break first.
            bottom[id.index()] * 64 + c
        })
        .collect()
}

/// The SPARTA scheduler for a fixed architecture.
///
/// # Examples
///
/// ```
/// use paraconv_graph::examples;
/// use paraconv_pim::{simulate, PimConfig};
/// use paraconv_sched::SpartaScheduler;
///
/// let g = examples::motivational();
/// let cfg = PimConfig::neurocube(16)?;
/// let outcome = SpartaScheduler::new(cfg.clone()).schedule(&g, 8)?;
/// let report = simulate(&g, &outcome.plan, &cfg)?;
/// assert_eq!(report.iterations, 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpartaScheduler {
    config: PimConfig,
    cache_policy: BaselineCachePolicy,
}

impl SpartaScheduler {
    /// Creates a scheduler targeting `config` with SPARTA's greedy
    /// cache policy.
    #[must_use]
    pub fn new(config: PimConfig) -> Self {
        SpartaScheduler {
            config,
            cache_policy: BaselineCachePolicy::Greedy,
        }
    }

    /// Overrides the cache policy (ablation studies).
    #[must_use]
    pub fn with_cache_policy(mut self, policy: BaselineCachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// The architecture this scheduler targets.
    #[must_use]
    pub const fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Schedules `iterations` iterations of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::ZeroIterations`] for `iterations == 0`.
    pub fn schedule(
        &self,
        graph: &TaskGraph,
        iterations: u64,
    ) -> Result<SpartaOutcome, SchedError> {
        if iterations == 0 {
            return Err(SchedError::ZeroIterations);
        }
        let _span = paraconv_obs::span("sched.sparta", "sched");
        let cost = CostModel::new(&self.config, graph.edge_count());
        let n_pes = self.config.num_pes();

        // Average parallelism bounds how many PEs one iteration can
        // use; spare PEs host additional concurrent iterations.
        let work = graph.total_exec_time();
        let cp = graph.critical_path_length().max(1);
        let avg_parallelism = work.div_ceil(cp).max(1);
        let copies = (n_pes as u64 / avg_parallelism)
            .clamp(1, n_pes as u64)
            .min(iterations);

        // Cache allocation, bounded so that all co-scheduled copies
        // fit.
        let priority = characterize(graph);
        let capacity = self.config.total_cache_units();
        let mut placements = vec![Placement::Edram; graph.edge_count()];
        let mut cached_iprs = 0usize;
        match self.cache_policy {
            BaselineCachePolicy::Greedy => {
                // Greedy by characterized criticality of the consumer.
                let mut edge_order: Vec<_> = graph.edge_ids().collect();
                edge_order.sort_by_key(|&e| {
                    // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
                    let ipr = graph.edge(e).expect("iterating own ids");
                    (std::cmp::Reverse(priority[ipr.dst().index()]), e)
                });
                let mut used = 0u64;
                for e in edge_order {
                    // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
                    let size = graph.edge(e).expect("iterating own ids").size();
                    let need = size * copies;
                    if used + need <= capacity {
                        used += need;
                        placements[e.index()] = Placement::Cache;
                        cached_iprs += 1;
                    }
                }
            }
            BaselineCachePolicy::OptimalDp => {
                // Knapsack with profit = per-iteration transfer time
                // saved by caching.
                let items: Vec<AllocItem> = graph
                    .edges()
                    .map(|ipr| {
                        let saved = cost.edram_transfer_time(ipr.size())
                            - cost.cache_transfer_time(ipr.size());
                        AllocItem::new(
                            ipr.id(),
                            ipr.size() * copies,
                            saved,
                            priority[ipr.dst().index()],
                        )
                    })
                    .collect();
                let allocation = CacheAllocator::new(capacity).allocate(items);
                placements = allocation.to_placement_vec(graph.edge_count());
                cached_iprs = allocation.cached_count();
            }
        }
        let transfer_time: Vec<u64> = graph
            .edges()
            .map(|ipr| cost.transfer_time(ipr.size(), placements[ipr.id().index()]))
            .collect();

        // Schedule one template batch of `copies` independent copies
        // with priority list scheduling, then replicate it.
        let template = schedule_batch(graph, copies as usize, n_pes, &priority, &transfer_time);

        let mut plan = ExecutionPlan::new(iterations);
        let full_batches = iterations / copies;
        let remainder = iterations % copies;
        let mut next_iteration = 1u64;
        let mut clock = 0u64;
        for _ in 0..full_batches {
            emit_batch(
                &mut plan,
                graph,
                &template,
                copies as usize,
                next_iteration,
                clock,
                &placements,
                &transfer_time,
            );
            next_iteration += copies;
            clock += template.makespan;
        }
        if remainder > 0 {
            let tail = schedule_batch(graph, remainder as usize, n_pes, &priority, &transfer_time);
            emit_batch(
                &mut plan,
                graph,
                &tail,
                remainder as usize,
                next_iteration,
                clock,
                &placements,
                &transfer_time,
            );
        }

        Ok(SpartaOutcome {
            plan,
            batch_makespan: template.makespan,
            copies_per_batch: copies,
            cached_iprs,
        })
    }
}

/// A scheduled batch template: per `(copy, node)` the PE, start and
/// finish, relative to the batch origin.
struct BatchTemplate {
    /// `slot[copy * n + node]`.
    pe: Vec<PeId>,
    start: Vec<u64>,
    finish: Vec<u64>,
    makespan: u64,
}

/// Priority list scheduling of `copies` independent copies of `graph`
/// on `n_pes` engines, honouring intra-iteration dependencies plus the
/// placement-dependent transfer latency on every edge.
fn schedule_batch(
    graph: &TaskGraph,
    copies: usize,
    n_pes: usize,
    priority: &[u64],
    transfer_time: &[u64],
) -> BatchTemplate {
    let n = graph.node_count();
    let total = n * copies;
    let mut remaining_preds: Vec<usize> = Vec::with_capacity(total);
    for copy in 0..copies {
        let _ = copy;
        for id in graph.node_ids() {
            // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
            remaining_preds.push(graph.in_degree(id).expect("iterating own ids"));
        }
    }
    // Ready queue keyed by (priority desc, copy, node) for determinism.
    let mut ready: std::collections::BinaryHeap<(u64, std::cmp::Reverse<usize>)> =
        std::collections::BinaryHeap::new();
    for (slot, &preds) in remaining_preds.iter().enumerate() {
        if preds == 0 {
            ready.push((priority[slot % n], std::cmp::Reverse(slot)));
        }
    }

    let mut pe = vec![PeId::new(0); total];
    let mut start = vec![0u64; total];
    let mut finish = vec![0u64; total];
    let mut scheduled = vec![false; total];
    let mut avail = vec![0u64; n_pes];

    while let Some((_, std::cmp::Reverse(slot))) = ready.pop() {
        let copy = slot / n;
        let node = NodeId::new((slot % n) as u32);
        // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
        let c = graph.node(node).expect("node id in range").exec_time();
        // Earliest start permitted by data dependencies (producer
        // finish + transfer latency).
        let est = graph
            .in_edges(node)
            // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
            .expect("node id in range")
            .iter()
            .map(|&e| {
                // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
                let ipr = graph.edge(e).expect("edge from adjacency");
                finish[copy * n + ipr.src().index()] + transfer_time[e.index()]
            })
            .max()
            .unwrap_or(0);
        // Earliest-finishing PE given the dependency bound.
        let (best_pe, _) = avail
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t.max(est), i))
            // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
            .expect("at least one PE");
        let s = avail[best_pe].max(est);
        pe[slot] = PeId::new(best_pe as u32);
        start[slot] = s;
        finish[slot] = s + c;
        avail[best_pe] = s + c;
        scheduled[slot] = true;

        // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
        for &e in graph.out_edges(node).expect("node id in range") {
            // lint: allow(no-unwrap) — baseline scheduler invariants: every scheduled node has a slot and PE
            let dst = graph.edge(e).expect("edge from adjacency").dst();
            let dst_slot = copy * n + dst.index();
            remaining_preds[dst_slot] -= 1;
            if remaining_preds[dst_slot] == 0 {
                ready.push((priority[dst.index()], std::cmp::Reverse(dst_slot)));
            }
        }
    }
    debug_assert!(scheduled.iter().all(|&s| s), "all tasks scheduled");

    let makespan = finish.iter().copied().max().unwrap_or(0).max(1);
    BatchTemplate {
        pe,
        start,
        finish,
        makespan,
    }
}

/// Emits one batch instance into the plan, shifted to `clock` and
/// numbered from `first_iteration`.
#[allow(clippy::too_many_arguments)]
fn emit_batch(
    plan: &mut ExecutionPlan,
    graph: &TaskGraph,
    template: &BatchTemplate,
    copies: usize,
    first_iteration: u64,
    clock: u64,
    placements: &[Placement],
    transfer_time: &[u64],
) {
    let n = graph.node_count();
    for copy in 0..copies {
        let iteration = first_iteration + copy as u64;
        for node in graph.nodes() {
            let slot = copy * n + node.id().index();
            plan.push_task(PlannedTask {
                node: node.id(),
                iteration,
                pe: template.pe[slot],
                start: clock + template.start[slot],
                duration: node.exec_time(),
            });
        }
        for ipr in graph.edges() {
            let i = ipr.id().index();
            let src_slot = copy * n + ipr.src().index();
            let dst_slot = copy * n + ipr.dst().index();
            plan.push_transfer(PlannedTransfer {
                edge: ipr.id(),
                iteration,
                placement: placements[i],
                start: clock + template.finish[src_slot],
                duration: transfer_time[i],
                dst_pe: template.pe[dst_slot],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::examples;
    use paraconv_pim::simulate;

    fn run(
        graph: &TaskGraph,
        pes: usize,
        iterations: u64,
    ) -> (SpartaOutcome, paraconv_pim::SimReport) {
        let cfg = PimConfig::neurocube(pes).unwrap();
        let outcome = SpartaScheduler::new(cfg.clone())
            .schedule(graph, iterations)
            .unwrap();
        let report = simulate(graph, &outcome.plan, &cfg).unwrap();
        // Every emitted plan must also satisfy the independent auditor.
        paraconv_pim::audit(graph, &outcome.plan, &cfg, &report).unwrap();
        (outcome, report)
    }

    #[test]
    fn motivational_plan_validates() {
        let g = examples::motivational();
        let (outcome, report) = run(&g, 4, 8);
        assert_eq!(report.iterations, 8);
        assert!(outcome.copies_per_batch >= 1);
        assert!(outcome.total_time() > 0);
    }

    #[test]
    fn co_schedules_iterations_when_pes_spare() {
        // Width-2 graph on 16 PEs: several copies per batch.
        let g = examples::motivational(); // W=5, CP=3 → parallelism 2
        let cfg = PimConfig::neurocube(16).unwrap();
        let outcome = SpartaScheduler::new(cfg).schedule(&g, 16).unwrap();
        assert!(
            outcome.copies_per_batch > 1,
            "copies={}",
            outcome.copies_per_batch
        );
    }

    #[test]
    fn single_pe_serializes_every_iteration() {
        let g = examples::chain(3);
        let (outcome, report) = run(&g, 1, 4);
        assert_eq!(outcome.copies_per_batch, 1);
        // On one PE the busy time is all 12 task units.
        assert!(report.total_time >= 12);
    }

    #[test]
    fn respects_iteration_remainders() {
        let g = examples::motivational();
        for iters in [1, 3, 7, 10] {
            let (_, report) = run(&g, 16, iters);
            assert_eq!(report.iterations, iters);
        }
    }

    #[test]
    fn batch_makespan_at_least_critical_path() {
        let g = examples::chain(6);
        let (outcome, _) = run(&g, 8, 4);
        assert!(outcome.batch_makespan >= g.critical_path_length());
    }

    #[test]
    fn zero_iterations_rejected() {
        let g = examples::chain(2);
        let cfg = PimConfig::neurocube(16).unwrap();
        assert_eq!(
            SpartaScheduler::new(cfg).schedule(&g, 0).unwrap_err(),
            SchedError::ZeroIterations
        );
    }

    #[test]
    fn dp_cache_policy_never_moves_more_offchip() {
        let g = examples::fork_join(14);
        let cfg = PimConfig::builder(8).per_pe_cache_units(2).build().unwrap();
        let greedy = SpartaScheduler::new(cfg.clone()).schedule(&g, 4).unwrap();
        let dp = SpartaScheduler::new(cfg.clone())
            .with_cache_policy(BaselineCachePolicy::OptimalDp)
            .schedule(&g, 4)
            .unwrap();
        let r_greedy = simulate(&g, &greedy.plan, &cfg).unwrap();
        let r_dp = simulate(&g, &dp.plan, &cfg).unwrap();
        // The knapsack maximizes transfer time saved, so saved time
        // (and with uniform sizes, units kept on chip) is at least the
        // greedy policy's.
        assert!(r_dp.onchip_units_moved >= r_greedy.onchip_units_moved);
    }

    #[test]
    fn greedy_cache_respects_capacity() {
        let g = examples::fork_join(16);
        let cfg = PimConfig::builder(4).per_pe_cache_units(1).build().unwrap();
        let outcome = SpartaScheduler::new(cfg.clone()).schedule(&g, 4).unwrap();
        let report = simulate(&g, &outcome.plan, &cfg).unwrap();
        assert!(report.peak_cache_occupancy <= report.cache_capacity);
    }

    #[test]
    fn characterization_prefers_critical_tasks() {
        let g = examples::chain(3);
        let priority = characterize(&g);
        // Upstream of a chain has the largest bottom level.
        assert!(priority[0] > priority[1]);
        assert!(priority[1] > priority[2]);
    }
}
