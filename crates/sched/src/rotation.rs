//! Rotation scheduling: incremental retiming-driven kernel compaction.
//!
//! The retiming technique Para-CONV extends "is originally proposed to
//! minimize the cycle period of a synchronous circuit by evenly
//! distributing registers" (§2.3, citing Passos & Sha). *Rotation
//! scheduling* is the classic schedule-level realization: starting
//! from a dependency-respecting schedule of one iteration, repeatedly
//! retime the operations in the first time row — moving one of their
//! iterations into the prologue — and re-place them in the slack the
//! rest of the schedule leaves. Each rotation keeps the retiming legal
//! and never lengthens the kernel, converging toward the
//! resource-bound period that [`KernelSchedule::compact`] reaches
//! directly.
//!
//! Para-CONV itself jumps straight to the compacted kernel; this
//! module exists to connect the implementation to its heritage, to
//! provide the incremental path (useful when a schedule must evolve
//! from a legacy non-retimed one), and to cross-check the direct
//! construction in tests.

use paraconv_graph::{NodeId, TaskGraph};
use paraconv_pim::PeId;

use paraconv_retime::Retiming;

/// The outcome of a rotation-scheduling run.
#[derive(Debug, Clone)]
pub struct RotationResult {
    /// Kernel length after the initial schedule and after every
    /// rotation round (monotone non-increasing).
    pub lengths: Vec<u64>,
    /// The accumulated (legal) retiming: one `R(i)` increment per
    /// rotation of `T_i`.
    pub retiming: Retiming,
    /// Final per-node PE assignment.
    pub pe_of: Vec<PeId>,
    /// Final per-node start offset within the kernel.
    pub start_of: Vec<u64>,
}

impl RotationResult {
    /// The final kernel length.
    #[must_use]
    pub fn final_length(&self) -> u64 {
        // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
        *self.lengths.last().expect("at least the initial length")
    }
}

/// Runs rotation scheduling for `rounds` rotations of `graph` on
/// `num_pes` engines.
///
/// The initial schedule is a priority list schedule honouring every
/// intra-iteration dependency (no retiming); each round retimes every
/// first-row operation once and re-places it greedily. Operations
/// whose dependencies have all been pushed inter-iteration place
/// freely, which is how the kernel compacts.
///
/// # Panics
///
/// Panics if `num_pes == 0`.
///
/// # Examples
///
/// ```
/// use paraconv_graph::examples;
/// use paraconv_sched::{rotation_schedule, KernelSchedule};
///
/// let g = examples::chain(6);
/// let result = rotation_schedule(&g, 2, 12);
/// // The dependency-bound initial schedule is 6 long; rotation
/// // converges to the resource bound of 3.
/// assert_eq!(result.lengths[0], 6);
/// assert_eq!(result.final_length(), KernelSchedule::compact(&g, 2).period());
/// ```
#[must_use]
pub fn rotation_schedule(graph: &TaskGraph, num_pes: usize, rounds: usize) -> RotationResult {
    assert!(num_pes > 0, "PE count must be positive");
    let pes: Vec<PeId> = (0..num_pes as u32).map(PeId::new).collect();
    rotation_schedule_on(graph, &pes, rounds)
}

/// Runs rotation scheduling on an explicit PE list instead of the
/// dense `0..num_pes` range.
///
/// With the identity list this is byte-identical to
/// [`rotation_schedule`] (ties break by list position, which is then
/// the PE index). Degraded-mode replanning passes the surviving PEs
/// after a fail-stop so rotation slots remap onto live engines only.
///
/// # Panics
///
/// Panics if `pes` is empty.
#[must_use]
pub fn rotation_schedule_on(graph: &TaskGraph, pes: &[PeId], rounds: usize) -> RotationResult {
    assert!(!pes.is_empty(), "surviving PE list must be positive");
    let n = graph.node_count();
    // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
    let order = graph.topological_order().expect("built graphs are acyclic");

    // --- initial dependency-respecting list schedule -------------------
    let mut phase = vec![0u64; n]; // rotation count = retiming value
    let mut pe_of = vec![PeId::new(0); n];
    let mut start_of = vec![0u64; n];
    let mut finish_of = vec![0u64; n];
    {
        let mut avail = vec![0u64; pes.len()];
        for &id in &order {
            // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
            let c = graph.node(id).expect("topo order node").exec_time();
            let est = graph
                .in_edges(id)
                // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
                .expect("topo order node")
                .iter()
                // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
                .map(|&e| finish_of[graph.edge(e).expect("adjacency edge").src().index()])
                .max()
                .unwrap_or(0);
            let (pos, _) = avail
                .iter()
                .enumerate()
                .min_by_key(|&(i, &t)| (t.max(est), i))
                // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
                .expect("at least one PE");
            let s = avail[pos].max(est);
            pe_of[id.index()] = pes[pos];
            start_of[id.index()] = s;
            finish_of[id.index()] = s + c;
            avail[pos] = s + c;
        }
    }
    let mut lengths = vec![finish_of.iter().copied().max().unwrap_or(0).max(1)];

    // --- rotation rounds --------------------------------------------------
    for _ in 0..rounds {
        // Snapshot for rejection: a rotation that would lengthen the
        // kernel is rolled back (hill climbing that never regresses;
        // the textbook cyclic re-placement guarantees non-increase,
        // the simpler linear placement used here needs the guard).
        let snapshot = (
            phase.clone(),
            pe_of.clone(),
            start_of.clone(),
            finish_of.clone(),
        );
        // First-row operations move one iteration into the prologue.
        let rotated: Vec<NodeId> = order
            .iter()
            .copied()
            .filter(|id| start_of[id.index()] == 0)
            .collect();
        if rotated.len() == n {
            // Everything sits in row 0: fully compacted already.
            // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
            lengths.push(*lengths.last().expect("non-empty"));
            continue;
        }
        for &id in &rotated {
            phase[id.index()] += 1;
        }
        // The rest of the schedule slides up one unit.
        for id in graph.node_ids() {
            if !rotated.contains(&id) {
                start_of[id.index()] -= 1;
                finish_of[id.index()] -= 1;
            }
        }
        // Re-place rotated operations (topological order) in the
        // earliest feasible slack. An in-edge constrains the placement
        // only while producer and consumer have equal rotation counts
        // (it is still intra-iteration).
        for &id in order.iter().filter(|id| rotated.contains(id)) {
            // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
            let c = graph.node(id).expect("topo order node").exec_time();
            let est = graph
                .in_edges(id)
                // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
                .expect("topo order node")
                .iter()
                .filter_map(|&e| {
                    // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
                    let src = graph.edge(e).expect("adjacency edge").src();
                    (phase[src.index()] == phase[id.index()]).then(|| finish_of[src.index()])
                })
                .max()
                .unwrap_or(0);
            let (pe, start) = earliest_slot(graph, &pe_of, &start_of, &finish_of, id, est, c, pes);
            pe_of[id.index()] = pe;
            start_of[id.index()] = start;
            finish_of[id.index()] = start + c;
        }
        let new_len = finish_of.iter().copied().max().unwrap_or(0).max(1);
        // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
        let old_len = *lengths.last().expect("non-empty");
        if new_len > old_len {
            (phase, pe_of, start_of, finish_of) = snapshot;
            lengths.push(old_len);
        } else {
            lengths.push(new_len);
        }
    }

    // --- package the retiming legally ------------------------------------
    let mut retiming = Retiming::zero(graph);
    for id in graph.node_ids() {
        for _ in 0..phase[id.index()] {
            // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
            retiming.retime_node(id).expect("node in range");
        }
    }
    for ipr in graph.edges() {
        // φ(dst) ≤ φ(src) is a loop invariant (a node with a live
        // intra-iteration predecessor can never sit in row 0), so the
        // consumer's value is always a legal edge value.
        retiming
            .set_edge_value(ipr.id(), phase[ipr.dst().index()])
            // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
            .expect("edge in range");
    }
    debug_assert!(retiming.check_legal(graph).is_ok());

    RotationResult {
        lengths,
        retiming,
        pe_of,
        start_of,
    }
}

/// Finds the earliest `(pe, start)` with `start ≥ est` where `id` fits
/// for `c` units without overlapping any other node's placement.
/// Candidate PEs come from `pes`; ties break by list position.
#[allow(clippy::too_many_arguments)]
fn earliest_slot(
    graph: &TaskGraph,
    pe_of: &[PeId],
    start_of: &[u64],
    finish_of: &[u64],
    id: NodeId,
    est: u64,
    c: u64,
    pes: &[PeId],
) -> (PeId, u64) {
    let mut best: Option<(u64, usize)> = None;
    for (pos, &pe) in pes.iter().enumerate() {
        // Busy intervals on this PE, excluding the node being placed.
        let mut busy: Vec<(u64, u64)> = graph
            .node_ids()
            .filter(|&o| o != id && pe_of[o.index()] == pe)
            .map(|o| (start_of[o.index()], finish_of[o.index()]))
            .collect();
        busy.sort_unstable();
        let mut t = est;
        for &(s, f) in &busy {
            if t + c <= s {
                break;
            }
            t = t.max(f);
        }
        let candidate = (t, pos);
        if best.is_none_or(|b| candidate < b) {
            best = Some(candidate);
        }
    }
    // lint: allow(no-unwrap) — schedule tables are fully populated for every (node, copy) by construction
    let (start, pos) = best.expect("at least one PE");
    (pes[pos], start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelSchedule;
    use paraconv_graph::examples;

    #[test]
    fn lengths_never_increase() {
        for g in [
            examples::chain(8),
            examples::fork_join(6),
            examples::motivational(),
        ] {
            for pes in [1usize, 2, 4] {
                let result = rotation_schedule(&g, pes, 16);
                for w in result.lengths.windows(2) {
                    assert!(w[1] <= w[0], "{:?}", result.lengths);
                }
            }
        }
    }

    #[test]
    fn chain_converges_to_resource_bound() {
        let g = examples::chain(8);
        let result = rotation_schedule(&g, 4, 20);
        assert_eq!(result.lengths[0], 8); // dependency bound
        assert_eq!(result.final_length(), 2); // resource bound 8/4
    }

    #[test]
    fn retiming_stays_legal() {
        for g in [
            examples::chain(5),
            examples::motivational(),
            examples::fork_join(4),
        ] {
            let result = rotation_schedule(&g, 2, 10);
            assert!(result.retiming.check_legal(&g).is_ok());
        }
    }

    #[test]
    fn final_placement_is_conflict_free_and_respects_intra_edges() {
        let g = examples::fork_join(7);
        let result = rotation_schedule(&g, 3, 12);
        // No PE overlap.
        for a in g.node_ids() {
            for b in g.node_ids() {
                if a < b && result.pe_of[a.index()] == result.pe_of[b.index()] {
                    let fa = result.start_of[a.index()] + g.node(a).unwrap().exec_time();
                    let fb = result.start_of[b.index()] + g.node(b).unwrap().exec_time();
                    let disjoint =
                        fa <= result.start_of[b.index()] || fb <= result.start_of[a.index()];
                    assert!(disjoint, "{a} vs {b}");
                }
            }
        }
        // Intra-iteration edges (equal retiming) stay ordered.
        for ipr in g.edges() {
            let rs = result.retiming.node_value(ipr.src()).unwrap();
            let rd = result.retiming.node_value(ipr.dst()).unwrap();
            if rs == rd {
                let fs =
                    result.start_of[ipr.src().index()] + g.node(ipr.src()).unwrap().exec_time();
                assert!(result.start_of[ipr.dst().index()] >= fs);
            }
        }
    }

    #[test]
    fn matches_direct_compaction_eventually() {
        for (g, pes) in [
            (examples::chain(6), 2usize),
            (examples::motivational(), 4),
            (examples::fork_join(9), 4),
        ] {
            let direct = KernelSchedule::compact(&g, pes).period();
            let rotated = rotation_schedule(&g, pes, 3 * g.node_count());
            assert!(
                rotated.final_length() <= direct + 1,
                "{}: rotated {} vs direct {direct}",
                g.name(),
                rotated.final_length()
            );
        }
    }

    #[test]
    fn zero_rounds_is_the_plain_list_schedule() {
        let g = examples::chain(4);
        let result = rotation_schedule(&g, 2, 0);
        assert_eq!(result.lengths, vec![4]);
        assert_eq!(result.retiming.max_value(), 0);
    }

    #[test]
    fn rmax_counts_rotations() {
        let g = examples::chain(3);
        let result = rotation_schedule(&g, 1, 4);
        // On one PE nothing compacts, but first-row nodes still rotate
        // (a node is rotated each round).
        assert!(result.retiming.max_value() >= 1);
        assert_eq!(result.final_length(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pes_panics() {
        let _ = rotation_schedule(&examples::chain(2), 0, 1);
    }

    #[test]
    fn identity_pe_list_matches_the_dense_rotation() {
        let g = examples::fork_join(8);
        for pes in [1usize, 2, 4] {
            let list: Vec<PeId> = (0..pes as u32).map(PeId::new).collect();
            let dense = rotation_schedule(&g, pes, 10);
            let listed = rotation_schedule_on(&g, &list, 10);
            assert_eq!(dense.lengths, listed.lengths);
            assert_eq!(dense.pe_of, listed.pe_of);
            assert_eq!(dense.start_of, listed.start_of);
        }
    }

    #[test]
    fn degraded_list_avoids_the_dead_pe() {
        let g = examples::fork_join(8);
        let survivors = [PeId::new(0), PeId::new(2), PeId::new(3)];
        let result = rotation_schedule_on(&g, &survivors, 10);
        for id in g.node_ids() {
            assert_ne!(result.pe_of[id.index()], PeId::new(1), "slot on dead PE");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_pe_list_panics() {
        let _ = rotation_schedule_on(&examples::chain(2), &[], 1);
    }
}
