//! The Para-CONV scheduler (§3).
//!
//! Pipeline, exactly as the paper constructs it:
//!
//! 1. **Objective schedule** — compact one iteration's operations onto
//!    the PE array ([`KernelSchedule::compact`]); its makespan is the
//!    steady-state period `p`.
//! 2. **Movement analysis** — derive each IPR's minimal relative
//!    retiming under cache and eDRAM placement from its intra-kernel
//!    slack and the placement latencies (§3.2, Figure 4).
//! 3. **Optimal allocation** — route zero-`ΔR` IPRs to eDRAM and run
//!    the dynamic program over the competing IPRs within the aggregate
//!    cache capacity (§3.3).
//! 4. **Retiming** — the minimal legal retiming satisfying every
//!    edge's requirement under its chosen placement; `R_max` fixes the
//!    prologue `R_max × p`.
//! 5. **Plan emission** — instance `V_i^ℓ` starts at
//!    `(ℓ − 1 + R_max − R(i))·p + offset(i)` on its kernel PE, every
//!    transfer departs when its producer finishes.

use paraconv_alloc::{AllocItem, CacheAllocation, CacheAllocator, IncrementalDp};
use paraconv_graph::{Placement, TaskGraph};
use paraconv_pim::{CostModel, ExecutionPlan, PeId, PimConfig, PlannedTask, PlannedTransfer};
use paraconv_retime::{minimal_relative_retiming, MovementAnalysis, Retiming};

use crate::{KernelSchedule, SchedError};

/// Everything the Para-CONV scheduler produced for one run.
#[derive(Debug, Clone)]
pub struct ParaConvOutcome {
    /// The concrete plan, ready for [`paraconv_pim::simulate`].
    pub plan: ExecutionPlan,
    /// The compacted steady-state kernel.
    pub kernel: KernelSchedule,
    /// The retiming induced by the chosen placements.
    pub retiming: Retiming,
    /// The cache/eDRAM placement of every IPR.
    pub allocation: CacheAllocation,
    /// The Figure 4 classification of every IPR (reporting; clamped to
    /// the Theorem 3.1 bound).
    pub analysis: MovementAnalysis,
}

impl ParaConvOutcome {
    /// The steady-state kernel period `p`.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.kernel.period()
    }

    /// Iteration copies initiated per kernel (the unroll factor `u`).
    #[must_use]
    pub fn unroll(&self) -> u64 {
        self.kernel.copies()
    }

    /// The per-iteration initiation interval `p / u` — the
    /// per-iteration execution time of Figure 5.
    #[must_use]
    pub fn time_per_iteration(&self) -> f64 {
        self.kernel.time_per_iteration()
    }

    /// The maximum retiming value `R_max` — Table 2's metric.
    #[must_use]
    pub fn rmax(&self) -> u64 {
        self.retiming.max_value()
    }

    /// The prologue time `R_max × p`.
    #[must_use]
    pub fn prologue_time(&self) -> u64 {
        self.retiming.prologue_time(self.period())
    }

    /// Total execution time of the planned run (prologue included).
    #[must_use]
    pub fn total_time(&self) -> u64 {
        self.plan.makespan()
    }

    /// Number of IPRs placed in the on-chip cache — Figure 6's metric.
    #[must_use]
    pub fn cached_iprs(&self) -> usize {
        self.allocation.cached_count()
    }
}

/// How the scheduler decides cache placements — the paper's optimal
/// dynamic program by default, with degraded policies available for
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationPolicy {
    /// The §3.3 dynamic program (optimal).
    #[default]
    DynamicProgram,
    /// Greedy by profit density (`ΔR / space`), no backtracking.
    GreedyByDensity,
    /// Everything in eDRAM — isolates the benefit of caching.
    AllEdram,
}

/// The Para-CONV scheduler for a fixed architecture.
///
/// # Examples
///
/// ```
/// use paraconv_graph::examples;
/// use paraconv_pim::{simulate, PimConfig};
/// use paraconv_sched::ParaConvScheduler;
///
/// let g = examples::motivational();
/// let cfg = PimConfig::neurocube(16)?;
/// let outcome = ParaConvScheduler::new(cfg.clone()).schedule(&g, 10)?;
/// // The emitted plan passes full architectural validation.
/// let report = simulate(&g, &outcome.plan, &cfg)?;
/// assert_eq!(report.iterations, 10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParaConvScheduler {
    config: PimConfig,
    policy: AllocationPolicy,
    max_unroll: u64,
}

impl ParaConvScheduler {
    /// Creates a scheduler targeting `config` with the optimal
    /// dynamic-program allocation policy and automatic kernel
    /// unrolling.
    #[must_use]
    pub fn new(config: PimConfig) -> Self {
        ParaConvScheduler {
            config,
            policy: AllocationPolicy::DynamicProgram,
            max_unroll: 64,
        }
    }

    /// Caps the kernel unroll factor (ablation knob; `1` disables
    /// unrolling entirely, isolating its contribution on wide arrays).
    ///
    /// # Panics
    ///
    /// Panics if `max_unroll == 0`.
    #[must_use]
    pub fn with_max_unroll(mut self, max_unroll: u64) -> Self {
        assert!(max_unroll > 0, "unroll cap must be positive");
        self.max_unroll = max_unroll;
        self
    }

    /// Overrides the allocation policy (for ablation studies).
    #[must_use]
    pub fn with_policy(mut self, policy: AllocationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active allocation policy.
    #[must_use]
    pub const fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// The architecture this scheduler targets.
    #[must_use]
    pub const fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Schedules `iterations` iterations of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::ZeroIterations`] for `iterations == 0`
    /// and [`SchedError::Analysis`] if the derived timing inputs are
    /// internally inconsistent (which indicates a bug, not bad input).
    pub fn schedule(
        &self,
        graph: &TaskGraph,
        iterations: u64,
    ) -> Result<ParaConvOutcome, SchedError> {
        self.schedule_impl(graph, iterations, None)
    }

    /// Re-schedules `graph` after a degradation event (a PE fail-stop
    /// shrinking [`PimConfig::failed_pes`] survivors, or a capacity
    /// change), re-solving the cache allocation through a persistent
    /// [`IncrementalDp`] `session`.
    ///
    /// The kernel is re-compacted onto the surviving PEs and the
    /// allocation DP re-runs under the reduced aggregate cache budget.
    /// The session refills only the dynamic-program rows the
    /// degradation actually perturbed (see
    /// [`CacheAllocator::reallocate`]), so replans stay cheap in the
    /// common single-failure case while the resulting allocation — and
    /// therefore the plan — is byte-identical to a cold
    /// [`schedule`](ParaConvScheduler::schedule) on the degraded
    /// configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`ParaConvScheduler::schedule`].
    pub fn reschedule(
        &self,
        graph: &TaskGraph,
        iterations: u64,
        session: &mut IncrementalDp,
    ) -> Result<ParaConvOutcome, SchedError> {
        self.schedule_impl(graph, iterations, Some(session))
    }

    fn schedule_impl(
        &self,
        graph: &TaskGraph,
        iterations: u64,
        session: Option<&mut IncrementalDp>,
    ) -> Result<ParaConvOutcome, SchedError> {
        if iterations == 0 {
            return Err(SchedError::ZeroIterations);
        }
        // Cooperative cancellation: the ambient token (installed by the
        // serve worker's `CancelScope`) is polled at every phase
        // boundary and inside the iteration-proportional emit loop, so
        // a deadline expiry or daemon drain abandons the request
        // within one phase. Plans that *complete* are byte-identical
        // whether or not a token was armed.
        let cancelled = || {
            if paraconv_obs::cancel_requested() {
                Err(SchedError::Cancelled)
            } else {
                Ok(())
            }
        };
        cancelled()?;
        let cost = CostModel::new(&self.config, graph.edge_count());

        // Step 1: objective schedule. The kernel is unrolled by the
        // factor that minimizes the per-iteration initiation interval
        // p/u, so wide arrays initiate several iterations per period.
        // Only surviving PEs receive slots: for a healthy config the
        // active list is the identity and this is byte-identical to the
        // dense compaction.
        let phase = paraconv_obs::span("sched.kernel", "sched");
        let pes: Vec<PeId> = self
            .config
            .active_pe_indices()
            .into_iter()
            .map(PeId::new)
            .collect();
        let kernel = best_kernel(graph, &pes, iterations.min(self.max_unroll));
        let unroll = kernel.copies();
        let p = kernel.period();
        let gaps = kernel.gaps(graph);

        // Step 2: per-edge latencies and true retiming requirements.
        cancelled()?;
        let phase = phase.next("sched.retime.analysis");
        let cache_times: Vec<u64> = graph
            .edges()
            .map(|e| cost.cache_transfer_time(e.size()))
            .collect();
        let edram_times: Vec<u64> = graph
            .edges()
            .map(|e| cost.edram_transfer_time(e.size()))
            .collect();
        let k_cache: Vec<u64> = graph
            .edge_ids()
            .map(|e| minimal_relative_retiming(cache_times[e.index()], gaps[e.index()], p))
            .collect();
        let k_edram: Vec<u64> = graph
            .edge_ids()
            .map(|e| {
                minimal_relative_retiming(edram_times[e.index()], gaps[e.index()], p)
                    .max(k_cache[e.index()])
            })
            .collect();
        // Figure 4 classification (clamped to the Theorem 3.1 bound)
        // for reporting.
        let analysis = MovementAnalysis::analyze(graph, p, &gaps, &cache_times, &edram_times)
            .map_err(|e| SchedError::Analysis(e.to_string()))?;

        cancelled()?;
        let phase = phase.next("sched.alloc");
        // Step 3: optimal allocation. The knapsack space of an IPR is
        // its size scaled by the number of kernel instances its cache
        // residency window can overlap, so steady-state occupancy never
        // exceeds the aggregate capacity.
        let items: Vec<AllocItem> = graph
            .edges()
            .map(|e| {
                let i = e.id().index();
                // Each of the kernel's `unroll` copies caches its own
                // instance; an instance produced at offset `f` with a
                // transfer of `t_c` units is resident during
                // [f, f + t_c), which spans ⌈(f + t_c)/p⌉ kernel
                // windows — that many instances of this copy coexist
                // in steady state.
                let windows: u64 = (0..unroll)
                    .map(|c| {
                        let f = kernel.finish_at(e.src(), c);
                        (f + cache_times[i]).div_ceil(p).max(1)
                    })
                    .sum();
                AllocItem::new(
                    e.id(),
                    e.size() * windows,
                    k_edram[i] - k_cache[i],
                    kernel.start(e.dst()),
                )
            })
            .collect();
        let capacity = match self.policy {
            AllocationPolicy::AllEdram => 0,
            _ => self.config.total_cache_units(),
        };
        let items = match self.policy {
            AllocationPolicy::GreedyByDensity => greedy_prefilter(items, capacity),
            _ => items,
        };
        let allocator = CacheAllocator::new(capacity);
        let allocation = match session {
            Some(session) => allocator.reallocate(session, items),
            None => allocator.allocate(items),
        };
        let placements = allocation.to_placement_vec(graph.edge_count());

        // Step 4: minimal legal retiming for the chosen placements.
        // This check also catches a DP fill that bailed out mid-table:
        // the token stays cancelled, so the partial allocation above is
        // discarded here before anything downstream can observe it.
        cancelled()?;
        let phase = phase.next("sched.retime");
        let requirements: Vec<u64> = graph
            .edge_ids()
            .map(|e| match placements[e.index()] {
                Placement::Cache => k_cache[e.index()],
                Placement::Edram => k_edram[e.index()],
            })
            .collect();
        let retiming = Retiming::from_edge_requirements(graph, &requirements);
        let rmax = retiming.max_value();

        // Step 5: emit the concrete plan. Iteration ℓ occupies copy
        // (ℓ−1) mod u of kernel group (ℓ−1) div u; group g of a node
        // retimed by R(i) executes in kernel window g + R_max − R(i).
        let _phase = phase.next("sched.emit");
        let mut plan = ExecutionPlan::new(iterations);
        for iter in 1..=iterations {
            if iter % 64 == 0 {
                cancelled()?;
            }
            let group = (iter - 1) / unroll;
            let copy = (iter - 1) % unroll;
            for node in graph.nodes() {
                let r = retiming
                    .node_value(node.id())
                    .map_err(|e| SchedError::Analysis(e.to_string()))?;
                let start = (group + rmax - r) * p + kernel.start_at(node.id(), copy);
                plan.push_task(PlannedTask {
                    node: node.id(),
                    iteration: iter,
                    pe: kernel.pe_at(node.id(), copy),
                    start,
                    duration: node.exec_time(),
                });
            }
            for ipr in graph.edges() {
                let i = ipr.id().index();
                let r_src = retiming
                    .node_value(ipr.src())
                    .map_err(|e| SchedError::Analysis(e.to_string()))?;
                let producer_finish =
                    (group + rmax - r_src) * p + kernel.finish_at(ipr.src(), copy);
                let placement = placements[i];
                let duration = match placement {
                    Placement::Cache => cache_times[i],
                    Placement::Edram => edram_times[i],
                };
                plan.push_transfer(PlannedTransfer {
                    edge: ipr.id(),
                    iteration: iter,
                    placement,
                    start: producer_finish,
                    duration,
                    dst_pe: kernel.pe_at(ipr.dst(), copy),
                });
            }
        }

        paraconv_obs::flight_record("sched", "schedule.done", plan.makespan(), pes.len() as u64);
        Ok(ParaConvOutcome {
            plan,
            kernel,
            retiming,
            allocation,
            analysis,
        })
    }
}

/// Picks the kernel unroll factor minimizing the per-iteration
/// initiation interval `p_u / u` (ties favour the smaller unroll and
/// therefore the smaller plan). The search stops at the point where
/// the resource bound `⌈u·W/N⌉/u` has converged. Slots land only on
/// the PEs in `pes` (the surviving engines).
fn best_kernel(graph: &TaskGraph, pes: &[PeId], iterations: u64) -> KernelSchedule {
    let work = graph.total_exec_time().max(1);
    let max_c = graph
        .nodes()
        .map(paraconv_graph::TaskNode::exec_time)
        .max()
        .unwrap_or(1);
    // Beyond u·W ≥ 2·N·max_c the ratio is within one task of its
    // asymptote W/N; cap the search there (and at the iteration count
    // and a hard bound to keep plans small).
    let u_max = (2 * pes.len() as u64 * max_c)
        .div_ceil(work)
        .clamp(1, 64)
        .min(iterations);
    // u = 1 always exists, so the fold needs no Option.
    let mut best = KernelSchedule::compact_copies_on(graph, pes, 1);
    for u in 2..=u_max {
        let candidate = KernelSchedule::compact_copies_on(graph, pes, u);
        if candidate.time_per_iteration() < best.time_per_iteration() {
            best = candidate;
        }
    }
    best
}

/// Greedy profit-density prefilter for
/// [`AllocationPolicy::GreedyByDensity`]: keeps the zero-`ΔR` items
/// (they are routed to eDRAM regardless) and the greedy-feasible
/// prefix of the positive items; the downstream DP then trivially
/// takes everything that survived.
fn greedy_prefilter(items: Vec<AllocItem>, capacity: u64) -> Vec<AllocItem> {
    let (zero, mut positive): (Vec<AllocItem>, Vec<AllocItem>) =
        items.into_iter().partition(|i| i.delta_r() == 0);
    // Highest ΔR per space unit first; deterministic ties by edge id.
    // Densities are compared by u128 cross-multiplication: the old
    // fixed-point key `ΔR·1000 / space` both overflowed u64 for large
    // ΔR and collapsed distinct densities into one bucket, letting the
    // edge-id tiebreak pick the *worse* item.
    positive.sort_by(|a, b| {
        let lhs = u128::from(b.delta_r()) * u128::from(a.space().max(1));
        let rhs = u128::from(a.delta_r()) * u128::from(b.space().max(1));
        lhs.cmp(&rhs).then_with(|| a.edge().cmp(&b.edge()))
    });
    let mut used = 0u64;
    let mut kept = zero;
    for item in positive {
        if used + item.space() <= capacity {
            used += item.space();
            kept.push(item);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::{examples, EdgeId};
    use paraconv_pim::simulate;

    fn schedule_and_simulate(
        graph: &TaskGraph,
        pes: usize,
        iterations: u64,
    ) -> (ParaConvOutcome, paraconv_pim::SimReport) {
        let cfg = PimConfig::neurocube(pes).unwrap();
        let outcome = ParaConvScheduler::new(cfg.clone())
            .schedule(graph, iterations)
            .unwrap();
        let report = simulate(graph, &outcome.plan, &cfg).unwrap();
        // Every emitted plan must also satisfy the independent auditor.
        paraconv_pim::audit(graph, &outcome.plan, &cfg, &report).unwrap();
        (outcome, report)
    }

    #[test]
    fn cancelled_token_aborts_with_typed_error() {
        let g = examples::motivational();
        let cfg = PimConfig::neurocube(4).unwrap();
        let token = paraconv_obs::CancelToken::new();
        token.cancel();
        let _scope = paraconv_obs::CancelScope::enter(token);
        let err = ParaConvScheduler::new(cfg).schedule(&g, 12).unwrap_err();
        assert_eq!(err, SchedError::Cancelled);
    }

    #[test]
    fn armed_but_unfired_token_changes_nothing() {
        let g = examples::motivational();
        let cfg = PimConfig::neurocube(4).unwrap();
        let plain = ParaConvScheduler::new(cfg.clone())
            .schedule(&g, 12)
            .unwrap();
        let _scope = paraconv_obs::CancelScope::enter(paraconv_obs::CancelToken::new());
        let scoped = ParaConvScheduler::new(cfg).schedule(&g, 12).unwrap();
        assert_eq!(plain.plan, scoped.plan, "an idle token must be invisible");
    }

    #[test]
    fn motivational_example_validates() {
        let g = examples::motivational();
        let (outcome, report) = schedule_and_simulate(&g, 4, 12);
        assert_eq!(report.iterations, 12);
        // Five unit tasks on 4 PEs: at most 2 slots per iteration copy.
        assert!(outcome.time_per_iteration() <= 2.0);
        // Steady state: one kernel per iteration group plus prologue;
        // the run ends inside the last kernel window.
        let groups = 12u64.div_ceil(outcome.unroll());
        assert!(outcome.total_time() <= (outcome.rmax() + groups) * outcome.period());
        assert!(outcome.total_time() > (outcome.rmax() + groups - 1) * outcome.period());
    }

    #[test]
    fn plans_validate_across_pe_counts() {
        let g = examples::fork_join(9);
        for pes in [1, 2, 4, 16, 64] {
            let (_, report) = schedule_and_simulate(&g, pes, 5);
            assert_eq!(report.iterations, 5);
        }
    }

    #[test]
    fn more_pes_shorten_the_iteration() {
        let g = examples::fork_join(30);
        let (o16, _) = schedule_and_simulate(&g, 16, 8);
        let (o64, _) = schedule_and_simulate(&g, 64, 8);
        assert!(o64.time_per_iteration() < o16.time_per_iteration());
    }

    #[test]
    fn retiming_is_legal_and_bounded_per_edge() {
        let g = examples::chain(8);
        let (outcome, _) = schedule_and_simulate(&g, 4, 3);
        assert!(outcome.retiming.check_legal(&g).is_ok());
    }

    #[test]
    fn cache_capacity_never_exceeded() {
        let g = examples::fork_join(20);
        let cfg = PimConfig::builder(8).per_pe_cache_units(1).build().unwrap();
        let outcome = ParaConvScheduler::new(cfg.clone()).schedule(&g, 8).unwrap();
        let report = simulate(&g, &outcome.plan, &cfg).unwrap();
        assert!(report.peak_cache_occupancy <= report.cache_capacity);
    }

    #[test]
    fn zero_iterations_rejected() {
        let g = examples::chain(2);
        let cfg = PimConfig::neurocube(16).unwrap();
        assert_eq!(
            ParaConvScheduler::new(cfg).schedule(&g, 0).unwrap_err(),
            SchedError::ZeroIterations
        );
    }

    #[test]
    fn bigger_cache_never_increases_rmax() {
        let g = examples::fork_join(24);
        let small = PimConfig::builder(8).per_pe_cache_units(1).build().unwrap();
        let large = PimConfig::builder(8)
            .per_pe_cache_units(16)
            .build()
            .unwrap();
        let r_small = ParaConvScheduler::new(small)
            .schedule(&g, 2)
            .unwrap()
            .rmax();
        let r_large = ParaConvScheduler::new(large)
            .schedule(&g, 2)
            .unwrap()
            .rmax();
        assert!(r_large <= r_small);
    }

    #[test]
    fn unroll_cap_isolates_unrolling_benefit() {
        // A narrow graph on a wide array: unrolling is what keeps the
        // per-iteration rate dropping.
        let g = examples::motivational();
        let cfg = PimConfig::neurocube(16).unwrap();
        let capped = ParaConvScheduler::new(cfg.clone())
            .with_max_unroll(1)
            .schedule(&g, 8)
            .unwrap();
        let free = ParaConvScheduler::new(cfg.clone()).schedule(&g, 8).unwrap();
        assert_eq!(capped.unroll(), 1);
        assert!(free.unroll() > 1);
        assert!(free.time_per_iteration() < capped.time_per_iteration());
        // Both remain valid plans.
        assert!(simulate(&g, &capped.plan, &cfg).is_ok());
        assert!(simulate(&g, &free.plan, &cfg).is_ok());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_unroll_cap_panics() {
        let cfg = PimConfig::neurocube(4).unwrap();
        let _ = ParaConvScheduler::new(cfg).with_max_unroll(0);
    }

    #[test]
    fn policies_order_as_expected() {
        // Optimal DP ≥ greedy ≥ all-eDRAM in bought profit, and the
        // induced R_max orders the other way.
        let g = examples::fork_join(24);
        let cfg = PimConfig::builder(8).per_pe_cache_units(2).build().unwrap();
        let run = |policy| {
            ParaConvScheduler::new(cfg.clone())
                .with_policy(policy)
                .schedule(&g, 2)
                .unwrap()
        };
        let dp = run(AllocationPolicy::DynamicProgram);
        let greedy = run(AllocationPolicy::GreedyByDensity);
        let none = run(AllocationPolicy::AllEdram);
        assert!(dp.allocation.total_profit() >= greedy.allocation.total_profit());
        assert_eq!(none.allocation.total_profit(), 0);
        assert!(dp.rmax() <= greedy.rmax());
        assert!(greedy.rmax() <= none.rmax());
        // All three plans stay valid.
        for outcome in [&dp, &greedy, &none] {
            assert!(simulate(&g, &outcome.plan, &cfg).is_ok());
        }
    }

    #[test]
    fn greedy_orders_by_true_density() {
        // Regression for the fixed-point density key `ΔR·1000/space`:
        // item A (ΔR=6668, sp=10000, density 0.6668) and item B (ΔR=2,
        // sp=3, density 0.6667) both hashed to bucket 666, and the
        // edge-id tiebreak put B first — with capacity 10000 the greedy
        // then kept only B, buying profit 2 instead of 6668.
        let a = AllocItem::new(EdgeId::new(5), 10_000, 6_668, 1);
        let b = AllocItem::new(EdgeId::new(3), 3, 2, 1);
        let kept = greedy_prefilter(vec![b, a], 10_000);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].edge(), EdgeId::new(5));
    }

    #[test]
    fn greedy_density_key_does_not_overflow() {
        // ΔR values near u64::MAX overflowed the old `ΔR·1000`
        // product; cross-multiplication in u128 keeps the comparison
        // exact. The denser huge item must win the single slot.
        let huge = AllocItem::new(EdgeId::new(1), 4, u64::MAX / 2, 1);
        let small = AllocItem::new(EdgeId::new(0), 4, 7, 1);
        let kept = greedy_prefilter(vec![small, huge], 4);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].edge(), EdgeId::new(1));
    }

    #[test]
    fn greedy_keeps_zero_profit_items_and_prefix() {
        // Zero-ΔR items ride along regardless of capacity; positive
        // items fill greedily by density.
        let zero = AllocItem::new(EdgeId::new(9), 100, 0, 1);
        let dense = AllocItem::new(EdgeId::new(1), 2, 10, 1);
        let sparse = AllocItem::new(EdgeId::new(2), 8, 10, 1);
        let kept = greedy_prefilter(vec![sparse, zero, dense], 6);
        let edges: Vec<EdgeId> = kept.iter().map(|i| i.edge()).collect();
        assert_eq!(edges, vec![EdgeId::new(9), EdgeId::new(1)]);
    }

    #[test]
    fn degraded_config_schedules_onto_survivors() {
        let g = examples::fork_join(12);
        let cfg = PimConfig::builder(4).failed_pes(vec![1]).build().unwrap();
        let outcome = ParaConvScheduler::new(cfg.clone()).schedule(&g, 6).unwrap();
        for t in outcome.plan.tasks() {
            assert_ne!(t.pe, PeId::new(1), "task placed on failed PE");
        }
        // The degraded plan still passes full validation + audit under
        // the degraded config (which rejects tasks on failed PEs).
        let report = simulate(&g, &outcome.plan, &cfg).unwrap();
        paraconv_pim::audit(&g, &outcome.plan, &cfg, &report).unwrap();
    }

    #[test]
    fn healthy_config_is_unchanged_by_the_pe_list_path() {
        // The active-PE list is the identity for a healthy config, so
        // plans must be byte-identical to what the dense path emitted.
        let g = examples::motivational();
        let cfg = PimConfig::neurocube(4).unwrap();
        let outcome = ParaConvScheduler::new(cfg.clone()).schedule(&g, 8).unwrap();
        let report = simulate(&g, &outcome.plan, &cfg).unwrap();
        assert_eq!(report.iterations, 8);
    }

    #[test]
    fn reschedule_through_a_session_matches_cold_schedules() {
        let g = examples::fork_join(24);
        let cfg = PimConfig::builder(8).per_pe_cache_units(4).build().unwrap();
        let healthy = ParaConvScheduler::new(cfg.clone()).schedule(&g, 4).unwrap();
        // Same capacity: the session re-solve reuses every DP row and
        // the outcome is byte-identical to the cold schedule.
        let mut session = paraconv_alloc::IncrementalDp::new();
        let again = ParaConvScheduler::new(cfg.clone())
            .reschedule(&g, 4, &mut session)
            .unwrap();
        assert_eq!(healthy.allocation, again.allocation);
        assert_eq!(healthy.plan, again.plan);

        // Degraded capacity: the incremental replan must reproduce the
        // cold solve on the surviving configuration exactly, and the
        // plan still validates and audits.
        let degraded_cfg = cfg.degrade(&[3]).unwrap();
        assert!(degraded_cfg.total_cache_units() < cfg.total_cache_units());
        let degraded = ParaConvScheduler::new(degraded_cfg.clone())
            .reschedule(&g, 4, &mut session)
            .unwrap();
        let cold = ParaConvScheduler::new(degraded_cfg.clone())
            .schedule(&g, 4)
            .unwrap();
        assert_eq!(degraded.allocation, cold.allocation);
        assert_eq!(degraded.plan, cold.plan);
        for t in degraded.plan.tasks() {
            assert_ne!(t.pe, PeId::new(3), "task placed on failed PE");
        }
        let report = simulate(&g, &degraded.plan, &degraded_cfg).unwrap();
        paraconv_pim::audit(&g, &degraded.plan, &degraded_cfg, &report).unwrap();
    }

    #[test]
    fn offchip_fetches_drop_with_more_cache() {
        let g = examples::fork_join(24);
        let small = PimConfig::builder(8).per_pe_cache_units(1).build().unwrap();
        let large = PimConfig::builder(8)
            .per_pe_cache_units(32)
            .build()
            .unwrap();
        let r_small = {
            let o = ParaConvScheduler::new(small.clone())
                .schedule(&g, 4)
                .unwrap();
            simulate(&g, &o.plan, &small).unwrap()
        };
        let r_large = {
            let o = ParaConvScheduler::new(large.clone())
                .schedule(&g, 4)
                .unwrap();
            simulate(&g, &o.plan, &large).unwrap()
        };
        assert!(r_large.offchip_fetches <= r_small.offchip_fetches);
        assert!(r_large.onchip_hits >= r_small.onchip_hits);
    }
}
