//! Schedulers for Para-CONV.
//!
//! Two schedulers target the same PIM architecture model and emit
//! plans for the same validating simulator
//! ([`paraconv_pim::simulate`]):
//!
//! * [`ParaConvScheduler`] — the paper's contribution: kernel
//!   compaction, movement analysis, the optimal cache-allocation
//!   dynamic program, retiming, and software-pipelined plan emission
//!   with a prologue of `R_max` iterations;
//! * [`SpartaScheduler`] — the baseline (SPARTA, CODES'16):
//!   sensor-characterized priority list scheduling of co-scheduled
//!   independent iterations, greedy cache allocation, no retiming.
//!
//! [`KernelSchedule`] is the shared compaction step, exposed for
//! analyses and tests.
//!
//! # Examples
//!
//! Comparing both schedulers on the motivational example:
//!
//! ```
//! use paraconv_graph::examples;
//! use paraconv_pim::{simulate, PimConfig};
//! use paraconv_sched::{ParaConvScheduler, SpartaScheduler};
//!
//! let g = examples::motivational();
//! let cfg = PimConfig::neurocube(4)?;
//! let para = ParaConvScheduler::new(cfg.clone()).schedule(&g, 20)?;
//! let sparta = SpartaScheduler::new(cfg.clone()).schedule(&g, 20)?;
//! let para_time = simulate(&g, &para.plan, &cfg)?.total_time;
//! let sparta_time = simulate(&g, &sparta.plan, &cfg)?.total_time;
//! assert!(para_time <= sparta_time);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod error;
mod kernel;
mod paraconv;
mod rotation;
mod sparta;

pub use error::SchedError;
pub use kernel::KernelSchedule;
pub use paraconv::{AllocationPolicy, ParaConvOutcome, ParaConvScheduler};
pub use rotation::{rotation_schedule, rotation_schedule_on, RotationResult};
pub use sparta::{BaselineCachePolicy, SpartaOutcome, SpartaScheduler};
