//! Kernel compaction: packing one iteration's operations onto the PE
//! array.
//!
//! Para-CONV's retiming transforms intra-iteration dependencies into
//! inter-iteration dependencies, so the steady-state *kernel* packs all
//! operations of one logical iteration as tightly as the PE count
//! allows — "all convolution operations in each iteration are compacted
//! to achieve the minimum execution time" (§2.3). The compaction
//! processes operations in topological order (keeping producers early,
//! which maximizes intra-kernel slack for their IPRs) and assigns each
//! to the earliest-available PE.

use paraconv_graph::{EdgeId, NodeId, TaskGraph};
use paraconv_pim::PeId;

/// A compacted steady-state kernel: one `(PE, start offset)` per
/// operation, with the kernel period equal to the packing's makespan.
///
/// # Examples
///
/// ```
/// use paraconv_graph::examples;
/// use paraconv_sched::KernelSchedule;
///
/// // Five unit-time operations on 4 PEs pack into 2 time units.
/// let g = examples::motivational();
/// let kernel = KernelSchedule::compact(&g, 4);
/// assert_eq!(kernel.period(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelSchedule {
    period: u64,
    copies: u64,
    node_count: usize,
    /// Indexed `copy * node_count + node`.
    pe_of: Vec<PeId>,
    start_of: Vec<u64>,
    finish_of: Vec<u64>,
}

impl KernelSchedule {
    /// Packs one copy of every operation of `graph` onto `num_pes`
    /// engines — [`compact_copies`](Self::compact_copies) with one
    /// copy.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0`.
    #[must_use]
    pub fn compact(graph: &TaskGraph, num_pes: usize) -> Self {
        Self::compact_copies(graph, num_pes, 1)
    }

    /// Packs `copies` iteration copies of `graph` onto `num_pes`
    /// engines.
    ///
    /// Unrolling lets the steady-state kernel initiate several logical
    /// iterations per period when the array is wider than one
    /// iteration's workload, so the per-iteration initiation interval
    /// `p / copies` keeps dropping as PEs are added.
    ///
    /// Operations are taken in topological order (copies interleaved)
    /// and greedily assigned to the PE that frees up first (ties broken
    /// by lowest PE index), so the period is the classic
    /// list-scheduling makespan of the *independent* task set — at
    /// most `⌈copies·Σc_i / N⌉ + max c_i` and at least
    /// `max(⌈copies·Σc_i / N⌉, max c_i)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0` or `copies == 0`.
    #[must_use]
    pub fn compact_copies(graph: &TaskGraph, num_pes: usize, copies: u64) -> Self {
        assert!(num_pes > 0, "PE count must be positive");
        let pes: Vec<PeId> = (0..num_pes as u32).map(PeId::new).collect();
        Self::compact_copies_on(graph, &pes, copies)
    }

    /// [`compact_copies`](Self::compact_copies) over an explicit PE
    /// list instead of the full `0..num_pes` array — the degraded-mode
    /// entry point: after a fail-stop, the scheduler passes only the
    /// surviving PEs and every slot of the dead engine is remapped
    /// onto them.
    ///
    /// With the identity list `[PE0, PE1, …]` this is byte-identical
    /// to [`compact_copies`](Self::compact_copies): the earliest-
    /// available tie-break is by list position, which then coincides
    /// with the PE index.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is empty (no surviving PE — callers gate this
    /// through `PimConfig::degrade`, which rejects a fully failed
    /// array) or `copies == 0`.
    #[must_use]
    pub fn compact_copies_on(graph: &TaskGraph, pes: &[PeId], copies: u64) -> Self {
        assert!(!pes.is_empty(), "surviving PE list must be positive");
        assert!(copies > 0, "copy count must be positive");
        // lint: allow(no-unwrap) — the compact schedule assigns every node before any accessor runs
        let order = graph.topological_order().expect("built graphs are acyclic");
        let n = graph.node_count();
        let total = n * copies as usize;
        let mut avail = vec![0u64; pes.len()];
        let mut pe_of = vec![PeId::new(0); total];
        let mut start_of = vec![0u64; total];
        let mut finish_of = vec![0u64; total];
        for id in order {
            // lint: allow(no-unwrap) — the compact schedule assigns every node before any accessor runs
            let c = graph.node(id).expect("node from topo order").exec_time();
            for copy in 0..copies as usize {
                let slot = copy * n + id.index();
                let (pos, _) = avail
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &t)| (t, i))
                    // lint: allow(no-unwrap) — the compact schedule assigns every node before any accessor runs
                    .expect("at least one PE");
                pe_of[slot] = pes[pos];
                start_of[slot] = avail[pos];
                finish_of[slot] = avail[pos] + c;
                avail[pos] += c;
            }
        }
        let period = avail.into_iter().max().unwrap_or(0).max(1);
        KernelSchedule {
            period,
            copies,
            node_count: n,
            pe_of,
            start_of,
            finish_of,
        }
    }

    /// Number of iteration copies packed per kernel.
    #[must_use]
    pub const fn copies(&self) -> u64 {
        self.copies
    }

    /// The per-iteration initiation interval `p / copies`.
    #[must_use]
    pub fn time_per_iteration(&self) -> f64 {
        self.period as f64 / self.copies as f64
    }

    /// The kernel period `p` — the steady-state execution time of one
    /// iteration (Figure 5's metric).
    #[must_use]
    pub const fn period(&self) -> u64 {
        self.period
    }

    /// The PE an operation's first copy runs on.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the compacted graph.
    #[must_use]
    pub fn pe(&self, node: NodeId) -> PeId {
        self.pe_at(node, 0)
    }

    /// The PE the operation's `copy`-th kernel copy runs on.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `copy` is out of range.
    #[must_use]
    pub fn pe_at(&self, node: NodeId, copy: u64) -> PeId {
        self.pe_of[self.slot(node, copy)]
    }

    /// The first copy's start offset within the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the compacted graph.
    #[must_use]
    pub fn start(&self, node: NodeId) -> u64 {
        self.start_at(node, 0)
    }

    /// The `copy`-th copy's start offset within the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `copy` is out of range.
    #[must_use]
    pub fn start_at(&self, node: NodeId, copy: u64) -> u64 {
        self.start_of[self.slot(node, copy)]
    }

    /// The first copy's finish offset within the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the compacted graph.
    #[must_use]
    pub fn finish(&self, node: NodeId) -> u64 {
        self.finish_at(node, 0)
    }

    /// The `copy`-th copy's finish offset within the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `copy` is out of range.
    #[must_use]
    pub fn finish_at(&self, node: NodeId, copy: u64) -> u64 {
        self.finish_of[self.slot(node, copy)]
    }

    fn slot(&self, node: NodeId, copy: u64) -> usize {
        assert!(copy < self.copies, "copy out of range");
        copy as usize * self.node_count + node.index()
    }

    /// The raw per-slot PE assignments, indexed
    /// `copy * node_count + node` — the serialization counterpart of
    /// [`pe_at`](Self::pe_at).
    #[must_use]
    pub fn pe_slots(&self) -> &[PeId] {
        &self.pe_of
    }

    /// The raw per-slot start offsets (same indexing as
    /// [`pe_slots`](Self::pe_slots)).
    #[must_use]
    pub fn start_slots(&self) -> &[u64] {
        &self.start_of
    }

    /// The raw per-slot finish offsets (same indexing as
    /// [`pe_slots`](Self::pe_slots)).
    #[must_use]
    pub fn finish_slots(&self) -> &[u64] {
        &self.finish_of
    }

    /// Rebuilds a kernel from its recorded parts, as stored in a plan
    /// artifact.
    ///
    /// Only shape is validated here (each slot vector must hold
    /// `copies × node_count` entries and the period must be positive);
    /// schedule legality is re-proved by the verifier gate on import.
    ///
    /// # Errors
    ///
    /// Returns a description of the shape violation.
    pub fn from_parts(
        period: u64,
        copies: u64,
        node_count: usize,
        pe_of: Vec<PeId>,
        start_of: Vec<u64>,
        finish_of: Vec<u64>,
    ) -> Result<Self, String> {
        if period == 0 {
            return Err("kernel period must be positive".to_owned());
        }
        let slots = usize::try_from(copies)
            .ok()
            .and_then(|c| c.checked_mul(node_count))
            .ok_or_else(|| "copies × node_count overflows".to_owned())?;
        for (name, len) in [
            ("pe", pe_of.len()),
            ("start", start_of.len()),
            ("finish", finish_of.len()),
        ] {
            if len != slots {
                return Err(format!(
                    "kernel `{name}` slots: expected copies × node_count = {slots}, got {len}"
                ));
            }
        }
        Ok(KernelSchedule {
            period,
            copies,
            node_count,
            pe_of,
            start_of,
            finish_of,
        })
    }

    /// The signed intra-kernel slack of an edge for one copy: the
    /// consumer's start offset minus the producer's finish offset.
    ///
    /// # Panics
    ///
    /// Panics if `edge` or `copy` is out of range.
    #[must_use]
    pub fn gap_at(&self, graph: &TaskGraph, edge: EdgeId, copy: u64) -> i64 {
        // lint: allow(no-unwrap) — the compact schedule assigns every node before any accessor runs
        let ipr = graph.edge(edge).expect("edge in compacted graph");
        self.start_at(ipr.dst(), copy) as i64 - self.finish_at(ipr.src(), copy) as i64
    }

    /// The edge's worst (smallest) slack over all copies — the value
    /// retiming requirements must cover.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range for `graph`.
    #[must_use]
    pub fn gap(&self, graph: &TaskGraph, edge: EdgeId) -> i64 {
        (0..self.copies)
            .map(|c| self.gap_at(graph, edge, c))
            .min()
            // lint: allow(no-unwrap) — the compact schedule assigns every node before any accessor runs
            .expect("at least one copy")
    }

    /// All worst-case edge gaps in edge-ID order.
    #[must_use]
    pub fn gaps(&self, graph: &TaskGraph) -> Vec<i64> {
        graph.edge_ids().map(|e| self.gap(graph, e)).collect()
    }

    /// Number of operations packed per copy.
    #[must_use]
    pub const fn node_count(&self) -> usize {
        self.node_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::examples;

    #[test]
    fn packs_within_bounds() {
        let g = examples::fork_join(10); // 12 unit tasks
        for pes in [1, 2, 4, 8, 16] {
            let k = KernelSchedule::compact(&g, pes);
            let lower = (g.total_exec_time()).div_ceil(pes as u64).max(1);
            assert!(k.period() >= lower, "pes={pes}");
            assert!(k.period() <= lower + 1, "pes={pes}"); // unit tasks pack tightly
        }
    }

    #[test]
    fn single_pe_serializes() {
        let g = examples::chain(5);
        let k = KernelSchedule::compact(&g, 1);
        assert_eq!(k.period(), 5);
        // Topological order on one PE: consecutive, gap 0 for chain edges.
        for e in g.edge_ids() {
            assert_eq!(k.gap(&g, e), 0);
        }
    }

    #[test]
    fn no_pe_overlap() {
        let g = examples::fork_join(7);
        let k = KernelSchedule::compact(&g, 3);
        for a in g.node_ids() {
            for b in g.node_ids() {
                if a < b && k.pe(a) == k.pe(b) {
                    let disjoint = k.finish(a) <= k.start(b) || k.finish(b) <= k.start(a);
                    assert!(disjoint, "{a} and {b} overlap on {}", k.pe(a));
                }
            }
        }
    }

    #[test]
    fn all_operations_fit_in_period() {
        let g = examples::motivational();
        let k = KernelSchedule::compact(&g, 4);
        for n in g.node_ids() {
            assert!(k.finish(n) <= k.period());
        }
        assert_eq!(k.node_count(), g.node_count());
    }

    #[test]
    fn topological_order_keeps_most_gaps_nonnegative_on_wide_machine() {
        // With as many PEs as nodes, each op starts at its predecessor
        // count boundary; chains stay ordered.
        let g = examples::chain(4);
        let k = KernelSchedule::compact(&g, 4);
        for e in g.edge_ids() {
            assert!(k.gap(&g, e) >= -(k.period() as i64));
        }
    }

    #[test]
    fn period_is_at_least_one() {
        let g = examples::chain(1);
        let k = KernelSchedule::compact(&g, 8);
        assert_eq!(k.period(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pes_panics() {
        let _ = KernelSchedule::compact(&examples::chain(2), 0);
    }

    #[test]
    fn identity_pe_list_matches_the_dense_compaction() {
        let g = examples::fork_join(9);
        for pes in [1, 3, 8] {
            let list: Vec<PeId> = (0..pes as u32).map(PeId::new).collect();
            for copies in [1, 2, 4] {
                assert_eq!(
                    KernelSchedule::compact_copies(&g, pes, copies),
                    KernelSchedule::compact_copies_on(&g, &list, copies),
                    "pes={pes} copies={copies}"
                );
            }
        }
    }

    #[test]
    fn degraded_list_remaps_onto_survivors() {
        let g = examples::fork_join(10);
        // PE1 of four died; slots must land only on the survivors.
        let survivors = [PeId::new(0), PeId::new(2), PeId::new(3)];
        let k = KernelSchedule::compact_copies_on(&g, &survivors, 2);
        for n in g.node_ids() {
            for copy in 0..2 {
                assert_ne!(k.pe_at(n, copy), PeId::new(1), "slot on dead PE");
            }
        }
        // Three survivors pack no tighter than three healthy PEs.
        let healthy = KernelSchedule::compact_copies(&g, 3, 2);
        assert_eq!(k.period(), healthy.period());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_pe_list_panics() {
        let _ = KernelSchedule::compact_copies_on(&examples::chain(2), &[], 1);
    }
}
