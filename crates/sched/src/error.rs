//! Scheduler errors.

use core::fmt;

/// Errors produced by the schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// Zero iterations were requested; a periodic dataflow runs at
    /// least once.
    ZeroIterations,
    /// The movement analysis rejected the derived timing inputs; this
    /// indicates an internal inconsistency and carries the message.
    Analysis(String),
    /// The request's [`CancelToken`](paraconv_obs::CancelToken) fired
    /// (deadline expiry or daemon drain); the partial work was
    /// discarded at a phase boundary.
    Cancelled,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::ZeroIterations => f.write_str("at least one iteration must be scheduled"),
            SchedError::Analysis(msg) => write!(f, "movement analysis failed: {msg}"),
            SchedError::Cancelled => f.write_str("scheduling cancelled before completion"),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SchedError::ZeroIterations.to_string().is_empty());
        assert!(SchedError::Analysis("x".into()).to_string().contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchedError>();
    }
}
