//! Property-based tests for the synthetic graph generator: exact
//! vertex/edge counts, acyclicity, connectivity and per-seed
//! determinism over the whole feasible spec space the differential
//! harness draws from.

use proptest::prelude::*;

use paraconv_synth::{SynthError, SyntheticSpec};

/// Feasible `(vertices, edges, seed)` triples: `e ∈ [v, 2v]` always
/// covers the connectivity minimum; when the auto-chosen levels cap the
/// forward-pair count lower (small `v`), clamp to that cap.
fn arb_spec() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..64, 0u64..u64::MAX / 2).prop_flat_map(|(v, seed)| {
        (Just(v), v..=2 * v, Just(seed)).prop_map(|(v, e, seed)| {
            match SyntheticSpec::new("prop", v, e).seed(seed).generate() {
                Ok(_) => (v, e, seed),
                Err(SynthError::TooManyEdges { maximum, .. }) => (v, maximum, seed),
                Err(err) => panic!("spec should be realizable: {err}"),
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_graphs_hit_exact_counts((v, e, seed) in arb_spec()) {
        // The published Table 1 counts are the whole point of the
        // generator: both totals must match the spec exactly.
        let g = SyntheticSpec::new("prop", v, e).seed(seed).generate().unwrap();
        prop_assert_eq!(g.node_count(), v);
        prop_assert_eq!(g.edge_count(), e);
    }

    #[test]
    fn generated_graphs_are_acyclic_and_connected((v, e, seed) in arb_spec()) {
        let g = SyntheticSpec::new("prop", v, e).seed(seed).generate().unwrap();
        prop_assert!(g.topological_order().is_ok(), "generated graph has a cycle");
        // Connectivity: every vertex outside the input level consumes
        // at least one IPR, so nothing floats disconnected past the
        // first level.
        let sources = g.sources();
        for id in g.node_ids() {
            let incoming = g.in_edges(id).unwrap();
            prop_assert!(
                !incoming.is_empty() || sources.contains(&id),
                "non-source vertex {:?} has no incoming IPR", id
            );
        }
        // Every edge is a real forward IPR with positive footprint.
        for ipr in g.edges() {
            prop_assert!(ipr.src() != ipr.dst());
            prop_assert!(ipr.size() >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed((v, e, seed) in arb_spec()) {
        let spec = SyntheticSpec::new("prop", v, e).seed(seed);
        prop_assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
    }

    #[test]
    fn different_seeds_vary_the_topology(v in 12usize..40, seed in 0u64..1_000_000) {
        // Not a strict requirement of any caller, but if every seed
        // produced the same graph the differential harness would lose
        // all its coverage, so guard the generator's use of the seed.
        let a = SyntheticSpec::new("prop", v, 2 * v).seed(seed).generate().unwrap();
        let b = SyntheticSpec::new("prop", v, 2 * v).seed(seed ^ 0x5DEE_CE66).generate().unwrap();
        let c = SyntheticSpec::new("prop", v, 2 * v).seed(seed.wrapping_add(17)).generate().unwrap();
        prop_assert!(a != b || a != c, "seed has no effect on the generated graph");
    }
}
