//! Synthetic task graphs and the Para-CONV benchmark suite.
//!
//! The paper's evaluation (§4.1) uses CNN applications — several from
//! GoogLeNet ConvNet, plus synthetic task graphs with over 500
//! convolutions — partitioned by functionality into task graphs. Only
//! the vertex/edge counts are published, so this crate regenerates
//! structurally faithful graphs at *exactly* those sizes:
//!
//! * [`SyntheticSpec`] — a seeded layered-DAG generator with CNN-like
//!   structure (levelled operations, forward edges biased to adjacent
//!   levels, every non-input operation fed by an earlier one);
//! * [`benchmarks`] — the twelve Table 1 benchmarks (`cat` …
//!   `protein`) with pinned seeds, so every run of the evaluation
//!   harness sees identical graphs.
//!
//! # Examples
//!
//! ```
//! use paraconv_synth::benchmarks;
//!
//! let protein = benchmarks::by_name("protein").unwrap().graph()?;
//! assert_eq!(protein.node_count(), 546);
//! assert_eq!(protein.edge_count(), 1449);
//! # Ok::<(), paraconv_synth::SynthError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod benchmarks;
mod generator;

pub use benchmarks::Benchmark;
pub use generator::{SynthError, SyntheticSpec};
