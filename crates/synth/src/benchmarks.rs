//! The twelve evaluation benchmarks of Table 1.
//!
//! The paper evaluates on CNN applications partitioned into task
//! graphs; only the name, vertex count and edge count of each are
//! published. These specs regenerate graphs at exactly those sizes,
//! deterministically (fixed per-benchmark seeds), ordered as in
//! Table 1 from `cat` (9 vertices, 21 IPRs) to `protein`
//! (546 vertices, 1449 IPRs).

use paraconv_graph::TaskGraph;

use crate::{SynthError, SyntheticSpec};

/// One named benchmark of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Benchmark {
    name: &'static str,
    vertices: usize,
    edges: usize,
    seed: u64,
}

impl Benchmark {
    /// The benchmark's name as printed in Table 1.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The "# of vertex" column: convolution/pooling operations.
    #[must_use]
    pub const fn vertices(&self) -> usize {
        self.vertices
    }

    /// The "# of edge" column: intermediate processing results.
    #[must_use]
    pub const fn edges(&self) -> usize {
        self.edges
    }

    /// Regenerates the benchmark's task graph (deterministic).
    ///
    /// # Errors
    ///
    /// Returns a [`SynthError`] only if the pinned spec were
    /// infeasible, which the test suite rules out for all twelve.
    pub fn graph(&self) -> Result<TaskGraph, SynthError> {
        SyntheticSpec::new(self.name, self.vertices, self.edges)
            .seed(self.seed)
            .generate()
    }
}

/// The Table 1 suite, in table order.
///
/// # Examples
///
/// ```
/// let suite = paraconv_synth::benchmarks::all();
/// assert_eq!(suite.len(), 12);
/// assert_eq!(suite[0].name(), "cat");
/// assert_eq!(suite[11].vertices(), 546);
/// ```
#[must_use]
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "cat",
            vertices: 9,
            edges: 21,
            seed: 120,
        },
        Benchmark {
            name: "car",
            vertices: 13,
            edges: 28,
            seed: 102,
        },
        Benchmark {
            name: "flower",
            vertices: 21,
            edges: 51,
            seed: 103,
        },
        Benchmark {
            name: "character-1",
            vertices: 46,
            edges: 121,
            seed: 104,
        },
        Benchmark {
            name: "character-2",
            vertices: 52,
            edges: 130,
            seed: 105,
        },
        Benchmark {
            name: "image-compress",
            vertices: 70,
            edges: 178,
            seed: 106,
        },
        Benchmark {
            name: "stock-predict",
            vertices: 83,
            edges: 218,
            seed: 107,
        },
        Benchmark {
            name: "string-matching",
            vertices: 102,
            edges: 267,
            seed: 108,
        },
        Benchmark {
            name: "shortest-path",
            vertices: 191,
            edges: 506,
            seed: 109,
        },
        Benchmark {
            name: "speech-1",
            vertices: 247,
            edges: 652,
            seed: 110,
        },
        Benchmark {
            name: "speech-2",
            vertices: 369,
            edges: 981,
            seed: 111,
        },
        Benchmark {
            name: "protein",
            vertices: 546,
            edges: 1449,
            seed: 112,
        },
    ]
}

/// Looks up a benchmark by name.
///
/// # Examples
///
/// ```
/// let b = paraconv_synth::benchmarks::by_name("protein").unwrap();
/// assert_eq!(b.edges(), 1449);
/// assert!(paraconv_synth::benchmarks::by_name("nonexistent").is_none());
/// ```
#[must_use]
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_generate_at_exact_sizes() {
        for b in all() {
            let g = b.graph().unwrap();
            assert_eq!(g.node_count(), b.vertices(), "{}", b.name());
            assert_eq!(g.edge_count(), b.edges(), "{}", b.name());
        }
    }

    #[test]
    fn table_order_and_counts_match_the_paper() {
        let suite = all();
        let expected: [(&str, usize, usize); 12] = [
            ("cat", 9, 21),
            ("car", 13, 28),
            ("flower", 21, 51),
            ("character-1", 46, 121),
            ("character-2", 52, 130),
            ("image-compress", 70, 178),
            ("stock-predict", 83, 218),
            ("string-matching", 102, 267),
            ("shortest-path", 191, 506),
            ("speech-1", 247, 652),
            ("speech-2", 369, 981),
            ("protein", 546, 1449),
        ];
        for (b, (name, v, e)) in suite.iter().zip(expected) {
            assert_eq!(b.name(), name);
            assert_eq!(b.vertices(), v);
            assert_eq!(b.edges(), e);
        }
    }

    #[test]
    fn regeneration_is_deterministic() {
        let b = by_name("flower").unwrap();
        assert_eq!(b.graph().unwrap(), b.graph().unwrap());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn scale_increases_through_the_table() {
        let suite = all();
        for w in suite.windows(2) {
            assert!(w[0].vertices() <= w[1].vertices());
            assert!(w[0].edges() <= w[1].edges());
        }
    }
}
