//! # paraconv-fault
//!
//! Seeded, deterministic fault model for the Para-CONV stack. Four
//! fault classes, mirroring what a 3D-stacked PIM part actually
//! suffers:
//!
//! * **vault-access failures** — transient fetch rejections modeling
//!   eDRAM refresh collisions, recovered by bounded retry with
//!   exponential backoff and a hard deadline;
//! * **interconnect congestion** — per-transfer delivery jitter on the
//!   crossbar;
//! * **IPR corruption** — a cached partial result fails its checksum
//!   on consume and is re-fetched from eDRAM;
//! * **PE fail-stop** — a PE dies at a chosen cycle and the stack
//!   replans around it (see `paraconv_pim::simulate_with_faults` and
//!   the degraded-mode path in `paraconv-sched`/`paraconv-core`).
//!
//! ## Determinism
//!
//! All transient faults are sampled counter-mode: a SplitMix64
//! finalizer over `(seed, stream, edge, iteration, attempt)` with no
//! evolving generator state. Sampling order, thread count and job
//! interleaving are irrelevant — the same seed yields byte-identical
//! campaigns at `jobs=1` and `jobs=N`. Raising a rate only *adds*
//! fault events (the threshold test is monotone while the site hash
//! is pinned), which is what makes degradation provably monotone.
//!
//! ## Gating
//!
//! [`install`]/[`clear`]/[`active`] manage a process-global hook with
//! the same `AtomicBool` discipline as `paraconv-obs`: compiled in
//! but not installed costs one relaxed load per `simulate()` call.
//!
//! # Examples
//!
//! ```
//! use paraconv_fault::FaultSpec;
//!
//! let spec = FaultSpec::builder(42)
//!     .vault_fault_bp(250) // 2.5% of vault accesses collide
//!     .congestion_bp(100)
//!     .kill_pe(3, 10_000)
//!     .build()?;
//! assert_eq!(spec.kill_cycle(3), Some(10_000));
//! // Same site, same answer — forever.
//! assert_eq!(spec.vault_fault(7, 1, 0), spec.vault_fault(7, 1, 0));
//! # Ok::<(), paraconv_fault::FaultSpecError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod hook;
mod spec;

pub use hook::{active, clear, current, install};
pub use spec::{FaultSpec, FaultSpecBuilder, FaultSpecError, PeKill, RetryPolicy, BASIS_POINTS};

/// Metric names the fault layer emits through `paraconv-obs`. All are
/// counters except [`metrics::RETRY_LATENCY`], a histogram of per-event
/// backoff waits; counters and histograms both merge commutatively, so
/// the jobs=1 vs jobs=N metrics identity is preserved.
pub mod metrics {
    /// Total fault events injected (all classes).
    pub const INJECTED: &str = "fault.injected";
    /// Vault retry attempts performed.
    pub const RETRIES: &str = "fault.retries";
    /// IPR checksum failures repaired by eDRAM re-fetch.
    pub const CORRUPTIONS: &str = "fault.corruptions";
    /// Congested transfers.
    pub const CONGESTION: &str = "fault.congestion";
    /// Degraded-mode replans after a PE fail-stop.
    pub const REPLANS: &str = "fault.replans";
    /// Histogram of cycles spent waiting in retry backoff.
    pub const RETRY_LATENCY: &str = "fault.retry.latency";
}
