//! The process-global injection hook, gated exactly like the
//! `paraconv-obs` recorder: one relaxed `AtomicBool` load on the fast
//! path, so a fault layer that is compiled in but not installed costs
//! a single predictable branch per `simulate()` call.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::spec::FaultSpec;

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<FaultSpec>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultSpec>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Whether a fault spec is installed. This is the zero-cost gate: a
/// single relaxed load, checked by the simulator before anything
/// fault-related is touched.
#[inline]
#[must_use]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs `spec` as the process-global fault campaign. Replaces any
/// previously installed spec.
pub fn install(spec: FaultSpec) {
    let mut guard = slot().lock().unwrap_or_else(PoisonError::into_inner);
    *guard = Some(Arc::new(spec));
    // Relaxed on both sides, deliberately: the gate publishes nothing
    // by itself — every reader that sees `true` goes through the slot
    // mutex for the spec, and that lock is the happens-before edge
    // (model-checked by the `flight-ring`/`publish-acquire` harnesses
    // in paraconv-analyze). The store sits inside the critical
    // section so a winning `active()` reader still finds the spec.
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Uninstalls the global fault campaign; `simulate()` returns to the
/// exact fault-free replay.
pub fn clear() {
    ACTIVE.store(false, Ordering::Relaxed);
    let mut guard = slot().lock().unwrap_or_else(PoisonError::into_inner);
    *guard = None;
}

/// The currently installed spec, if any.
#[must_use]
pub fn current() -> Option<Arc<FaultSpec>> {
    slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_clear_roundtrip() {
        // The hook is process-global; this test owns it briefly and
        // restores the disabled state for its neighbours.
        clear();
        assert!(!active());
        assert!(current().is_none());

        install(FaultSpec::quiet(9));
        assert!(active());
        assert_eq!(current().map(|s| s.seed()), Some(9));

        install(FaultSpec::quiet(10));
        assert_eq!(current().map(|s| s.seed()), Some(10), "install replaces");

        clear();
        assert!(!active());
        assert!(current().is_none());
    }
}
