//! The fault specification: what can go wrong, how often, and the
//! recovery budget. Everything is derived from one seed through a
//! counter-mode SplitMix64 mix, so a given `(seed, site)` pair always
//! answers the same way — independent of evaluation order, thread
//! count, or how many other sites were sampled first.

use core::fmt;

/// Rates are expressed in basis points: 10 000 bp = every access.
pub const BASIS_POINTS: u32 = 10_000;

/// Domain-separation tags so the vault, interconnect and corruption
/// streams never correlate even at identical `(edge, iteration)` keys.
const STREAM_VAULT: u64 = 0x5641_554C_5421_0001;
const STREAM_NET: u64 = 0x4E45_5457_4F52_4B02;
const STREAM_NET_MAG: u64 = 0x4E45_544A_4954_5403;
const STREAM_IPR: u64 = 0x4950_5243_4845_4B04;
const STREAM_SERVE_KILL: u64 = 0x5345_5256_4B49_4C05;
const STREAM_SERVE_SLOW: u64 = 0x5345_5256_534C_4F06;
const STREAM_SERVE_SLOW_MAG: u64 = 0x5345_5256_4D41_4707;
const STREAM_SERVE_DISK: u64 = 0x5345_5256_4449_5308;

/// A PE declared dead from a given cycle onward (fail-stop: it
/// completes nothing that would still be running at that cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeKill {
    /// The physical PE index.
    pub pe: u32,
    /// The first cycle at which the PE no longer makes progress.
    pub cycle: u64,
}

/// Bounded-retry budget for transient vault/interconnect failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first failed attempt.
    pub max_retries: u32,
    /// First backoff wait in cycles; doubles per retry (saturating).
    pub backoff_base: u64,
    /// Total cycles a single transfer may spend waiting before the
    /// simulator gives up with `RetryExhausted`.
    pub deadline: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            backoff_base: 2,
            deadline: 4096,
        }
    }
}

impl RetryPolicy {
    /// The wait after the `attempt`-th consecutive failure (0-based):
    /// `backoff_base << attempt`, saturating at `u64::MAX`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> u64 {
        if attempt >= 64 {
            return u64::MAX;
        }
        self.backoff_base.saturating_mul(1u64 << attempt)
    }

    /// True once `waited` cycles of accumulated backoff leave no budget
    /// for another attempt. The deadline is **inclusive**: a sleep that
    /// lands exactly on the deadline has spent the whole budget, so the
    /// transfer must not retry past it.
    #[must_use]
    pub fn exhausted_by(&self, waited: u64) -> bool {
        waited >= self.deadline
    }
}

/// A rejected [`FaultSpec`] configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSpecError {
    /// A probability knob exceeds 10 000 basis points.
    RateOutOfRange {
        /// Which knob was out of range.
        knob: &'static str,
        /// The rejected value.
        bp: u32,
    },
    /// The same PE was scheduled to fail twice.
    DuplicateKill(u32),
    /// A retry policy whose backoff never advances the clock would
    /// livelock the replay loop.
    ZeroBackoff,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::RateOutOfRange { knob, bp } => {
                write!(f, "{knob} = {bp} bp exceeds {BASIS_POINTS} basis points")
            }
            FaultSpecError::DuplicateKill(pe) => {
                write!(f, "PE{pe} is scheduled to fail-stop more than once")
            }
            FaultSpecError::ZeroBackoff => {
                write!(f, "retry backoff base must be at least one cycle")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A validated, immutable fault campaign: seeded rates for the three
/// transient fault classes, an explicit fail-stop list, and the retry
/// budget recovery runs under.
///
/// Determinism guarantee: every sampling method is a pure function of
/// `(seed, site)`, where the site is the `(stream, edge, iteration,
/// attempt)` tuple. Two spec instances with equal fields answer every
/// query identically, and raising a rate only **adds** fault events —
/// a site that faults at rate `r` still faults at every rate `r' ≥ r`
/// (the basis-point threshold test is monotone in the rate while the
/// mixed hash of the site stays fixed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    seed: u64,
    vault_fault_bp: u32,
    congestion_bp: u32,
    congestion_jitter: u64,
    corruption_bp: u32,
    pe_kills: Vec<PeKill>,
    retry: RetryPolicy,
    worker_kill_bp: u32,
    slow_request_bp: u32,
    slow_request_jitter: u64,
    cache_write_fail_bp: u32,
}

impl FaultSpec {
    /// Starts a builder for the given seed.
    #[must_use]
    pub fn builder(seed: u64) -> FaultSpecBuilder {
        FaultSpecBuilder {
            seed,
            vault_fault_bp: 0,
            congestion_bp: 0,
            congestion_jitter: 4,
            corruption_bp: 0,
            pe_kills: Vec::new(),
            retry: RetryPolicy::default(),
            worker_kill_bp: 0,
            slow_request_bp: 0,
            slow_request_jitter: 4,
            cache_write_fail_bp: 0,
        }
    }

    /// A spec that injects nothing — replay under it is the identity.
    #[must_use]
    pub fn quiet(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            vault_fault_bp: 0,
            congestion_bp: 0,
            congestion_jitter: 4,
            corruption_bp: 0,
            pe_kills: Vec::new(),
            retry: RetryPolicy::default(),
            worker_kill_bp: 0,
            slow_request_bp: 0,
            slow_request_jitter: 4,
            cache_write_fail_bp: 0,
        }
    }

    /// The campaign seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Transient vault-access failure rate in basis points.
    #[must_use]
    pub fn vault_fault_bp(&self) -> u32 {
        self.vault_fault_bp
    }

    /// Interconnect congestion rate in basis points.
    #[must_use]
    pub fn congestion_bp(&self) -> u32 {
        self.congestion_bp
    }

    /// Largest congestion delay a single transfer can pick up.
    #[must_use]
    pub fn congestion_jitter(&self) -> u64 {
        self.congestion_jitter
    }

    /// IPR-corruption rate in basis points.
    #[must_use]
    pub fn corruption_bp(&self) -> u32 {
        self.corruption_bp
    }

    /// The scheduled fail-stops.
    #[must_use]
    pub fn pe_kills(&self) -> &[PeKill] {
        &self.pe_kills
    }

    /// The retry budget transient failures are recovered under.
    #[must_use]
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Worker fail-stop rate on the serving path, in basis points.
    #[must_use]
    pub fn worker_kill_bp(&self) -> u32 {
        self.worker_kill_bp
    }

    /// Slow-request (latency injection) rate in basis points.
    #[must_use]
    pub fn slow_request_bp(&self) -> u32 {
        self.slow_request_bp
    }

    /// Disk-full cache-write failure rate in basis points.
    #[must_use]
    pub fn cache_write_fail_bp(&self) -> u32 {
        self.cache_write_fail_bp
    }

    /// True when the spec can never perturb a replay.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.vault_fault_bp == 0
            && self.congestion_bp == 0
            && self.corruption_bp == 0
            && self.pe_kills.is_empty()
            && self.worker_kill_bp == 0
            && self.slow_request_bp == 0
            && self.cache_write_fail_bp == 0
    }

    /// SplitMix64 finalizer over the seed and a site key. Counter-mode:
    /// there is no evolving generator state, so sampling order is
    /// irrelevant and any site can be (re-)queried at any time.
    fn mix(&self, stream: u64, edge: u64, iteration: u64, attempt: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(stream)
            .wrapping_add(edge.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(iteration.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(attempt.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Whether a basis-point threshold fires at a mixed site. The
    /// threshold test keeps the monotonicity property: for a fixed
    /// site the hash is fixed, so `bp1 ≤ bp2` means every `bp1` hit is
    /// a `bp2` hit.
    fn fires(&self, hash: u64, bp: u32) -> bool {
        (hash % u64::from(BASIS_POINTS)) < u64::from(bp)
    }

    /// Does the `attempt`-th access for `(edge, iteration)` hit a vault
    /// refresh collision?
    #[must_use]
    pub fn vault_fault(&self, edge: usize, iteration: u64, attempt: u32) -> bool {
        self.vault_fault_bp != 0
            && self.fires(
                self.mix(STREAM_VAULT, edge as u64, iteration, u64::from(attempt)),
                self.vault_fault_bp,
            )
    }

    /// Congestion delay (cycles) the interconnect adds to this
    /// transfer; 0 when the link is clear. The delay magnitude is
    /// drawn from a separate stream so an already-congested transfer
    /// keeps the same delay when the congestion *rate* is raised.
    #[must_use]
    pub fn congestion_delay(&self, edge: usize, iteration: u64) -> u64 {
        if self.congestion_bp == 0
            || !self.fires(
                self.mix(STREAM_NET, edge as u64, iteration, 0),
                self.congestion_bp,
            )
        {
            return 0;
        }
        1 + self.mix(STREAM_NET_MAG, edge as u64, iteration, 0) % self.congestion_jitter.max(1)
    }

    /// Is the IPR for `(edge, iteration)` corrupted in the PE cache
    /// (detected by checksum on consume, repaired by an eDRAM
    /// re-fetch)?
    #[must_use]
    pub fn corrupted(&self, edge: usize, iteration: u64) -> bool {
        self.corruption_bp != 0
            && self.fires(
                self.mix(STREAM_IPR, edge as u64, iteration, 0),
                self.corruption_bp,
            )
    }

    /// The cycle at which `pe` fail-stops, if it is scheduled to.
    #[must_use]
    pub fn kill_cycle(&self, pe: u32) -> Option<u64> {
        self.pe_kills.iter().find(|k| k.pe == pe).map(|k| k.cycle)
    }

    /// Does the worker die mid-plan on the `attempt`-th try at serving
    /// request `seq`? The site is the daemon's request sequence
    /// number, so a campaign replayed against the same request stream
    /// kills the same requests regardless of worker count or pickup
    /// order; keying by attempt lets the re-enqueued request survive a
    /// later try.
    #[must_use]
    pub fn worker_kill(&self, seq: u64, attempt: u32) -> bool {
        self.worker_kill_bp != 0
            && self.fires(
                self.mix(STREAM_SERVE_KILL, seq, 0, u64::from(attempt)),
                self.worker_kill_bp,
            )
    }

    /// Extra latency (in milliseconds) injected into request `seq`'s
    /// planning; 0 when the request is not selected. The magnitude is
    /// drawn from a separate stream so raising the *rate* never
    /// changes an already-slow request's delay.
    #[must_use]
    pub fn slow_request_delay_ms(&self, seq: u64) -> u64 {
        if self.slow_request_bp == 0
            || !self.fires(self.mix(STREAM_SERVE_SLOW, seq, 0, 0), self.slow_request_bp)
        {
            return 0;
        }
        1 + self.mix(STREAM_SERVE_SLOW_MAG, seq, 0, 0) % self.slow_request_jitter.max(1)
    }

    /// Does the cache write-through for request `seq` hit a full disk?
    #[must_use]
    pub fn cache_write_fails(&self, seq: u64) -> bool {
        self.cache_write_fail_bp != 0
            && self.fires(
                self.mix(STREAM_SERVE_DISK, seq, 0, 0),
                self.cache_write_fail_bp,
            )
    }
}

/// Builder for [`FaultSpec`]; `build` validates every knob.
#[derive(Debug, Clone)]
pub struct FaultSpecBuilder {
    seed: u64,
    vault_fault_bp: u32,
    congestion_bp: u32,
    congestion_jitter: u64,
    corruption_bp: u32,
    pe_kills: Vec<PeKill>,
    retry: RetryPolicy,
    worker_kill_bp: u32,
    slow_request_bp: u32,
    slow_request_jitter: u64,
    cache_write_fail_bp: u32,
}

impl FaultSpecBuilder {
    /// Transient vault-access failure rate in basis points.
    #[must_use]
    pub fn vault_fault_bp(mut self, bp: u32) -> Self {
        self.vault_fault_bp = bp;
        self
    }

    /// Interconnect congestion rate in basis points.
    #[must_use]
    pub fn congestion_bp(mut self, bp: u32) -> Self {
        self.congestion_bp = bp;
        self
    }

    /// Largest congestion delay (cycles) one transfer can pick up.
    #[must_use]
    pub fn congestion_jitter(mut self, cycles: u64) -> Self {
        self.congestion_jitter = cycles;
        self
    }

    /// IPR-corruption rate in basis points.
    #[must_use]
    pub fn corruption_bp(mut self, bp: u32) -> Self {
        self.corruption_bp = bp;
        self
    }

    /// One knob for all three transient fault classes (the CLI's
    /// `--fault-rate`).
    #[must_use]
    pub fn uniform_rate_bp(mut self, bp: u32) -> Self {
        self.vault_fault_bp = bp;
        self.congestion_bp = bp;
        self.corruption_bp = bp;
        self
    }

    /// Schedules `pe` to fail-stop at `cycle`.
    #[must_use]
    pub fn kill_pe(mut self, pe: u32, cycle: u64) -> Self {
        self.pe_kills.push(PeKill { pe, cycle });
        self
    }

    /// Overrides the retry budget.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Worker fail-stop rate on the serving path, in basis points.
    #[must_use]
    pub fn worker_kill_bp(mut self, bp: u32) -> Self {
        self.worker_kill_bp = bp;
        self
    }

    /// Slow-request injection rate in basis points.
    #[must_use]
    pub fn slow_request_bp(mut self, bp: u32) -> Self {
        self.slow_request_bp = bp;
        self
    }

    /// Largest injected delay (milliseconds) one slow request picks up.
    #[must_use]
    pub fn slow_request_jitter(mut self, ms: u64) -> Self {
        self.slow_request_jitter = ms;
        self
    }

    /// Disk-full cache-write failure rate in basis points.
    #[must_use]
    pub fn cache_write_fail_bp(mut self, bp: u32) -> Self {
        self.cache_write_fail_bp = bp;
        self
    }

    /// Validates and freezes the spec.
    ///
    /// # Errors
    ///
    /// Rejects rates above 10 000 bp, duplicate fail-stops for the
    /// same PE, and zero-cycle backoff (which would livelock retries).
    pub fn build(self) -> Result<FaultSpec, FaultSpecError> {
        for (knob, bp) in [
            ("vault_fault_bp", self.vault_fault_bp),
            ("congestion_bp", self.congestion_bp),
            ("corruption_bp", self.corruption_bp),
            ("worker_kill_bp", self.worker_kill_bp),
            ("slow_request_bp", self.slow_request_bp),
            ("cache_write_fail_bp", self.cache_write_fail_bp),
        ] {
            if bp > BASIS_POINTS {
                return Err(FaultSpecError::RateOutOfRange { knob, bp });
            }
        }
        let mut seen = self.pe_kills.iter().map(|k| k.pe).collect::<Vec<_>>();
        seen.sort_unstable();
        for pair in seen.windows(2) {
            if pair[0] == pair[1] {
                return Err(FaultSpecError::DuplicateKill(pair[0]));
            }
        }
        if self.retry.backoff_base == 0 {
            return Err(FaultSpecError::ZeroBackoff);
        }
        Ok(FaultSpec {
            seed: self.seed,
            vault_fault_bp: self.vault_fault_bp,
            congestion_bp: self.congestion_bp,
            congestion_jitter: self.congestion_jitter,
            corruption_bp: self.corruption_bp,
            pe_kills: self.pe_kills,
            retry: self.retry,
            worker_kill_bp: self.worker_kill_bp,
            slow_request_bp: self.slow_request_bp,
            slow_request_jitter: self.slow_request_jitter,
            cache_write_fail_bp: self.cache_write_fail_bp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_spec_never_fires() {
        let spec = FaultSpec::quiet(42);
        assert!(spec.is_quiet());
        for edge in 0..64 {
            for iter in 0..16 {
                assert!(!spec.vault_fault(edge, iter, 0));
                assert_eq!(spec.congestion_delay(edge, iter), 0);
                assert!(!spec.corrupted(edge, iter));
            }
        }
        assert_eq!(spec.kill_cycle(0), None);
    }

    #[test]
    fn full_rate_always_fires() {
        let spec = FaultSpec::builder(7)
            .uniform_rate_bp(BASIS_POINTS)
            .build()
            .expect("valid spec");
        for edge in 0..64 {
            assert!(spec.vault_fault(edge, 1, 0));
            assert!(spec.congestion_delay(edge, 1) >= 1);
            assert!(spec.corrupted(edge, 1));
        }
    }

    #[test]
    fn sampling_is_order_independent_and_repeatable() {
        let a = FaultSpec::builder(99).uniform_rate_bp(500).build().unwrap();
        let b = a.clone();
        // Query b backwards and interleaved; answers must match a's
        // forward pass exactly.
        let forward: Vec<bool> = (0..256).map(|e| a.vault_fault(e, 3, 1)).collect();
        let backward: Vec<bool> = (0..256).rev().map(|e| b.vault_fault(e, 3, 1)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "same (seed, site) must answer identically in any order"
        );
    }

    #[test]
    fn raising_a_rate_only_adds_faults() {
        let low = FaultSpec::builder(5).uniform_rate_bp(200).build().unwrap();
        let high = FaultSpec::builder(5).uniform_rate_bp(2000).build().unwrap();
        for edge in 0..512 {
            for iter in 0..4 {
                if low.vault_fault(edge, iter, 0) {
                    assert!(high.vault_fault(edge, iter, 0));
                }
                if low.corrupted(edge, iter) {
                    assert!(high.corrupted(edge, iter));
                }
                let (dl, dh) = (
                    low.congestion_delay(edge, iter),
                    high.congestion_delay(edge, iter),
                );
                if dl > 0 {
                    // Same magnitude stream: the delay must be
                    // *identical*, not merely nonzero.
                    assert_eq!(dl, dh);
                }
            }
        }
    }

    #[test]
    fn streams_are_decorrelated() {
        // At a full vault rate and zero other rates, only the vault
        // stream fires; the site keys are shared, the streams are not.
        let spec = FaultSpec::builder(11)
            .vault_fault_bp(BASIS_POINTS)
            .build()
            .unwrap();
        assert!(spec.vault_fault(3, 2, 0));
        assert_eq!(spec.congestion_delay(3, 2), 0);
        assert!(!spec.corrupted(3, 2));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.backoff(0), 2);
        assert_eq!(retry.backoff(1), 4);
        assert_eq!(retry.backoff(2), 8);
        assert_eq!(retry.backoff(200), u64::MAX);
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        // A sleep landing exactly on the deadline exhausts the budget:
        // retrying past it would overshoot the promise the policy
        // makes. Check the three boundary cases explicitly.
        let retry = RetryPolicy {
            max_retries: 6,
            backoff_base: 2,
            deadline: 4096,
        };
        assert!(!retry.exhausted_by(retry.deadline - 1));
        assert!(retry.exhausted_by(retry.deadline));
        assert!(retry.exhausted_by(retry.deadline + 1));
    }

    #[test]
    fn zero_deadline_is_always_exhausted() {
        let retry = RetryPolicy {
            max_retries: 6,
            backoff_base: 2,
            deadline: 0,
        };
        assert!(retry.exhausted_by(0));
    }

    #[test]
    fn builder_rejects_bad_knobs() {
        assert!(matches!(
            FaultSpec::builder(0).vault_fault_bp(10_001).build(),
            Err(FaultSpecError::RateOutOfRange {
                knob: "vault_fault_bp",
                bp: 10_001,
            })
        ));
        assert!(matches!(
            FaultSpec::builder(0).kill_pe(3, 10).kill_pe(3, 20).build(),
            Err(FaultSpecError::DuplicateKill(3))
        ));
        assert!(matches!(
            FaultSpec::builder(0)
                .retry(RetryPolicy {
                    max_retries: 1,
                    backoff_base: 0,
                    deadline: 10,
                })
                .build(),
            Err(FaultSpecError::ZeroBackoff)
        ));
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            FaultSpecError::RateOutOfRange {
                knob: "congestion_bp",
                bp: 20_000,
            },
            FaultSpecError::DuplicateKill(5),
            FaultSpecError::ZeroBackoff,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn serve_streams_are_seeded_and_monotone() {
        let quiet = FaultSpec::quiet(13);
        for seq in 0..256 {
            assert!(!quiet.worker_kill(seq, 0));
            assert_eq!(quiet.slow_request_delay_ms(seq), 0);
            assert!(!quiet.cache_write_fails(seq));
        }
        let low = FaultSpec::builder(13)
            .worker_kill_bp(300)
            .slow_request_bp(300)
            .cache_write_fail_bp(300)
            .build()
            .unwrap();
        let high = FaultSpec::builder(13)
            .worker_kill_bp(3000)
            .slow_request_bp(3000)
            .cache_write_fail_bp(3000)
            .build()
            .unwrap();
        let mut fired = 0;
        for seq in 0..2048 {
            if low.worker_kill(seq, 0) {
                assert!(high.worker_kill(seq, 0));
                fired += 1;
            }
            let dl = low.slow_request_delay_ms(seq);
            if dl > 0 {
                // Separate magnitude stream: same delay at any rate.
                assert_eq!(dl, high.slow_request_delay_ms(seq));
            }
            if low.cache_write_fails(seq) {
                assert!(high.cache_write_fails(seq));
            }
        }
        assert!(
            fired > 0,
            "300 bp over 2048 sites should fire at least once"
        );
    }

    #[test]
    fn serve_rates_above_full_scale_are_rejected() {
        assert!(matches!(
            FaultSpec::builder(0).worker_kill_bp(10_001).build(),
            Err(FaultSpecError::RateOutOfRange {
                knob: "worker_kill_bp",
                bp: 10_001,
            })
        ));
    }

    #[test]
    fn kill_cycles_are_looked_up_by_pe() {
        let spec = FaultSpec::builder(1)
            .kill_pe(2, 100)
            .kill_pe(7, 40)
            .build()
            .unwrap();
        assert_eq!(spec.kill_cycle(2), Some(100));
        assert_eq!(spec.kill_cycle(7), Some(40));
        assert_eq!(spec.kill_cycle(0), None);
    }
}
