//! JSON string escaping for the exporters.
//!
//! The exporters emit JSON by hand, but string escaping — the only
//! part that needs care — is NOT re-implemented here: every writer
//! routes through the vendored `serde_json` escaper, so a name that
//! round-trips through the `Value` serializer and one emitted by the
//! Chrome-trace or JSONL writers escape identically.

/// Appends `s` to `out` as a JSON string literal, quotes included.
pub fn write_escaped(out: &mut String, s: &str) {
    serde_json::write_escaped(out, s);
}

/// Returns `s` as a JSON string literal, quotes included.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_round_trip() {
        assert_eq!(escape("sim.tasks"), "\"sim.tasks\"");
    }

    #[test]
    fn specials_are_escaped() {
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("a\tb"), "\"a\\tb\"");
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn backspace_and_formfeed_use_short_escapes() {
        // The vendored escaper emits the two-character forms the JSON
        // grammar names; the old hand-rolled escaper used \u00XX.
        assert_eq!(escape("a\u{8}b"), "\"a\\bb\"");
        assert_eq!(escape("a\u{c}b"), "\"a\\fb\"");
    }

    #[test]
    fn unicode_passes_through() {
        assert_eq!(escape("…+5"), "\"…+5\"");
        assert_eq!(escape("латеншси p99 ≤ 4µs"), "\"латеншси p99 ≤ 4µs\"");
    }

    #[test]
    fn matches_the_vendored_value_serializer() {
        for s in ["plain", "q\"q", "b\\b", "nl\n", "…", "mixed \"\\\n…\u{1}"] {
            assert_eq!(
                escape(s),
                serde_json::to_string(&serde_json::Value::from(s)),
                "escaping diverged from the vendored serializer for {s:?}"
            );
        }
    }
}
