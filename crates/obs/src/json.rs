//! Minimal JSON string escaping for the exporters.
//!
//! The exporters emit JSON by hand (this crate is dependency-free);
//! the only part that needs care is string escaping, centralized here
//! so every writer produces valid output for arbitrary names.

/// Appends `s` to `out` as a JSON string literal, quotes included.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a JSON string literal, quotes included.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_round_trip() {
        assert_eq!(escape("sim.tasks"), "\"sim.tasks\"");
    }

    #[test]
    fn specials_are_escaped() {
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("a\tb"), "\"a\\tb\"");
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn unicode_passes_through() {
        assert_eq!(escape("…+5"), "\"…+5\"");
    }
}
