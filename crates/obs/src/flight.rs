//! The flight recorder: an always-on bounded ring of structured
//! events for postmortem capture.
//!
//! Long campaigns die with nothing but an error string unless the
//! process kept notes. The flight recorder is that notebook: a
//! process-wide ring buffer of the last [`FlightEvent`]s — schedule
//! milestones, fault injections, chaos replans — gated by one
//! [`AtomicBool`] exactly like the metric recorder and the fault hook,
//! so an instrumented hot path costs **one relaxed load** while the
//! recorder is off. When a simulation error, verifier rejection or
//! chaos failure surfaces, the driver drains the ring into a
//! canonical-bytes postmortem artifact (see `paraconv-registry`).
//!
//! Events carry **simulated** cycles, never wallclock, and sequence
//! numbers are assigned under the ring lock — so a single-threaded
//! campaign produces byte-identical event windows on every run at
//! every `PARACONV_JOBS` width.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default ring capacity: enough to cover the tail of a campaign
/// without letting a postmortem artifact grow unbounded.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One structured flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (assigned at record time; survives
    /// ring eviction, so gaps reveal dropped history).
    pub seq: u64,
    /// Subsystem, e.g. `sched`, `sim`, `fault`, `chaos`.
    pub cat: String,
    /// What happened, e.g. `pe.fail_stop`, `replan`.
    pub label: String,
    /// Simulated cycle (or iteration index) the event is anchored to —
    /// never wallclock.
    pub cycle: u64,
    /// Event-specific payload (a PE index, retry count, task total…).
    pub value: u64,
}

static FLIGHT_ACTIVE: AtomicBool = AtomicBool::new(false);

struct FlightRing {
    next_seq: u64,
    capacity: usize,
    events: VecDeque<FlightEvent>,
}

fn ring() -> &'static Mutex<FlightRing> {
    static RING: OnceLock<Mutex<FlightRing>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(FlightRing {
            next_seq: 0,
            capacity: DEFAULT_FLIGHT_CAPACITY,
            events: VecDeque::new(),
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, FlightRing> {
    ring()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Is the flight recorder on? One relaxed atomic load — the cost of
/// every instrumented site while it is off.
#[inline]
#[must_use]
pub fn flight_active() -> bool {
    FLIGHT_ACTIVE.load(Ordering::Relaxed)
}

/// Turns the flight recorder on with a ring of `capacity` events
/// (clamped to at least 1). Previously buffered events are cleared and
/// the sequence restarts at 0 so repeated campaigns produce identical
/// histories.
pub fn flight_enable(capacity: usize) {
    let mut r = lock();
    r.capacity = capacity.max(1);
    r.events.clear();
    r.next_seq = 0;
    FLIGHT_ACTIVE.store(true, Ordering::Relaxed);
}

/// Turns the flight recorder off; buffered events stay readable via
/// [`flight_events`].
pub fn flight_disable() {
    FLIGHT_ACTIVE.store(false, Ordering::Relaxed);
}

/// Records one event (no-op while the recorder is off). The oldest
/// event is evicted once the ring is full.
pub fn flight_record(cat: impl Into<String>, label: impl Into<String>, cycle: u64, value: u64) {
    if !flight_active() {
        return;
    }
    let mut r = lock();
    let seq = r.next_seq;
    r.next_seq += 1;
    let event = FlightEvent {
        seq,
        cat: cat.into(),
        label: label.into(),
        cycle,
        value,
    };
    r.events.push_back(event);
    while r.events.len() > r.capacity {
        r.events.pop_front();
    }
}

/// A copy of the buffered events, oldest first.
#[must_use]
pub fn flight_events() -> Vec<FlightEvent> {
    lock().events.iter().cloned().collect()
}

/// Clears the ring, restarts the sequence at 0 and turns the recorder
/// off.
pub fn flight_reset() {
    flight_disable();
    let mut r = lock();
    r.events.clear();
    r.next_seq = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// Flight-recorder state is process-wide; tests serialize here.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: TestMutex<()> = TestMutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn inactive_recorder_drops_events() {
        let _l = test_lock();
        flight_reset();
        flight_record("sim", "replay.done", 10, 1);
        assert!(flight_events().is_empty());
    }

    #[test]
    fn active_recorder_numbers_events_in_order() {
        let _l = test_lock();
        flight_reset();
        flight_enable(8);
        flight_record("sched", "schedule.done", 0, 42);
        flight_record("fault", "pe.fail_stop", 17, 3);
        flight_disable();
        flight_record("sim", "after.disable", 99, 0);
        let events = flight_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].cat, "sched");
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].label, "pe.fail_stop");
        assert_eq!(events[1].cycle, 17);
        flight_reset();
    }

    #[test]
    fn full_ring_evicts_oldest_but_keeps_sequence() {
        let _l = test_lock();
        flight_reset();
        flight_enable(3);
        for i in 0..10u64 {
            flight_record("sim", "tick", i, i);
        }
        let events = flight_events();
        assert_eq!(events.len(), 3);
        // The last three events survive with their original numbers.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        flight_reset();
    }

    #[test]
    fn enable_restarts_history() {
        let _l = test_lock();
        flight_reset();
        flight_enable(4);
        flight_record("chaos", "replan", 5, 1);
        flight_enable(4);
        flight_record("chaos", "replan", 6, 2);
        let events = flight_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].cycle, 6);
        flight_reset();
    }
}
