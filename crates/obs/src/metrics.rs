//! Metric aggregates: counters, high-water gauges and histograms.
//!
//! Every aggregate merges with a commutative, associative operation
//! (sum, max, bucket-wise sum), so per-thread buffers collapse to the
//! **same** totals regardless of how work was divided across workers —
//! the property the sweep engine's `jobs=1` vs `jobs=N` determinism
//! test relies on.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::write_escaped;

/// Number of power-of-two histogram buckets: bucket 0 holds zeros,
/// bucket `i > 0` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use paraconv_obs::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(3);
/// h.record(4);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 7);
/// assert_eq!(h.min(), 0);
/// assert_eq!(h.max(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive lower bound of bucket `i`.
    #[must_use]
    pub fn bucket_lower(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Merges another histogram into this one (bucket-wise sums).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The number of samples in bucket `i` (0 when out of range).
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Rebuilds a histogram from its serialized parts — the shape
    /// [`MetricsSnapshot::to_jsonl`] and the postmortem artifact
    /// store: summary statistics plus `(lower_bound, count)` pairs for
    /// the non-empty buckets. Returns `None` when the parts are
    /// inconsistent: a lower bound that is not a real bucket boundary,
    /// bucket counts that do not sum to `count`, `min > max`, or
    /// summary values on an empty histogram.
    #[must_use]
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: &[(u64, u64)],
    ) -> Option<Histogram> {
        if count == 0 {
            if sum != 0 || min != 0 || max != 0 || !buckets.is_empty() {
                return None;
            }
            return Some(Histogram::new());
        }
        if min > max {
            return None;
        }
        let mut h = Histogram {
            count,
            sum,
            min,
            max,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        let mut total = 0u64;
        for &(lo, c) in buckets {
            let i = Self::bucket_of(lo);
            if Self::bucket_lower(i) != lo || c == 0 {
                return None;
            }
            if h.buckets[i] != 0 {
                return None; // duplicate bucket
            }
            h.buckets[i] = c;
            total = total.checked_add(c)?;
        }
        if total != count {
            return None;
        }
        Some(h)
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs in
    /// ascending bound order.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower(i), c))
            .collect()
    }

    /// The inclusive upper bound of bucket `i` (the largest value that
    /// falls into it): `bucket_lower(i + 1) - 1`, or `u64::MAX` for
    /// the last bucket.
    #[must_use]
    pub fn bucket_upper(i: usize) -> u64 {
        if i + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            Self::bucket_lower(i + 1) - 1
        }
    }

    /// The `q`-quantile of the recorded samples under **fixed,
    /// deterministic bucket-interpolation rules** — the same inputs
    /// produce the same answer on every platform and at every worker
    /// count, so quantiles are safe to embed in byte-compared
    /// artifacts.
    ///
    /// The rules, exactly:
    ///
    /// 1. An empty histogram reports 0; `q <= 0` reports [`min`];
    ///    `q >= 1` reports [`max`](Self::max).
    /// 2. The target rank is `ceil(q * count)`, clamped to
    ///    `[1, count]`.
    /// 3. Buckets are scanned in ascending order until the cumulative
    ///    count reaches the rank. The winning bucket's inclusive
    ///    bounds are first narrowed to the observed `[min, max]`; the
    ///    value is then linearly interpolated (integer arithmetic,
    ///    truncating) between the narrowed bounds by the rank's
    ///    position among that bucket's samples. A bucket holding a
    ///    single sample reports its narrowed upper bound — so the top
    ///    quantiles of a distribution whose largest sample sits alone
    ///    in the last bucket report that sample, not a bucket edge.
    /// 4. The result is clamped to the observed `[min, max]`, so a
    ///    histogram holding one distinct value reports that value at
    ///    every quantile.
    ///
    /// [`min`]: Self::min
    ///
    /// # Examples
    ///
    /// ```
    /// use paraconv_obs::Histogram;
    ///
    /// let mut h = Histogram::new();
    /// for v in [1, 2, 3, 100] {
    ///     h.record(v);
    /// }
    /// assert_eq!(h.quantile(0.5), 2);
    /// assert_eq!(h.quantile(1.0), 100);
    /// ```
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        // ceil(q * count) without float-precision surprises at the
        // top: clamp into [1, count].
        let rank = (q * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Bucket bounds narrowed to the observed [min, max].
                let lo = Self::bucket_lower(i).max(self.min());
                let hi = Self::bucket_upper(i).min(self.max);
                // Position of the rank among this bucket's `c`
                // samples, in [0, c-1]; interpolate on the narrowed
                // span with truncating integer math.
                let pos = rank - seen - 1;
                let span = hi.saturating_sub(lo);
                let value = if c <= 1 {
                    hi
                } else {
                    // span/(c-1) scaling via u128: span can be up to
                    // ~2^63, pos up to c-1.
                    lo + u64::try_from(u128::from(span) * u128::from(pos) / u128::from(c - 1))
                        .unwrap_or(span)
                };
                return value.clamp(self.min(), self.max);
            }
            seen += c;
        }
        self.max
    }
}

/// A point-in-time view of every metric recorded so far.
///
/// Snapshots deliberately contain **no wall-clock data**: every value
/// derives from simulated quantities, so two runs of the same workload
/// produce byte-identical snapshots at any worker count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic sums, keyed by metric name.
    pub counters: BTreeMap<String, u64>,
    /// High-water marks (merged with `max`), keyed by metric name.
    pub gauges: BTreeMap<String, u64>,
    /// Sample distributions, keyed by metric name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value, 0 when never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's high-water mark, 0 when never set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let g = self.gauges.entry(name.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Renders the snapshot as a JSONL event stream: one JSON object
    /// per line, counters first, then gauges, then histograms, each
    /// group in name order — a deterministic serialization.
    ///
    /// Line shapes:
    ///
    /// ```json
    /// {"type":"counter","name":"sim.tasks","value":128}
    /// {"type":"gauge","name":"sim.cache.peak_occupancy","max":12}
    /// {"type":"histogram","name":"sim.transfer.latency","count":3,"sum":9,"min":1,"max":4,"buckets":[[1,1],[2,1],[4,1]]}
    /// ```
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(",\"max\":{value}}}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            ));
            for (i, (lo, c)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{lo},{c}]"));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` comments, sanitized metric names
    /// under a `paraconv_` prefix, and cumulative `_bucket{le="…"}`
    /// series for histograms. Output is deterministic: groups in
    /// fixed order (counters, gauges, histograms), names sorted.
    ///
    /// Dots and any other non-`[a-zA-Z0-9_]` characters in metric
    /// names become underscores (`sim.tasks` → `paraconv_sim_tasks`).
    /// Gauges here are high-water marks, so they are exposed as
    /// Prometheus gauges that only ever rise.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for i in 0..HISTOGRAM_BUCKETS {
                let c = h.bucket_count(i);
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let le = Histogram::bucket_upper(i);
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{n}_sum {}\n", h.sum()));
            out.push_str(&format!("{n}_count {}\n", h.count()));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{n}_quantile{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
        }
        out
    }
}

/// Sanitizes a metric name for the Prometheus exposition format:
/// every character outside `[a-zA-Z0-9_]` becomes `_`, and the result
/// is prefixed with `paraconv_`.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("paraconv_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Validates Prometheus text-exposition lines: every line must be a
/// `#` comment or `name[{label="value",…}] <integer-or-float>` with a
/// legal metric name. Returns the number of sample (non-comment)
/// lines.
///
/// This is the line-format checker CI runs over emitted expositions —
/// a structural check, deliberately stricter than "Prometheus would
/// probably accept it".
///
/// # Errors
///
/// The first offending line, as `line <n>: <reason>`.
pub fn check_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.split_once(' ') {
            Some(parts) => parts,
            None => return Err(format!("line {n}: expected `name value`")),
        };
        let name = match name_part.split_once('{') {
            Some((name, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return Err(format!("line {n}: unterminated label set"));
                };
                for pair in labels.split(',') {
                    let Some((k, v)) = pair.split_once('=') else {
                        return Err(format!("line {n}: label `{pair}` is not key=\"value\""));
                    };
                    if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("line {n}: label `{pair}` is not key=\"value\""));
                    }
                }
                name
            }
            None => name_part,
        };
        let mut chars = name.chars();
        let legal_start = chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
        if !legal_start || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {n}: illegal metric name `{name}`"));
        }
        if value_part.is_empty() || value_part.parse::<f64>().is_err() {
            return Err(format!("line {n}: `{value_part}` is not a number"));
        }
        samples += 1;
    }
    Ok(samples)
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter    {name:<36} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge(max) {name:<36} {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "histogram  {name:<36} count={} sum={} min={} max={} mean={:.2} p50={} p90={} p99={}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lower(0), 0);
        assert_eq!(Histogram::bucket_lower(1), 1);
        assert_eq!(Histogram::bucket_lower(3), 4);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let samples = [0u64, 1, 5, 9, 1024, u64::MAX];
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let mut a = MetricsSnapshot::new();
        a.counters.insert("c".into(), 3);
        a.gauges.insert("g".into(), 10);
        let mut b = MetricsSnapshot::new();
        b.counters.insert("c".into(), 4);
        b.gauges.insert("g".into(), 7);
        b.gauges.insert("h".into(), 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 7);
        assert_eq!(ab.gauge("g"), 10);
        assert_eq!(ab.gauge("h"), 2);
    }

    #[test]
    fn record_zero_lands_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1)]);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn record_u64_max_lands_in_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket_count(HISTOGRAM_BUCKETS - 1), 1);
        assert_eq!(h.min(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        // sum saturates rather than wrapping
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.quantile(0.99), u64::MAX);
    }

    #[test]
    fn bucket_of_and_bucket_lower_round_trip_every_power_of_two() {
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            let i = Histogram::bucket_of(v);
            // A power of two is the lower bound of its own bucket…
            assert_eq!(Histogram::bucket_lower(i), v, "2^{exp}");
            // …and the value one below it closes the previous bucket.
            if v > 1 {
                let prev = Histogram::bucket_of(v - 1);
                assert_eq!(prev, i - 1, "2^{exp} - 1");
                assert_eq!(Histogram::bucket_upper(prev), v - 1, "2^{exp} - 1");
            }
        }
        assert_eq!(Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_round_trips_through_its_parts() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 9, 1024, u64::MAX] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &h.nonzero_buckets())
                .expect("own parts are consistent");
        assert_eq!(rebuilt, h);
        assert_eq!(
            Histogram::from_parts(0, 0, 0, 0, &[]),
            Some(Histogram::new())
        );
        // 3 is inside bucket [2,3], not a boundary.
        assert!(Histogram::from_parts(2, 6, 3, 3, &[(3, 2)]).is_none());
        // Counts must sum to `count`.
        assert!(Histogram::from_parts(3, 6, 1, 4, &[(1, 1), (4, 1)]).is_none());
        assert!(Histogram::from_parts(1, 0, 5, 4, &[(4, 1)]).is_none());
    }

    #[test]
    fn quantiles_follow_the_documented_rules() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1); // q <= 0 → min
        assert_eq!(h.quantile(1.0), 100); // q >= 1 → max
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(0.99), 100);

        // A single distinct value reports itself at every quantile.
        let mut one = Histogram::new();
        for _ in 0..10 {
            one.record(7);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 7, "q={q}");
        }

        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn prometheus_exposition_passes_the_line_checker() {
        let mut s = MetricsSnapshot::new();
        s.counters.insert("sim.tasks".into(), 42);
        s.gauges.insert("sim.cache.peak_occupancy".into(), 7);
        let mut h = Histogram::new();
        for v in [1u64, 3, 900] {
            h.record(v);
        }
        s.histograms.insert("sim.transfer.latency".into(), h);
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE paraconv_sim_tasks counter\n"));
        assert!(text.contains("paraconv_sim_tasks 42\n"));
        assert!(text.contains("paraconv_sim_cache_peak_occupancy 7\n"));
        assert!(text.contains("paraconv_sim_transfer_latency_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("paraconv_sim_transfer_latency_count 3\n"));
        assert!(text.contains("paraconv_sim_transfer_latency_quantile{quantile=\"0.5\"} 3\n"));
        let samples = check_prometheus(&text).expect("checker accepts own output");
        assert!(samples >= 10, "expected >= 10 sample lines, got {samples}");
    }

    #[test]
    fn prometheus_checker_rejects_malformed_lines() {
        assert!(check_prometheus("no_value_here").is_err());
        assert!(check_prometheus("9starts_with_digit 1").is_err());
        assert!(check_prometheus("name{unterminated=\"x\" 1").is_err());
        assert!(check_prometheus("name{k=unquoted} 1").is_err());
        assert!(check_prometheus("name not-a-number").is_err());
        assert_eq!(check_prometheus("# just a comment\n"), Ok(0));
        assert_eq!(check_prometheus("ok{le=\"+Inf\"} 3\n"), Ok(1));
    }

    #[test]
    fn jsonl_is_deterministic_and_line_per_metric() {
        let mut s = MetricsSnapshot::new();
        s.counters.insert("b.count".into(), 2);
        s.counters.insert("a.count".into(), 1);
        s.gauges.insert("peak".into(), 9);
        let mut h = Histogram::new();
        h.record(3);
        s.histograms.insert("lat".into(), h);
        let jsonl = s.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        // Counters sort by name, groups in fixed order.
        assert!(lines[0].contains("\"a.count\""));
        assert!(lines[1].contains("\"b.count\""));
        assert!(lines[2].contains("\"gauge\""));
        assert!(lines[3].contains("\"histogram\""));
        assert_eq!(jsonl, s.to_jsonl());
    }

    proptest::proptest! {
        #[test]
        fn histogram_merge_is_commutative(
            xs in proptest::collection::vec(0u64..=u64::MAX, 0..64),
            ys in proptest::collection::vec(0u64..=u64::MAX, 0..64),
        ) {
            let mut a = Histogram::new();
            for &v in &xs {
                a.record(v);
            }
            let mut b = Histogram::new();
            for &v in &ys {
                b.record(v);
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            proptest::prop_assert_eq!(&ab, &ba);

            // Merging also matches recording everything into one
            // histogram, and quantiles agree on the merged view.
            let mut whole = Histogram::new();
            for &v in xs.iter().chain(&ys) {
                whole.record(v);
            }
            proptest::prop_assert_eq!(&ab, &whole);
            proptest::prop_assert_eq!(ab.quantile(0.5), whole.quantile(0.5));
        }
    }
}
