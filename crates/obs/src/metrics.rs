//! Metric aggregates: counters, high-water gauges and histograms.
//!
//! Every aggregate merges with a commutative, associative operation
//! (sum, max, bucket-wise sum), so per-thread buffers collapse to the
//! **same** totals regardless of how work was divided across workers —
//! the property the sweep engine's `jobs=1` vs `jobs=N` determinism
//! test relies on.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::write_escaped;

/// Number of power-of-two histogram buckets: bucket 0 holds zeros,
/// bucket `i > 0` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use paraconv_obs::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(3);
/// h.record(4);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 7);
/// assert_eq!(h.min(), 0);
/// assert_eq!(h.max(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive lower bound of bucket `i`.
    #[must_use]
    pub fn bucket_lower(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Merges another histogram into this one (bucket-wise sums).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs in
    /// ascending bound order.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower(i), c))
            .collect()
    }
}

/// A point-in-time view of every metric recorded so far.
///
/// Snapshots deliberately contain **no wall-clock data**: every value
/// derives from simulated quantities, so two runs of the same workload
/// produce byte-identical snapshots at any worker count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic sums, keyed by metric name.
    pub counters: BTreeMap<String, u64>,
    /// High-water marks (merged with `max`), keyed by metric name.
    pub gauges: BTreeMap<String, u64>,
    /// Sample distributions, keyed by metric name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value, 0 when never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's high-water mark, 0 when never set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let g = self.gauges.entry(name.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Renders the snapshot as a JSONL event stream: one JSON object
    /// per line, counters first, then gauges, then histograms, each
    /// group in name order — a deterministic serialization.
    ///
    /// Line shapes:
    ///
    /// ```json
    /// {"type":"counter","name":"sim.tasks","value":128}
    /// {"type":"gauge","name":"sim.cache.peak_occupancy","max":12}
    /// {"type":"histogram","name":"sim.transfer.latency","count":3,"sum":9,"min":1,"max":4,"buckets":[[1,1],[2,1],[4,1]]}
    /// ```
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(",\"max\":{value}}}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            ));
            for (i, (lo, c)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{lo},{c}]"));
            }
            out.push_str("]}\n");
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter    {name:<36} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge(max) {name:<36} {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "histogram  {name:<36} count={} sum={} min={} max={} mean={:.2}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lower(0), 0);
        assert_eq!(Histogram::bucket_lower(1), 1);
        assert_eq!(Histogram::bucket_lower(3), 4);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let samples = [0u64, 1, 5, 9, 1024, u64::MAX];
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let mut a = MetricsSnapshot::new();
        a.counters.insert("c".into(), 3);
        a.gauges.insert("g".into(), 10);
        let mut b = MetricsSnapshot::new();
        b.counters.insert("c".into(), 4);
        b.gauges.insert("g".into(), 7);
        b.gauges.insert("h".into(), 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 7);
        assert_eq!(ab.gauge("g"), 10);
        assert_eq!(ab.gauge("h"), 2);
    }

    #[test]
    fn jsonl_is_deterministic_and_line_per_metric() {
        let mut s = MetricsSnapshot::new();
        s.counters.insert("b.count".into(), 2);
        s.counters.insert("a.count".into(), 1);
        s.gauges.insert("peak".into(), 9);
        let mut h = Histogram::new();
        h.record(3);
        s.histograms.insert("lat".into(), h);
        let jsonl = s.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        // Counters sort by name, groups in fixed order.
        assert!(lines[0].contains("\"a.count\""));
        assert!(lines[1].contains("\"b.count\""));
        assert!(lines[2].contains("\"gauge\""));
        assert!(lines[3].contains("\"histogram\""));
        assert_eq!(jsonl, s.to_jsonl());
    }
}
