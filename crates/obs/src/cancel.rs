//! Cooperative cancellation for long-running planning work.
//!
//! A [`CancelToken`] is a cloneable handle over one shared flag. The
//! serving layer hands a token to each planning request; a deadline
//! watchdog (or a drain sequence) sets it, and the scheduler / DP fill
//! loop poll it at phase boundaries. Polling is a single relaxed
//! atomic load, so the hot paths pay nothing measurable when no
//! deadline is armed.
//!
//! The token carries no wall-clock state on purpose: plans stay
//! byte-deterministic because cancellation only ever *aborts* work
//! (yielding a typed error), never perturbs the bytes of a plan that
//! completes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cooperative-cancellation flag.
///
/// All clones observe the same flag; once [`cancel`](Self::cancel) is
/// called the token stays cancelled forever (there is no reset — a
/// request that missed its deadline cannot come back).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Sets the flag; every clone observes it from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Polls the flag (one relaxed-class atomic load).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<CancelToken>> =
        const { std::cell::RefCell::new(None) };
}

/// RAII scope installing a token as the thread's ambient cancellation
/// signal. While the scope is live, [`cancel_requested`] on this
/// thread polls the token; deep loops (the DP fill, the plan-emit
/// loop) poll the ambient signal so cancellation needs no signature
/// changes along the call chain. Scopes nest; dropping restores the
/// previous token.
#[derive(Debug)]
pub struct CancelScope {
    prev: Option<CancelToken>,
}

impl CancelScope {
    /// Installs `token` for the current thread until the scope drops.
    #[must_use]
    pub fn enter(token: CancelToken) -> CancelScope {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(token));
        CancelScope { prev }
    }
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Whether the thread's ambient [`CancelToken`] (if any) has fired.
/// Always `false` outside a [`CancelScope`], so instrumented loops
/// cost one thread-local read when no deadline is armed.
#[must_use]
pub fn cancel_requested() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_scope_installs_and_restores() {
        assert!(!cancel_requested());
        let outer = CancelToken::new();
        let scope = CancelScope::enter(outer.clone());
        assert!(!cancel_requested());
        {
            let inner = CancelToken::new();
            inner.cancel();
            let _nested = CancelScope::enter(inner);
            assert!(cancel_requested());
        }
        // Back to the (un-cancelled) outer token.
        assert!(!cancel_requested());
        outer.cancel();
        assert!(cancel_requested());
        drop(scope);
        assert!(!cancel_requested());
    }

    #[test]
    fn clones_share_one_flag() {
        let token = CancelToken::new();
        let peer = token.clone();
        assert!(!token.is_cancelled());
        assert!(!peer.is_cancelled());
        peer.cancel();
        assert!(token.is_cancelled());
        assert!(peer.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancel thread completes");
        assert!(token.is_cancelled());
    }
}
