//! Structured tracing and metrics for the Para-CONV stack
//! (`paraconv-obs`).
//!
//! Every layer of the pipeline — partition → retime → DP placement →
//! schedule → simulate → audit — instruments itself against this
//! crate: phase **spans** for a Perfetto-loadable timeline, and
//! **counters / gauges / histograms** for a deterministic metrics
//! snapshot. Recording is off by default and gated by one process-wide
//! atomic, so instrumented hot paths (the simulator's per-task loop,
//! the DP fill) cost a single relaxed load when observability is not
//! requested.
//!
//! Three properties the rest of the workspace relies on:
//!
//! * **Deterministic metrics.** Snapshots contain only simulated
//!   quantities merged with commutative operations, so a sweep run on
//!   one worker and on N workers exports byte-identical JSONL.
//! * **Contention-free recording.** Records land in thread-local
//!   buffers; merging happens on thread exit (sweep workers) or an
//!   explicit flush — never inside the recording fast path.
//! * **Leaf of the workspace.** The build environment has no registry
//!   access; this crate sits at the bottom of the workspace graph
//!   (only the vendored `serde_json` stand-in below it, supplying the
//!   one shared JSON string escaper) and serializes its own JSON.
//!
//! On top of the snapshot layer sit three serving-grade facilities:
//! [`Histogram::quantile`] (deterministic p50/p90/p99),
//! [`WindowedMetrics`] (cycle-keyed rolling windows checked against
//! [`Slo`] objectives) and the **flight recorder**
//! ([`flight_enable`]/[`flight_record`]) — a bounded ring of
//! structured events drained into postmortem artifacts when a
//! campaign dies.
//!
//! # Examples
//!
//! ```
//! use paraconv_obs as obs;
//!
//! obs::enable();
//! {
//!     let _phase = obs::span("demo.phase", "demo");
//!     obs::counter_add("demo.items", 3);
//!     obs::gauge_max("demo.peak", 7);
//!     obs::observe("demo.latency", 12);
//! }
//! obs::disable();
//!
//! let metrics = obs::snapshot();
//! assert_eq!(metrics.counter("demo.items"), 3);
//! // One JSON object per metric, sorted — safe to diff across runs.
//! assert!(metrics.to_jsonl().contains("\"demo.peak\""));
//!
//! let mut trace = obs::ChromeTrace::new();
//! trace.push_spans(0, &obs::take_spans());
//! assert!(trace.to_json().starts_with("{\"traceEvents\":"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cancel;
mod chrome;
mod flight;
pub mod json;
mod metrics;
mod recorder;
mod window;

pub use cancel::{cancel_requested, CancelScope, CancelToken};
pub use chrome::{ChromeEvent, ChromeTrace};
pub use flight::{
    flight_active, flight_disable, flight_enable, flight_events, flight_record, flight_reset,
    FlightEvent, DEFAULT_FLIGHT_CAPACITY,
};
pub use metrics::{
    check_prometheus, prometheus_name, Histogram, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use recorder::{
    counter_add, current_tid, disable, enable, enabled, flush_thread, gauge_max, logical_time,
    now_us, observe, reset, set_enabled, snapshot, span, take_spans, BufferedRecorder,
    NoopRecorder, Recorder, SpanEvent, SpanGuard,
};
pub use window::{Slo, SloStatus, WindowedMetrics};
