//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load directly).
//!
//! The export uses the JSON-object envelope with complete (`"ph":"X"`)
//! events plus metadata events naming processes and threads. Reference:
//! the Trace Event Format document; the subset emitted here is the
//! stable core every viewer supports.

use std::fmt::Write as _;

use crate::json::write_escaped;
use crate::recorder::SpanEvent;

/// One complete (`ph: "X"`) trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Event name (the label rendered on the slice).
    pub name: String,
    /// Category (comma-separated tags in the viewer's filter).
    pub cat: String,
    /// Process id — a *logical* track group (e.g. "PE array").
    pub pid: u32,
    /// Thread id — a row inside the process track.
    pub tid: u32,
    /// Start timestamp in microseconds.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Extra key/value detail shown in the viewer's args pane.
    pub args: Vec<(String, String)>,
}

/// Builder for one trace file.
///
/// # Examples
///
/// ```
/// use paraconv_obs::{ChromeEvent, ChromeTrace};
///
/// let mut trace = ChromeTrace::new();
/// trace.name_process(1, "PE array");
/// trace.name_thread(1, 0, "PE0");
/// trace.push(ChromeEvent {
///     name: "conv1".into(),
///     cat: "task".into(),
///     pid: 1,
///     tid: 0,
///     ts_us: 0,
///     dur_us: 4,
///     args: vec![("iteration".into(), "1".into())],
/// });
/// let json = trace.to_json();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
    process_names: Vec<(u32, String)>,
    thread_names: Vec<(u32, u32, String)>,
}

impl ChromeTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Labels a process track group.
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.process_names.push((pid, name.to_owned()));
    }

    /// Labels a thread row inside a process.
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.thread_names.push((pid, tid, name.to_owned()));
    }

    /// Appends one complete event.
    pub fn push(&mut self, event: ChromeEvent) {
        self.events.push(event);
    }

    /// Appends recorded phase spans under process `pid`, one row per
    /// recording thread.
    pub fn push_spans(&mut self, pid: u32, spans: &[SpanEvent]) {
        for s in spans {
            self.events.push(ChromeEvent {
                name: s.name.clone(),
                cat: s.cat.to_owned(),
                pid,
                tid: s.tid,
                ts_us: s.ts_us,
                dur_us: s.dur_us,
                args: Vec::new(),
            });
        }
    }

    /// Number of complete events queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no complete events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace as a Chrome trace-event JSON object.
    ///
    /// Events are sorted by `(pid, tid, ts, name)` so the output is
    /// deterministic for a given event set regardless of the order
    /// worker threads delivered them.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            (a.pid, a.tid, a.ts_us, &a.name).cmp(&(b.pid, b.tid, b.ts_us, &b.name))
        });

        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        for (pid, name) in &self.process_names {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
            ));
            write_escaped(&mut out, name);
            out.push_str("}}");
        }
        for (pid, tid, name) in &self.thread_names {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
            ));
            write_escaped(&mut out, name);
            out.push_str("}}");
        }
        for e in &events {
            sep(&mut out);
            out.push('{');
            out.push_str("\"name\":");
            write_escaped(&mut out, &e.name);
            out.push_str(",\"cat\":");
            write_escaped(&mut out, if e.cat.is_empty() { "default" } else { &e.cat });
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}",
                e.pid, e.tid, e.ts_us, e.dur_us
            );
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(&mut out, k);
                    out.push(':');
                    write_escaped(&mut out, v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(pid: u32, tid: u32, ts: u64, name: &str) -> ChromeEvent {
        ChromeEvent {
            name: name.to_owned(),
            cat: "test".to_owned(),
            pid,
            tid,
            ts_us: ts,
            dur_us: 1,
            args: Vec::new(),
        }
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let mut a = ChromeTrace::new();
        a.push(event(1, 1, 5, "late"));
        a.push(event(1, 0, 2, "early"));
        let mut b = ChromeTrace::new();
        b.push(event(1, 0, 2, "early"));
        b.push(event(1, 1, 5, "late"));
        assert_eq!(a.to_json(), b.to_json());
        let json = a.to_json();
        assert!(json.find("early").unwrap() < json.find("late").unwrap());
    }

    #[test]
    fn metadata_events_are_emitted() {
        let mut t = ChromeTrace::new();
        t.name_process(2, "transfers");
        t.name_thread(2, 3, "PE3");
        t.push(event(2, 3, 0, "xfer"));
        let json = t.to_json();
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn spans_become_events() {
        let spans = vec![SpanEvent {
            name: "sched.kernel".into(),
            cat: "sched",
            tid: 7,
            ts_us: 10,
            dur_us: 5,
        }];
        let mut t = ChromeTrace::new();
        t.push_spans(0, &spans);
        assert_eq!(t.len(), 1);
        let json = t.to_json();
        assert!(json.contains("\"sched.kernel\""));
        assert!(json.contains("\"tid\":7"));
        assert!(json.contains("\"dur\":5"));
    }

    #[test]
    fn hostile_names_round_trip_through_the_shared_escaper() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "PE \"array\" \\ 阵列");
        t.name_thread(1, 0, "PE0\nretimed µops");
        t.push(ChromeEvent {
            name: "conv\\1 \"3×3\" …latência".into(),
            cat: "tâche\tspéciale".into(),
            pid: 1,
            tid: 0,
            ts_us: 0,
            dur_us: 2,
            args: vec![("clé \"spéciale\"".into(), "valeur\\finale".into())],
        });
        let json = t.to_json();
        // The full document must parse with the vendored serde_json —
        // the same parser CI runs over emitted traces.
        let doc = serde_json::from_str(&json).expect("trace JSON parses");
        let names: Vec<String> = match &doc {
            serde_json::Value::Object(map) => match map.get("traceEvents") {
                Some(serde_json::Value::Array(events)) => events
                    .iter()
                    .filter_map(|e| match e {
                        serde_json::Value::Object(o) => match o.get("name") {
                            Some(serde_json::Value::String(s)) => Some(s.clone()),
                            _ => None,
                        },
                        _ => None,
                    })
                    .collect(),
                _ => Vec::new(),
            },
            _ => Vec::new(),
        };
        assert!(names.iter().any(|n| n == "conv\\1 \"3×3\" …latência"));
        assert!(json.contains("\\\\ 阵列"));
        assert!(json.contains("PE0\\nretimed µops"));
    }

    #[test]
    fn args_and_escaping() {
        let mut t = ChromeTrace::new();
        t.push(ChromeEvent {
            name: "exec \"a\"".into(),
            cat: String::new(),
            pid: 1,
            tid: 0,
            ts_us: 0,
            dur_us: 2,
            args: vec![("edge".into(), "e0".into())],
        });
        let json = t.to_json();
        assert!(json.contains("\\\"a\\\""));
        assert!(json.contains("\"args\":{\"edge\":\"e0\"}"));
        assert!(json.contains("\"cat\":\"default\""));
    }
}
