//! Time-windowed metric aggregation keyed by **logical** cycles.
//!
//! A long-running planner (ROADMAP item 1, planning-as-a-service)
//! cannot report one whole-process snapshot forever: operators want
//! rolling rates and burn-down against declared service objectives.
//! [`WindowedMetrics`] keeps a bounded ring of per-window
//! [`MetricsSnapshot`]s keyed by `cycle / window_len` — simulated
//! cycles, never wallclock — so the same ingest stream produces the
//! same windows on every machine and at every worker count, and two
//! rings covering disjoint shards of a run
//! [`merge`](WindowedMetrics::merge) commutatively into the ring a
//! single worker would have built.

use std::collections::BTreeMap;
use std::fmt;

use crate::metrics::{Histogram, MetricsSnapshot};

/// Declared service objectives a serving planner is held to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slo {
    /// The p99 of the tracked latency histogram must stay at or below
    /// this many simulated cycles.
    pub p99_cycles: u64,
    /// Each window must complete at least this many tracked work items
    /// (counter delta per window).
    pub min_throughput: u64,
}

/// Verdict of checking a [`WindowedMetrics`] ring against an [`Slo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloStatus {
    /// Windows inspected (the ring's current occupancy).
    pub windows: u64,
    /// Windows violating the latency objective.
    pub latency_violations: u64,
    /// Windows violating the throughput objective.
    pub throughput_violations: u64,
    /// Error budget consumed, in basis points (violating windows /
    /// total windows × 10⁴) — integer so status reports stay
    /// byte-deterministic.
    pub burn_bp: u64,
}

impl SloStatus {
    /// True when no window violated either objective.
    #[must_use]
    pub const fn ok(&self) -> bool {
        self.latency_violations == 0 && self.throughput_violations == 0
    }
}

impl fmt::Display for SloStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slo {}: {} windows, {} latency violations, {} throughput violations, burn {}.{:02}%",
            if self.ok() { "OK" } else { "VIOLATED" },
            self.windows,
            self.latency_violations,
            self.throughput_violations,
            self.burn_bp / 100,
            self.burn_bp % 100,
        )
    }
}

/// A bounded ring of per-window metric snapshots keyed by logical
/// cycle.
///
/// Windows are indexed by `cycle / window_len`; the ring keeps the
/// `capacity` **highest** window indices and evicts the lowest — an
/// order-independent rule, so merging two rings never depends on
/// arrival order.
///
/// # Examples
///
/// ```
/// use paraconv_obs::{MetricsSnapshot, WindowedMetrics};
///
/// let mut w = WindowedMetrics::new(100, 8);
/// let mut snap = MetricsSnapshot::new();
/// snap.counters.insert("serve.requests".into(), 3);
/// w.merge_snapshot(250, &snap); // lands in window 2 = [200, 300)
/// assert_eq!(w.window(2).unwrap().counter("serve.requests"), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedMetrics {
    window_len: u64,
    capacity: usize,
    windows: BTreeMap<u64, MetricsSnapshot>,
}

impl WindowedMetrics {
    /// Creates a ring of up to `capacity` windows, each spanning
    /// `window_len` logical cycles. Both are clamped to at least 1.
    #[must_use]
    pub fn new(window_len: u64, capacity: usize) -> Self {
        WindowedMetrics {
            window_len: window_len.max(1),
            capacity: capacity.max(1),
            windows: BTreeMap::new(),
        }
    }

    /// The window length in logical cycles.
    #[must_use]
    pub const fn window_len(&self) -> u64 {
        self.window_len
    }

    /// The window index a cycle falls into.
    #[must_use]
    pub const fn window_of(&self, cycle: u64) -> u64 {
        cycle / self.window_len
    }

    /// Number of windows currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The snapshot for window index `idx`, if retained.
    #[must_use]
    pub fn window(&self, idx: u64) -> Option<&MetricsSnapshot> {
        self.windows.get(&idx)
    }

    /// The retained windows in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &MetricsSnapshot)> {
        self.windows.iter().map(|(&i, s)| (i, s))
    }

    /// Merges `snapshot` into the window containing `cycle`.
    pub fn merge_snapshot(&mut self, cycle: u64, snapshot: &MetricsSnapshot) {
        let idx = self.window_of(cycle);
        self.windows.entry(idx).or_default().merge(snapshot);
        self.evict();
    }

    /// Merges another ring into this one window-by-window. Commutative
    /// up to ring parameters: `a.merge(&b)` and `b.merge(&a)` hold the
    /// same windows when both rings share `window_len` and `capacity`.
    pub fn merge(&mut self, other: &WindowedMetrics) {
        for (&idx, snap) in &other.windows {
            self.windows.entry(idx).or_default().merge(snap);
        }
        self.evict();
    }

    fn evict(&mut self) {
        while self.windows.len() > self.capacity {
            self.windows.pop_first();
        }
    }

    /// Rolling rate of counter `name`: its total across retained
    /// windows divided by the cycles those windows span, in events per
    /// 1000 cycles (integer, truncating). 0 when empty.
    #[must_use]
    pub fn rate_per_kcycle(&self, name: &str) -> u64 {
        if self.windows.is_empty() {
            return 0;
        }
        let total: u64 = self.windows.values().map(|s| s.counter(name)).sum();
        let span = self.windows.len() as u64 * self.window_len;
        total.saturating_mul(1000) / span
    }

    /// The tracked latency distribution aggregated across all retained
    /// windows.
    #[must_use]
    pub fn aggregate_histogram(&self, name: &str) -> Histogram {
        let mut h = Histogram::new();
        for s in self.windows.values() {
            if let Some(w) = s.histogram(name) {
                h.merge(w);
            }
        }
        h
    }

    /// Checks every retained window against `slo`: the p99 of
    /// `latency_hist` must stay within `slo.p99_cycles`, and
    /// `throughput_counter` must reach `slo.min_throughput` per
    /// window. Windows with no sample of the latency histogram only
    /// count toward the throughput check.
    #[must_use]
    pub fn slo_status(&self, latency_hist: &str, throughput_counter: &str, slo: &Slo) -> SloStatus {
        let mut latency_violations = 0u64;
        let mut throughput_violations = 0u64;
        for s in self.windows.values() {
            if let Some(h) = s.histogram(latency_hist) {
                if h.quantile(0.99) > slo.p99_cycles {
                    latency_violations += 1;
                }
            }
            if s.counter(throughput_counter) < slo.min_throughput {
                throughput_violations += 1;
            }
        }
        let windows = self.windows.len() as u64;
        let violating = self
            .windows
            .values()
            .filter(|s| {
                let lat = s
                    .histogram(latency_hist)
                    .is_some_and(|h| h.quantile(0.99) > slo.p99_cycles);
                lat || s.counter(throughput_counter) < slo.min_throughput
            })
            .count() as u64;
        let burn_bp = (violating * 10_000).checked_div(windows).unwrap_or(0);
        SloStatus {
            windows,
            latency_violations,
            throughput_violations,
            burn_bp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counter: u64, latencies: &[u64]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.counters.insert("serve.requests".into(), counter);
        let mut h = Histogram::new();
        for &v in latencies {
            h.record(v);
        }
        if !latencies.is_empty() {
            s.histograms.insert("serve.latency".into(), h);
        }
        s
    }

    #[test]
    fn snapshots_land_in_cycle_keyed_windows() {
        let mut w = WindowedMetrics::new(100, 4);
        w.merge_snapshot(0, &snap(1, &[5]));
        w.merge_snapshot(99, &snap(2, &[6]));
        w.merge_snapshot(100, &snap(4, &[7]));
        assert_eq!(w.len(), 2);
        assert_eq!(w.window(0).unwrap().counter("serve.requests"), 3);
        assert_eq!(w.window(1).unwrap().counter("serve.requests"), 4);
    }

    #[test]
    fn eviction_keeps_the_newest_windows() {
        let mut w = WindowedMetrics::new(10, 2);
        for cycle in [5, 15, 25, 35] {
            w.merge_snapshot(cycle, &snap(1, &[]));
        }
        assert_eq!(w.len(), 2);
        assert!(w.window(0).is_none());
        assert!(w.window(2).is_some());
        assert!(w.window(3).is_some());
    }

    #[test]
    fn ring_merge_is_commutative_and_matches_single_writer() {
        let parts: [(u64, MetricsSnapshot); 4] = [
            (10, snap(1, &[3])),
            (110, snap(2, &[30])),
            (25, snap(4, &[9])),
            (205, snap(8, &[100])),
        ];
        let mut whole = WindowedMetrics::new(100, 8);
        for (cycle, s) in &parts {
            whole.merge_snapshot(*cycle, s);
        }
        let mut a = WindowedMetrics::new(100, 8);
        let mut b = WindowedMetrics::new(100, 8);
        for (i, (cycle, s)) in parts.iter().enumerate() {
            if i % 2 == 0 {
                a.merge_snapshot(*cycle, s);
            } else {
                b.merge_snapshot(*cycle, s);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
    }

    #[test]
    fn rates_and_aggregates_cover_all_windows() {
        let mut w = WindowedMetrics::new(100, 8);
        w.merge_snapshot(50, &snap(10, &[1, 2]));
        w.merge_snapshot(150, &snap(30, &[4, 8]));
        // 40 events over 2 windows × 100 cycles = 200 events/kcycle.
        assert_eq!(w.rate_per_kcycle("serve.requests"), 200);
        assert_eq!(w.aggregate_histogram("serve.latency").count(), 4);
    }

    #[test]
    fn slo_status_counts_violating_windows() {
        let slo = Slo {
            p99_cycles: 10,
            min_throughput: 5,
        };
        let mut w = WindowedMetrics::new(100, 8);
        w.merge_snapshot(0, &snap(9, &[1, 2, 3])); // healthy
        w.merge_snapshot(100, &snap(9, &[1, 2, 400])); // latency violation
        w.merge_snapshot(200, &snap(2, &[1])); // throughput violation
        let status = w.slo_status("serve.latency", "serve.requests", &slo);
        assert!(!status.ok());
        assert_eq!(status.windows, 3);
        assert_eq!(status.latency_violations, 1);
        assert_eq!(status.throughput_violations, 1);
        // 2 of 3 windows violate something: 6666 bp.
        assert_eq!(status.burn_bp, 6666);
        assert!(status.to_string().contains("VIOLATED"));

        let healthy =
            WindowedMetrics::new(100, 8).slo_status("serve.latency", "serve.requests", &slo);
        assert!(healthy.ok());
        assert_eq!(healthy.burn_bp, 0);
    }
}
