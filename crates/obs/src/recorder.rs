//! The recording machinery: a process-wide atomic gate, per-thread
//! buffers and a merge into one global aggregate.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** Every instrumentation site costs one
//!    relaxed atomic load and a predictable branch when recording is
//!    off, so the simulator and schedulers keep their benchmark
//!    numbers.
//! 2. **No contention when enabled.** Records go to a thread-local
//!    [`LocalBuffer`]; the only lock is taken when a buffer flushes —
//!    on thread exit (sweep workers) or an explicit
//!    [`flush_thread`]/[`snapshot`].
//! 3. **Merge order must not matter.** Counters merge by sum, gauges
//!    by max, histograms bucket-wise — so `jobs=1` and `jobs=N` sweeps
//!    aggregate to identical [`MetricsSnapshot`]s.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::{Histogram, MetricsSnapshot};

/// One completed span: a named phase with wall-clock timestamps,
/// destined for the Chrome trace export. Spans never enter metrics
/// snapshots (wall clock is not deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name, e.g. `sched.kernel`.
    pub name: String,
    /// Category shown by Perfetto's filter UI, e.g. `sched`.
    pub cat: &'static str,
    /// Logical thread id (stable per OS thread within a process run).
    pub tid: u32,
    /// Start, microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// The sink instrumentation writes into.
///
/// Two implementations ship: [`NoopRecorder`] (statically free) and
/// [`BufferedRecorder`] (the thread-local machinery behind the
/// module-level functions). Custom recorders are mainly useful in
/// tests that want to observe records synchronously.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to a monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Raises a high-water-mark gauge to at least `value`.
    fn gauge_max(&self, name: &'static str, value: u64);
    /// Records one histogram sample.
    fn observe(&self, name: &'static str, value: u64);
    /// Records a completed span.
    fn record_span(&self, span: SpanEvent);
}

/// A recorder that drops everything (static dispatch, zero cost).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn gauge_max(&self, _name: &'static str, _value: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
    fn record_span(&self, _span: SpanEvent) {}
}

/// The thread-local buffered recorder behind [`counter_add`] and
/// friends. Unlike the module-level functions it does **not** check
/// the global enable gate — callers holding one explicitly asked for
/// recording.
#[derive(Debug, Clone, Copy, Default)]
pub struct BufferedRecorder;

impl Recorder for BufferedRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        with_local(|b| *b.counters.entry(name).or_insert(0) += delta);
    }

    fn gauge_max(&self, name: &'static str, value: u64) {
        with_local(|b| {
            let g = b.gauges.entry(name).or_insert(0);
            *g = (*g).max(value);
        });
    }

    fn observe(&self, name: &'static str, value: u64) {
        with_local(|b| b.histograms.entry(name).or_default().record(value));
    }

    fn record_span(&self, span: SpanEvent) {
        with_local(|b| b.spans.push(span));
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

struct GlobalState {
    metrics: MetricsSnapshot,
    spans: Vec<SpanEvent>,
}

fn global() -> &'static Mutex<GlobalState> {
    static GLOBAL: OnceLock<Mutex<GlobalState>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Mutex::new(GlobalState {
            metrics: MetricsSnapshot::new(),
            spans: Vec::new(),
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Process-local sequence driving logical-clock timestamps.
static LOGICAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// True when `PARACONV_LOGICAL_TIME=1` was set at first use: span
/// timestamps come from a process-local atomic sequence instead of the
/// wall clock, making `--trace` output byte-reproducible. Checked once
/// and cached — flipping the variable mid-process has no effect.
#[must_use]
pub fn logical_time() -> bool {
    static LOGICAL: OnceLock<bool> = OnceLock::new();
    *LOGICAL.get_or_init(|| std::env::var("PARACONV_LOGICAL_TIME").is_ok_and(|v| v == "1"))
}

/// Microseconds since the recorder epoch (first use in the process) —
/// or, under [`logical_time`], the next value of a process-local
/// sequence, so every span start/end gets a distinct, reproducible
/// "timestamp".
#[must_use]
pub fn now_us() -> u64 {
    if logical_time() {
        return LOGICAL_SEQ.fetch_add(1, Ordering::Relaxed);
    }
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

struct LocalBuffer {
    tid: u32,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: Vec<SpanEvent>,
}

impl LocalBuffer {
    fn new() -> Self {
        LocalBuffer {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Merges this buffer's contents into the global aggregate and
    /// clears it.
    fn flush(&mut self) {
        if self.is_empty() {
            return;
        }
        let mut g = global()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (name, v) in std::mem::take(&mut self.counters) {
            *g.metrics.counters.entry(name.to_owned()).or_insert(0) += v;
        }
        for (name, v) in std::mem::take(&mut self.gauges) {
            let slot = g.metrics.gauges.entry(name.to_owned()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (name, h) in std::mem::take(&mut self.histograms) {
            g.metrics
                .histograms
                .entry(name.to_owned())
                .or_default()
                .merge(&h);
        }
        g.spans.append(&mut self.spans);
    }
}

impl Drop for LocalBuffer {
    /// Backstop flush on thread exit. Platforms do not guarantee that
    /// TLS destructors have completed by the time `join` returns, so
    /// instrumented worker threads (the sweep engine's pool) also call
    /// [`flush_thread`] explicitly before returning; this destructor
    /// only catches threads that forgot.
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuffer> = RefCell::new(LocalBuffer::new());
}

fn with_local(f: impl FnOnce(&mut LocalBuffer)) {
    // try_with: records arriving while the thread is being torn down
    // (after TLS destruction) are dropped rather than panicking.
    let _ = LOCAL.try_with(|b| f(&mut b.borrow_mut()));
}

/// Is recording enabled? One relaxed atomic load — the cost of every
/// instrumentation site when observability is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Turns recording on.
pub fn enable() {
    set_enabled(true);
}

/// Turns recording off (already-buffered records are kept).
pub fn disable() {
    set_enabled(false);
}

/// Adds `delta` to the counter `name` (no-op while disabled).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        BufferedRecorder.counter_add(name, delta);
    }
}

/// Raises the high-water gauge `name` to at least `value` (no-op while
/// disabled).
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if enabled() {
        BufferedRecorder.gauge_max(name, value);
    }
}

/// Records one histogram sample for `name` (no-op while disabled).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        BufferedRecorder.observe(name, value);
    }
}

/// An RAII phase marker: created by [`span`], records a [`SpanEvent`]
/// covering its lifetime when dropped. Inactive (and free) while
/// recording is disabled.
#[derive(Debug)]
pub struct SpanGuard {
    name: Option<String>,
    cat: &'static str,
    start_us: u64,
}

impl SpanGuard {
    /// A guard that records nothing.
    #[must_use]
    pub const fn inactive() -> Self {
        SpanGuard {
            name: None,
            cat: "",
            start_us: 0,
        }
    }

    /// Closes this span and opens the next one in the same category —
    /// the natural shape for a pipeline of back-to-back phases:
    ///
    /// ```
    /// let phase = paraconv_obs::span("sched.kernel", "sched");
    /// // ... phase 1 ...
    /// let phase = phase.next("sched.alloc");
    /// // ... phase 2 ...
    /// drop(phase);
    /// ```
    #[must_use]
    pub fn next(self, name: impl Into<String>) -> SpanGuard {
        let cat = self.cat;
        drop(self);
        if !enabled() {
            return SpanGuard::inactive();
        }
        SpanGuard {
            name: Some(name.into()),
            cat,
            start_us: now_us(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let end = now_us();
            BufferedRecorder.record_span(SpanEvent {
                name,
                cat: self.cat,
                tid: current_tid(),
                ts_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
            });
        }
    }
}

/// Opens a span named `name` in category `cat`; the span closes (and
/// is recorded) when the returned guard drops.
///
/// # Examples
///
/// ```
/// let _guard = paraconv_obs::span("sched.kernel", "sched");
/// // ... the phase ...
/// ```
#[must_use]
pub fn span(name: impl Into<String>, cat: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inactive();
    }
    SpanGuard {
        name: Some(name.into()),
        cat,
        start_us: now_us(),
    }
}

/// The calling thread's logical id (assigned on first record).
#[must_use]
pub fn current_tid() -> u32 {
    let mut tid = 0;
    let _ = LOCAL.try_with(|b| tid = b.borrow().tid);
    tid
}

/// Merges the calling thread's buffer into the global aggregate.
///
/// Worker threads flush automatically on exit; long-lived threads
/// (such as the main thread) call this — or rely on [`snapshot`] /
/// [`take_spans`], which flush first — before reading aggregates.
pub fn flush_thread() {
    with_local(LocalBuffer::flush);
}

/// Flushes the calling thread and returns a copy of the merged
/// metrics. Buffers of *other* threads that have not called
/// [`flush_thread`] yet are not included; the sweep engine's workers
/// always flush before handing their results back.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    flush_thread();
    global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .metrics
        .clone()
}

/// Flushes the calling thread and drains all recorded spans.
#[must_use]
pub fn take_spans() -> Vec<SpanEvent> {
    flush_thread();
    std::mem::take(
        &mut global()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .spans,
    )
}

/// Clears the global aggregate and the calling thread's buffer.
///
/// Call only while no other instrumented thread is running (tests,
/// benchmark harness sections).
pub fn reset() {
    let _ = LOCAL.try_with(|b| {
        let mut b = b.borrow_mut();
        b.counters.clear();
        b.gauges.clear();
        b.histograms.clear();
        b.spans.clear();
    });
    let mut g = global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    g.metrics = MetricsSnapshot::new();
    g.spans.clear();
    LOGICAL_SEQ.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global recorder state is process-wide; tests that touch it
    /// serialize on this lock.
    pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _l = test_lock();
        reset();
        disable();
        counter_add("t.disabled", 5);
        gauge_max("t.disabled.g", 5);
        observe("t.disabled.h", 5);
        let _span = span("t.disabled.span", "test");
        drop(_span);
        let snap = snapshot();
        assert_eq!(snap.counter("t.disabled"), 0);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn enabled_recording_aggregates() {
        let _l = test_lock();
        reset();
        enable();
        counter_add("t.c", 2);
        counter_add("t.c", 3);
        gauge_max("t.g", 7);
        gauge_max("t.g", 4);
        observe("t.h", 9);
        {
            let _s = span("t.span", "test");
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.counter("t.c"), 5);
        assert_eq!(snap.gauge("t.g"), 7);
        assert_eq!(snap.histogram("t.h").unwrap().count(), 1);
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "t.span");
        assert_eq!(spans[0].cat, "test");
        reset();
    }

    #[test]
    fn threaded_totals_match_sequential_totals() {
        let _l = test_lock();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..100u64 {
                        counter_add("t.par", 1);
                        gauge_max("t.par.peak", i);
                        observe("t.par.h", i);
                    }
                    // Workers hand their buffer off before exiting;
                    // the TLS-destructor flush alone can race `join`.
                    flush_thread();
                });
            }
        });
        disable();
        let par = snapshot();
        reset();

        enable();
        for _ in 0..4 {
            for i in 0..100u64 {
                counter_add("t.par", 1);
                gauge_max("t.par.peak", i);
                observe("t.par.h", i);
            }
        }
        disable();
        let seq = snapshot();
        reset();

        assert_eq!(par, seq);
        assert_eq!(par.counter("t.par"), 400);
        assert_eq!(par.gauge("t.par.peak"), 99);
        assert_eq!(par.histogram("t.par.h").unwrap().count(), 400);
    }

    #[test]
    fn noop_recorder_is_silent() {
        let _l = test_lock();
        reset();
        enable();
        let r = NoopRecorder;
        r.counter_add("t.noop", 1);
        r.observe("t.noop", 1);
        r.gauge_max("t.noop", 1);
        disable();
        assert_eq!(snapshot().counter("t.noop"), 0);
        reset();
    }

    #[test]
    fn span_durations_are_monotonic() {
        let _l = test_lock();
        reset();
        enable();
        {
            let _outer = span("t.outer", "test");
            let _inner = span("t.inner", "test");
        }
        disable();
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        // Inner drops first, so it is recorded first.
        assert_eq!(spans[0].name, "t.inner");
        assert!(spans[0].ts_us >= spans[1].ts_us);
        reset();
    }
}
