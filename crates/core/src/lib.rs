//! # Para-CONV
//!
//! A faithful, fully-simulated reproduction of *"Exploiting
//! Parallelism for Convolutional Connections in Processing-In-Memory
//! Architecture"* (Wang, Zhang, Yang — DAC 2017).
//!
//! Para-CONV is a task-level data-allocation framework for CNNs on a
//! Neurocube-style 3D-stacked PIM accelerator. It *retimes*
//! convolution operations — re-allocating iterations into a prologue
//! so intra-iteration data dependencies become inter-iteration
//! dependencies and every processing engine stays busy — and decides
//! **optimally**, with a dynamic program, which intermediate
//! processing results (IPRs) live in the scarce on-chip PE cache
//! versus the slower stacked eDRAM, minimizing the prologue
//! `R_max × p` and off-chip data movement.
//!
//! This facade crate re-exports the whole stack and adds the
//! evaluation harness:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | application model | [`graph`] | weighted task DAGs `G=(V,E,P,R)` |
//! | CNN front end | [`cnn`] | typed layers, GoogLeNet builder, partitioner |
//! | benchmarks | [`synth`] | the twelve Table 1 graphs, pinned seeds |
//! | architecture | [`pim`] | PE array, vaults, crossbar, validating simulator |
//! | retiming | [`retime`] | Definition 3.1, Theorem 3.1, Figure 4 cases |
//! | allocation | [`alloc`] | the §3.3 dynamic program |
//! | schedulers | [`sched`] | Para-CONV and the SPARTA baseline |
//! | harness | [`experiments`] | Tables 1–2, Figures 5–6, ablations |
//! | sweep engine | [`sweep`] | parallel fan-out over experiment points |
//! | static analysis | [`verify`] | plan verifier, occupancy bounds, lint engine |
//!
//! # Examples
//!
//! End-to-end comparison on a benchmark:
//!
//! ```
//! use paraconv::ParaConv;
//! use paraconv::pim::PimConfig;
//! use paraconv::synth::benchmarks;
//!
//! let graph = benchmarks::by_name("cat").unwrap().graph()?;
//! let runner = ParaConv::new(PimConfig::neurocube(16)?);
//! let comparison = runner.compare(&graph, 50)?;
//! println!(
//!     "Para-CONV {} vs SPARTA {} ({:.1}% of baseline, {:.2}x)",
//!     comparison.paraconv.report.total_time,
//!     comparison.sparta.report.total_time,
//!     comparison.improvement_percent(),
//!     comparison.speedup(),
//! );
//! assert!(comparison.speedup() > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Lowering a real inception network and scheduling it:
//!
//! ```
//! use paraconv::cnn::{googlenet, partition, PartitionConfig};
//! use paraconv::pim::PimConfig;
//! use paraconv::ParaConv;
//!
//! let network = googlenet(2)?;
//! let graph = partition(&network, PartitionConfig::default())?;
//! let result = ParaConv::new(PimConfig::neurocube(32)?).run(&graph, 10)?;
//! assert!(result.report.onchip_hit_rate() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bench_report;
mod error;
pub mod experiments;
mod runner;
pub mod serve;
pub mod sweep;
mod table;

pub use error::CoreError;
pub use experiments::ExperimentConfig;
pub use runner::{BaselineResult, ChaosResult, Comparison, ParaConv, RunResult};
pub use sweep::SweepPoint;
pub use table::TextTable;

/// The task-graph application model (re-export of `paraconv-graph`).
pub use paraconv_graph as graph;

/// The CNN front end (re-export of `paraconv-cnn`).
pub use paraconv_cnn as cnn;

/// Benchmark generation (re-export of `paraconv-synth`).
pub use paraconv_synth as synth;

/// The PIM architecture simulator (re-export of `paraconv-pim`).
pub use paraconv_pim as pim;

/// The retiming engine (re-export of `paraconv-retime`).
pub use paraconv_retime as retime;

/// The cache-allocation dynamic program (re-export of
/// `paraconv-alloc`).
pub use paraconv_alloc as alloc;

/// The schedulers (re-export of `paraconv-sched`).
pub use paraconv_sched as sched;

/// Structured tracing and metrics (re-export of `paraconv-obs`).
pub use paraconv_obs as obs;

/// Deterministic fault injection and recovery policies (re-export of
/// `paraconv-fault`).
pub use paraconv_fault as fault;

/// Static plan verification and the project lint engine (re-export of
/// `paraconv-verify`).
pub use paraconv_verify as verify;

/// Versioned plan artifacts and the content-addressed registry
/// (re-export of `paraconv-registry`).
pub use paraconv_registry as registry;

/// The concurrency model checker and its serving-path harnesses
/// (re-export of `paraconv-analyze`).
pub use paraconv_analyze as analyze;
