//! Figure-4 case distribution across the suite: how the six retiming
//! cases populate real benchmarks, and how the population shifts with
//! the PE count.
//!
//! The paper's §3.2 analysis rests on the observation that only cases
//! 2, 3 and 5 compete for cache capacity. This experiment quantifies
//! that population per benchmark — useful for sizing the cache and for
//! understanding where the dynamic program has leverage.

use paraconv_synth::Benchmark;

use crate::sweep;
use crate::{CoreError, ExperimentConfig, TextTable};

/// One benchmark's case histogram at one PE count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseRow {
    /// Benchmark name.
    pub name: String,
    /// Processing engines.
    pub pes: usize,
    /// Counts of cases 1–6 (index 0 = case 1).
    pub histogram: [usize; 6],
}

impl CaseRow {
    /// Edges in the competing cases (2, 3 and 5).
    #[must_use]
    pub fn competing(&self) -> usize {
        self.histogram[1] + self.histogram[2] + self.histogram[4]
    }

    /// Edges whose placement cannot affect the prologue (cases 1, 4
    /// and 6).
    #[must_use]
    pub fn free(&self) -> usize {
        self.histogram[0] + self.histogram[3] + self.histogram[5]
    }
}

/// Runs the case census over a suite at the first PE count of the
/// sweep, plus the largest for contrast.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn run(config: &ExperimentConfig, suite: &[Benchmark]) -> Result<Vec<CaseRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.cases", "experiment");
    // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
    let mut pes_points = vec![*config.pe_counts.first().expect("non-empty sweep")];
    if let Some(&last) = config.pe_counts.last() {
        if !pes_points.contains(&last) {
            pes_points.push(last);
        }
    }
    let mut points = Vec::with_capacity(suite.len() * pes_points.len());
    let mut labels = Vec::with_capacity(suite.len() * pes_points.len());
    for &bench in suite {
        for &pes in &pes_points {
            points.push(config.sweep_point(bench, pes)?);
            labels.push((bench.name().to_owned(), pes));
        }
    }
    let results = sweep::run_all_with(&points, config.effective_jobs())?;
    Ok(labels
        .into_iter()
        .zip(&results)
        .map(|((name, pes), result)| CaseRow {
            name,
            pes,
            histogram: result.outcome.analysis.case_histogram(),
        })
        .collect())
}

/// Renders the census.
#[must_use]
pub fn render(rows: &[CaseRow]) -> TextTable {
    let mut table = TextTable::new([
        "benchmark",
        "PEs",
        "c1",
        "c2",
        "c3",
        "c4",
        "c5",
        "c6",
        "competing",
        "free",
    ]);
    for row in rows {
        let mut cells = vec![row.name.clone(), row.pes.to_string()];
        cells.extend(row.histogram.iter().map(usize::to_string));
        cells.push(row.competing().to_string());
        cells.push(row.free().to_string());
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_suite;

    #[test]
    fn histograms_cover_every_edge() {
        let config = ExperimentConfig {
            pe_counts: vec![16, 64],
            iterations: 4,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..3]).unwrap();
        assert_eq!(rows.len(), 6); // 3 benchmarks × 2 PE points
        for row in &rows {
            let bench = paraconv_synth::benchmarks::by_name(&row.name).unwrap();
            assert_eq!(
                row.histogram.iter().sum::<usize>(),
                bench.edges(),
                "{} @ {}",
                row.name,
                row.pes
            );
            assert_eq!(row.competing() + row.free(), bench.edges());
        }
    }

    #[test]
    fn render_shape() {
        let config = ExperimentConfig {
            pe_counts: vec![16],
            iterations: 4,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..1]).unwrap();
        let text = render(&rows).to_string();
        assert!(text.contains("competing"));
        assert!(text.contains("cat"));
    }
}
