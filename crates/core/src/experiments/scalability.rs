//! Scalability and off-chip fetching penalty (§1: "we compare
//! Para-CONV with the baseline scheme in terms of throughput, and
//! evaluate the scalability and off-chip fetching penalty").
//!
//! Two sweeps beyond the three-point tables:
//!
//! * [`pe_sweep`] — throughput versus PE count from 2 to 256, showing
//!   where each benchmark stops scaling;
//! * [`fetch_penalty`] — off-chip fetches and moved units, Para-CONV
//!   versus SPARTA, quantifying the "minimum overall data movement
//!   penalty" claim.

use paraconv_synth::Benchmark;

use crate::sweep;
use crate::{CoreError, ExperimentConfig, TextTable};

/// One point of the PE-count scalability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Processing engines.
    pub pes: usize,
    /// Para-CONV steady-state throughput (iterations per time unit).
    pub paraconv_throughput: f64,
    /// Baseline throughput.
    pub sparta_throughput: f64,
    /// Para-CONV PE utilization over the run.
    pub utilization: f64,
}

/// Sweeps PE counts on one benchmark.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn pe_sweep(
    config: &ExperimentConfig,
    bench: &Benchmark,
    pe_counts: &[usize],
) -> Result<Vec<ScalePoint>, CoreError> {
    let _span = paraconv_obs::span("experiment.scalability.pe_sweep", "experiment");
    let mut jobs = Vec::with_capacity(pe_counts.len());
    for &pes in pe_counts {
        jobs.push(config.sweep_point(*bench, pes)?);
    }
    let comparisons = sweep::compare_all_with(&jobs, config.effective_jobs())?;
    Ok(pe_counts
        .iter()
        .zip(&comparisons)
        .map(|(&pes, comparison)| ScalePoint {
            pes,
            paraconv_throughput: comparison.paraconv.report.throughput(),
            sparta_throughput: comparison.sparta.report.throughput(),
            utilization: comparison.paraconv.report.avg_pe_utilization,
        })
        .collect())
}

/// One row of the off-chip fetch-penalty comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchRow {
    /// Benchmark name.
    pub name: String,
    /// Para-CONV off-chip fetches over the run.
    pub paraconv_fetches: u64,
    /// Baseline off-chip fetches.
    pub sparta_fetches: u64,
    /// Para-CONV capacity units moved off chip.
    pub paraconv_units: u64,
    /// Baseline units moved off chip.
    pub sparta_units: u64,
}

impl FetchRow {
    /// Off-chip fetches avoided relative to the baseline, in percent
    /// (positive = Para-CONV moves less).
    #[must_use]
    pub fn reduction_percent(&self) -> f64 {
        if self.sparta_fetches == 0 {
            return 0.0;
        }
        (1.0 - self.paraconv_fetches as f64 / self.sparta_fetches as f64) * 100.0
    }
}

/// Compares off-chip movement over a suite at the first PE count of
/// the sweep.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn fetch_penalty(
    config: &ExperimentConfig,
    suite: &[Benchmark],
) -> Result<Vec<FetchRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.scalability.fetch_penalty", "experiment");
    // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
    let pes = *config.pe_counts.first().expect("non-empty sweep");
    let mut points = Vec::with_capacity(suite.len());
    for &bench in suite {
        points.push(config.sweep_point(bench, pes)?);
    }
    let comparisons = sweep::compare_all_with(&points, config.effective_jobs())?;
    Ok(suite
        .iter()
        .zip(&comparisons)
        .map(|(bench, comparison)| FetchRow {
            name: bench.name().to_owned(),
            paraconv_fetches: comparison.paraconv.report.offchip_fetches,
            sparta_fetches: comparison.sparta.report.offchip_fetches,
            paraconv_units: comparison.paraconv.report.offchip_units_moved,
            sparta_units: comparison.sparta.report.offchip_units_moved,
        })
        .collect())
}

/// Renders the PE sweep.
#[must_use]
pub fn render_pe_sweep(points: &[ScalePoint]) -> TextTable {
    let mut table = TextTable::new(["PEs", "Para-CONV thpt", "SPARTA thpt", "PE util"]);
    for p in points {
        table.push_row([
            p.pes.to_string(),
            format!("{:.4}", p.paraconv_throughput),
            format!("{:.4}", p.sparta_throughput),
            format!("{:.1}%", p.utilization * 100.0),
        ]);
    }
    table
}

/// Renders the fetch-penalty comparison.
#[must_use]
pub fn render_fetch_penalty(rows: &[FetchRow]) -> TextTable {
    let mut table = TextTable::new([
        "benchmark",
        "Para fetches",
        "SPARTA fetches",
        "reduction",
        "Para units",
        "SPARTA units",
    ]);
    for row in rows {
        table.push_row([
            row.name.clone(),
            row.paraconv_fetches.to_string(),
            row.sparta_fetches.to_string(),
            format!("{:.1}%", row.reduction_percent()),
            row.paraconv_units.to_string(),
            row.sparta_units.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_suite;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            pe_counts: vec![16],
            iterations: 10,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn throughput_scales_up_then_saturates() {
        let suite = quick_suite();
        let points = pe_sweep(&quick(), &suite[3], &[2, 8, 32, 128]).unwrap();
        assert_eq!(points.len(), 4);
        // Monotone non-decreasing throughput for Para-CONV.
        for w in points.windows(2) {
            assert!(w[1].paraconv_throughput >= w[0].paraconv_throughput * 0.99);
        }
        // Utilization falls once the graph's parallelism is exhausted.
        assert!(points.last().unwrap().utilization <= points[0].utilization);
    }

    #[test]
    fn paraconv_moves_less_offchip() {
        let rows = fetch_penalty(&quick(), &quick_suite()[..3]).unwrap();
        for row in &rows {
            assert!(
                row.paraconv_fetches <= row.sparta_fetches,
                "{}: {} > {}",
                row.name,
                row.paraconv_fetches,
                row.sparta_fetches
            );
        }
        let text = render_fetch_penalty(&rows).to_string();
        assert!(text.contains("reduction"));
    }

    #[test]
    fn render_pe_sweep_shape() {
        let suite = quick_suite();
        let points = pe_sweep(&quick(), &suite[0], &[4]).unwrap();
        let text = render_pe_sweep(&points).to_string();
        assert!(text.contains("PE util"));
        assert!(text.contains('4'));
    }
}
