//! Figure 5: per-iteration execution time of Para-CONV on 16, 32 and
//! 64 processing elements, normalized to the baseline on 64 PEs.

use paraconv_synth::Benchmark;

use crate::sweep;
use crate::{CoreError, ExperimentConfig, TextTable};

/// One benchmark series of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark name.
    pub name: String,
    /// Para-CONV per-iteration execution time (initiation interval
    /// `p/u`) per PE count, in raw time units.
    pub period: Vec<f64>,
    /// The same values normalized by the baseline's per-iteration time
    /// on the largest PE count in the sweep (the paper normalizes to
    /// the 64-PE baseline).
    pub normalized: Vec<f64>,
}

/// Runs Figure 5 over a benchmark suite.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn run(config: &ExperimentConfig, suite: &[Benchmark]) -> Result<Vec<Fig5Row>, CoreError> {
    let _span = paraconv_obs::span("experiment.fig5", "experiment");
    let &reference_pes = config
        .pe_counts
        .iter()
        .max()
        // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
        .expect("at least one PE count in the sweep");
    let jobs = config.effective_jobs();
    // Normalization bases: the baseline's steady-state per-iteration
    // time on the reference machine, one point per benchmark.
    let mut reference_points = Vec::with_capacity(suite.len());
    let mut points = Vec::with_capacity(suite.len() * config.pe_counts.len());
    for &bench in suite {
        reference_points.push(config.sweep_point(bench, reference_pes)?);
        for &pes in &config.pe_counts {
            points.push(config.sweep_point(bench, pes)?);
        }
    }
    let references = sweep::baseline_all_with(&reference_points, jobs)?;
    let results = sweep::run_all_with(&points, jobs)?;
    let rows = suite
        .iter()
        .zip(&references)
        .zip(results.chunks(config.pe_counts.len().max(1)))
        .map(|((bench, reference), chunk)| {
            let reference = reference.outcome.time_per_iteration();
            let period: Vec<f64> = chunk
                .iter()
                .map(|r| r.outcome.time_per_iteration())
                .collect();
            let normalized = period.iter().map(|p| p / reference).collect();
            Fig5Row {
                name: bench.name().to_owned(),
                period,
                normalized,
            }
        })
        .collect();
    Ok(rows)
}

/// Renders the series as an aligned text table.
#[must_use]
pub fn render(config: &ExperimentConfig, rows: &[Fig5Row]) -> TextTable {
    let mut headers = vec!["benchmark".to_owned()];
    for &pes in &config.pe_counts {
        headers.push(format!("p@{pes}"));
        headers.push(format!("norm@{pes}"));
    }
    let mut table = TextTable::new(headers);
    for row in rows {
        let mut cells = vec![row.name.clone()];
        for (p, n) in row.period.iter().zip(&row.normalized) {
            cells.push(format!("{p:.2}"));
            cells.push(format!("{n:.3}"));
        }
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_suite;

    #[test]
    fn periods_shrink_with_more_pes() {
        let config = ExperimentConfig {
            pe_counts: vec![16, 32, 64],
            iterations: 4,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[2..4]).unwrap();
        for row in &rows {
            assert!(row.period[0] >= row.period[1], "{}", row.name);
            assert!(row.period[1] >= row.period[2], "{}", row.name);
            // Para-CONV on the reference machine beats the reference
            // baseline (normalized < 1).
            assert!(row.normalized[2] <= 1.0, "{}", row.name);
        }
    }

    #[test]
    fn render_shape() {
        let config = ExperimentConfig {
            pe_counts: vec![16],
            iterations: 4,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..1]).unwrap();
        let text = render(&config, &rows).to_string();
        assert!(text.contains("p@16"));
        assert!(text.contains("norm@16"));
    }
}
