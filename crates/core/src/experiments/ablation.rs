//! Ablation studies beyond the paper's figures.
//!
//! DESIGN.md calls out three design choices worth isolating:
//!
//! * the **allocation policy** — the paper's optimal dynamic program
//!   versus a greedy density heuristic versus no caching at all;
//! * the **eDRAM penalty** — the paper cites a 2–10× band; the sweep
//!   shows how the Para-CONV advantage scales across it;
//! * the **cache capacity** — per-PE cache units drive how many IPRs
//!   escape eDRAM and how short the prologue gets.

use paraconv_pim::{audit, audit_plan, simulate};
use paraconv_sched::{AllocationPolicy, BaselineCachePolicy, ParaConvScheduler, SpartaScheduler};
use paraconv_synth::Benchmark;

use crate::sweep;
use crate::{CoreError, ExperimentConfig, ParaConv, TextTable};

/// One allocation-policy measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Benchmark name.
    pub name: String,
    /// The policy measured.
    pub policy: AllocationPolicy,
    /// Maximum retiming value under the policy.
    pub rmax: u64,
    /// Total execution time under the policy.
    pub total_time: u64,
    /// Off-chip (eDRAM) fetches under the policy.
    pub offchip_fetches: u64,
}

/// Compares the three allocation policies on every benchmark at one
/// PE count (the first in the sweep).
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn policies(
    config: &ExperimentConfig,
    suite: &[Benchmark],
) -> Result<Vec<PolicyRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.ablation.policies", "experiment");
    // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
    let pes = *config.pe_counts.first().expect("non-empty sweep");
    let policies = [
        AllocationPolicy::DynamicProgram,
        AllocationPolicy::GreedyByDensity,
        AllocationPolicy::AllEdram,
    ];
    let mut points = Vec::with_capacity(suite.len() * policies.len());
    for &bench in suite {
        for policy in policies {
            points.push(config.sweep_point(bench, pes)?.with_policy(policy));
        }
    }
    let results = sweep::run_all_with(&points, config.effective_jobs())?;
    Ok(points
        .iter()
        .zip(&results)
        .map(|(point, result)| PolicyRow {
            name: point.benchmark.name().to_owned(),
            policy: point.policy,
            rmax: result.outcome.rmax(),
            total_time: result.report.total_time,
            offchip_fetches: result.report.offchip_fetches,
        })
        .collect())
}

/// One eDRAM-penalty measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PenaltyRow {
    /// The penalty factor applied.
    pub penalty: u64,
    /// Para-CONV total time.
    pub paraconv_time: u64,
    /// SPARTA total time.
    pub sparta_time: u64,
    /// IMP(%) at this penalty.
    pub imp_percent: f64,
}

/// Sweeps the eDRAM penalty over the cited 2–10× band on one
/// benchmark.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn penalty_sweep(
    config: &ExperimentConfig,
    bench: &Benchmark,
    penalties: &[u64],
) -> Result<Vec<PenaltyRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.ablation.penalty_sweep", "experiment");
    // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
    let pes = *config.pe_counts.first().expect("non-empty sweep");
    let mut points = Vec::with_capacity(penalties.len());
    for &penalty in penalties {
        let mut cfg = config.clone();
        cfg.edram_penalty = penalty;
        points.push(cfg.sweep_point(*bench, pes)?);
    }
    let comparisons = sweep::compare_all_with(&points, config.effective_jobs())?;
    Ok(penalties
        .iter()
        .zip(&comparisons)
        .map(|(&penalty, comparison)| PenaltyRow {
            penalty,
            paraconv_time: comparison.paraconv.report.total_time,
            sparta_time: comparison.sparta.report.total_time,
            imp_percent: comparison.improvement_percent(),
        })
        .collect())
}

/// One cache-capacity measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRow {
    /// Per-PE cache units configured.
    pub per_pe_units: u64,
    /// Maximum retiming value at this capacity.
    pub rmax: u64,
    /// IPRs cached at this capacity.
    pub cached: usize,
    /// Off-chip fetches at this capacity.
    pub offchip_fetches: u64,
}

/// Sweeps the per-PE cache capacity on one benchmark.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn cache_sweep(
    config: &ExperimentConfig,
    bench: &Benchmark,
    capacities: &[u64],
) -> Result<Vec<CacheRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.ablation.cache_sweep", "experiment");
    // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
    let pes = *config.pe_counts.first().expect("non-empty sweep");
    let mut points = Vec::with_capacity(capacities.len());
    for &units in capacities {
        let mut cfg = config.clone();
        cfg.per_pe_cache_units = units;
        points.push(cfg.sweep_point(*bench, pes)?);
    }
    let results = sweep::run_all_with(&points, config.effective_jobs())?;
    Ok(capacities
        .iter()
        .zip(&results)
        .map(|(&units, result)| CacheRow {
            per_pe_units: units,
            rmax: result.outcome.rmax(),
            cached: result.outcome.cached_iprs(),
            offchip_fetches: result.report.offchip_fetches,
        })
        .collect())
}

/// One row of the retiming-contribution study: the same architecture
/// and graph under four scheduler variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContributionRow {
    /// Benchmark name.
    pub name: String,
    /// SPARTA with its greedy cache (the paper's baseline).
    pub baseline: u64,
    /// SPARTA with the optimal DP cache grafted on (allocation
    /// contribution without retiming).
    pub baseline_dp: u64,
    /// Para-CONV with everything in eDRAM (retiming contribution
    /// without allocation).
    pub retiming_only: u64,
    /// Full Para-CONV (both).
    pub full: u64,
}

/// Isolates the retiming and allocation contributions: for each
/// benchmark at the first PE count of the sweep, total time under
/// baseline, baseline+DP, retiming-only and full Para-CONV.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn contributions(
    config: &ExperimentConfig,
    suite: &[Benchmark],
) -> Result<Vec<ContributionRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.ablation.contributions", "experiment");
    // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
    let pes = *config.pe_counts.first().expect("non-empty sweep");
    let pim = config.pim_config(pes)?;
    // The four scheduler variants per benchmark don't fit one
    // `SweepPoint`, so each benchmark is one irregular job.
    let jobs = sweep::parallel_map(suite, config.effective_jobs(), |bench| {
        let graph = bench.graph()?;
        let baseline = {
            let outcome = SpartaScheduler::new(pim.clone()).schedule(&graph, config.iterations)?;
            let report = simulate(&graph, &outcome.plan, &pim)?;
            if config.audit {
                audit(&graph, &outcome.plan, &pim, &report)?;
            }
            report.total_time
        };
        let baseline_dp = {
            let outcome = SpartaScheduler::new(pim.clone())
                .with_cache_policy(BaselineCachePolicy::OptimalDp)
                .schedule(&graph, config.iterations)?;
            let report = simulate(&graph, &outcome.plan, &pim)?;
            if config.audit {
                audit(&graph, &outcome.plan, &pim, &report)?;
            }
            report.total_time
        };
        let retiming_only = ParaConv::new(pim.clone())
            .with_policy(AllocationPolicy::AllEdram)
            .with_audit(config.audit)
            .with_verify(config.verify)
            .run(&graph, config.iterations)?
            .report
            .total_time;
        let full = ParaConv::new(pim.clone())
            .with_audit(config.audit)
            .with_verify(config.verify)
            .run(&graph, config.iterations)?
            .report
            .total_time;
        Ok(ContributionRow {
            name: bench.name().to_owned(),
            baseline,
            baseline_dp,
            retiming_only,
            full,
        })
    });
    jobs.into_iter().collect()
}

/// One row of the kernel-unrolling study.
#[derive(Debug, Clone, PartialEq)]
pub struct UnrollRow {
    /// Benchmark name.
    pub name: String,
    /// Per-iteration initiation interval with unrolling disabled.
    pub capped_interval: f64,
    /// Per-iteration initiation interval with automatic unrolling.
    pub free_interval: f64,
    /// The unroll factor the scheduler chose.
    pub chosen_unroll: u64,
}

/// Isolates the kernel-unrolling contribution: per-iteration
/// initiation interval with and without unrolling, at the *largest* PE
/// count of the sweep (where spare PEs make unrolling matter most).
///
/// # Errors
///
/// Propagates configuration, generation and scheduling errors.
pub fn unrolling(
    config: &ExperimentConfig,
    suite: &[Benchmark],
) -> Result<Vec<UnrollRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.ablation.unrolling", "experiment");
    // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
    let pes = *config.pe_counts.last().expect("non-empty sweep");
    let pim = config.pim_config(pes)?;
    // Schedule-only jobs (no simulation), still one irregular job per
    // benchmark.
    let jobs = sweep::parallel_map(suite, config.effective_jobs(), |bench| {
        let graph = bench.graph()?;
        let capped = ParaConvScheduler::new(pim.clone())
            .with_max_unroll(1)
            .schedule(&graph, config.iterations)?;
        let free = ParaConvScheduler::new(pim.clone()).schedule(&graph, config.iterations)?;
        if config.audit {
            // No simulation here, so only the plan-level invariants.
            audit_plan(&graph, &capped.plan, &pim)?;
            audit_plan(&graph, &free.plan, &pim)?;
        }
        if config.verify {
            // Likewise: static verification only, no dominance check.
            paraconv_verify::verify_outcome(&graph, &capped, &pim)?;
            paraconv_verify::verify_outcome(&graph, &free, &pim)?;
        }
        Ok(UnrollRow {
            name: bench.name().to_owned(),
            capped_interval: capped.time_per_iteration(),
            free_interval: free.time_per_iteration(),
            chosen_unroll: free.unroll(),
        })
    });
    jobs.into_iter().collect()
}

/// Renders the unrolling study.
#[must_use]
pub fn render_unrolling(rows: &[UnrollRow]) -> TextTable {
    let mut table = TextTable::new(["benchmark", "no unroll t/iter", "unrolled t/iter", "u"]);
    for row in rows {
        table.push_row([
            row.name.clone(),
            format!("{:.2}", row.capped_interval),
            format!("{:.2}", row.free_interval),
            row.chosen_unroll.to_string(),
        ]);
    }
    table
}

/// Renders the contribution study.
#[must_use]
pub fn render_contributions(rows: &[ContributionRow]) -> TextTable {
    let mut table = TextTable::new([
        "benchmark",
        "SPARTA",
        "SPARTA+DP",
        "retiming-only",
        "full Para-CONV",
    ]);
    for row in rows {
        table.push_row([
            row.name.clone(),
            row.baseline.to_string(),
            row.baseline_dp.to_string(),
            row.retiming_only.to_string(),
            row.full.to_string(),
        ]);
    }
    table
}

/// Renders the policy comparison.
#[must_use]
pub fn render_policies(rows: &[PolicyRow]) -> TextTable {
    let mut table = TextTable::new(["benchmark", "policy", "R_max", "total", "off-chip"]);
    for row in rows {
        table.push_row([
            row.name.clone(),
            format!("{:?}", row.policy),
            row.rmax.to_string(),
            row.total_time.to_string(),
            row.offchip_fetches.to_string(),
        ]);
    }
    table
}

/// Renders the penalty sweep.
#[must_use]
pub fn render_penalties(rows: &[PenaltyRow]) -> TextTable {
    let mut table = TextTable::new(["penalty", "Para-CONV", "SPARTA", "IMP%"]);
    for row in rows {
        table.push_row([
            format!("{}x", row.penalty),
            row.paraconv_time.to_string(),
            row.sparta_time.to_string(),
            format!("{:.2}", row.imp_percent),
        ]);
    }
    table
}

/// Renders the cache sweep.
#[must_use]
pub fn render_cache(rows: &[CacheRow]) -> TextTable {
    let mut table = TextTable::new(["per-PE cache", "R_max", "cached IPRs", "off-chip"]);
    for row in rows {
        table.push_row([
            row.per_pe_units.to_string(),
            row.rmax.to_string(),
            row.cached.to_string(),
            row.offchip_fetches.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_suite;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            pe_counts: vec![16],
            iterations: 4,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn dp_never_worse_than_greedy_or_none() {
        let rows = policies(&quick(), &quick_suite()[..2]).unwrap();
        for bench_rows in rows.chunks(3) {
            let dp = &bench_rows[0];
            let greedy = &bench_rows[1];
            let none = &bench_rows[2];
            assert!(dp.rmax <= greedy.rmax, "{}", dp.name);
            assert!(greedy.rmax <= none.rmax, "{}", dp.name);
            assert!(dp.offchip_fetches <= none.offchip_fetches);
        }
    }

    #[test]
    fn penalty_sweep_monotone_for_baseline() {
        let suite = quick_suite();
        let rows = penalty_sweep(&quick(), &suite[1], &[2, 4, 10]).unwrap();
        assert_eq!(rows.len(), 3);
        // A harsher penalty never helps the baseline (which leaves
        // most IPRs in eDRAM on its critical path).
        assert!(rows[0].sparta_time <= rows[2].sparta_time);
    }

    #[test]
    fn cache_sweep_monotone() {
        let suite = quick_suite();
        let rows = cache_sweep(&quick(), &suite[2], &[0, 2, 8, 64]).unwrap();
        for w in rows.windows(2) {
            assert!(w[0].rmax >= w[1].rmax);
            assert!(w[0].cached <= w[1].cached);
            assert!(w[0].offchip_fetches >= w[1].offchip_fetches);
        }
    }

    #[test]
    fn contributions_order_sensibly() {
        // Enough iterations to amortize the retiming-only variant's
        // longer prologue.
        let config = ExperimentConfig {
            pe_counts: vec![16],
            iterations: 40,
            ..ExperimentConfig::default()
        };
        let rows = contributions(&config, &quick_suite()[1..3]).unwrap();
        for row in &rows {
            // Full Para-CONV is the best variant; retiming is the
            // dominant lever (retiming-only already beats the
            // baseline once amortized). Note that SPARTA+DP may be
            // *worse* than plain SPARTA: the knapsack maximizes total
            // transfer time saved, not critical-path impact, so
            // without retiming it can starve the critical path — the
            // joint optimization is what makes the DP pay off.
            assert!(row.full <= row.retiming_only, "{}", row.name);
            assert!(row.retiming_only <= row.baseline, "{}", row.name);
        }
        let text = render_contributions(&rows).to_string();
        assert!(text.contains("retiming-only"));
    }

    #[test]
    fn unrolling_never_hurts_the_interval() {
        let config = ExperimentConfig {
            pe_counts: vec![64],
            iterations: 16,
            ..ExperimentConfig::default()
        };
        let rows = unrolling(&config, &quick_suite()[..3]).unwrap();
        for row in &rows {
            assert!(
                row.free_interval <= row.capped_interval,
                "{}: {} > {}",
                row.name,
                row.free_interval,
                row.capped_interval
            );
            assert!(row.chosen_unroll >= 1);
        }
        assert!(render_unrolling(&rows).to_string().contains("unrolled"));
    }

    #[test]
    fn renders_are_nonempty() {
        let cfg = quick();
        let suite = quick_suite();
        let p = policies(&cfg, &suite[..1]).unwrap();
        assert!(render_policies(&p).to_string().contains("DynamicProgram"));
        let pen = penalty_sweep(&cfg, &suite[0], &[2, 10]).unwrap();
        assert!(render_penalties(&pen).to_string().contains("10x"));
        let c = cache_sweep(&cfg, &suite[0], &[1]).unwrap();
        assert!(render_cache(&c).to_string().contains("per-PE cache"));
    }
}
