//! Figure 6: the number of intermediate processing results allocated
//! to the on-chip cache on 16, 32 and 64 processing elements.

use paraconv_synth::Benchmark;

use crate::sweep;
use crate::{CoreError, ExperimentConfig, TextTable};

/// One benchmark series of Figure 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: String,
    /// Total IPR count of the benchmark (for context).
    pub total_iprs: usize,
    /// IPRs allocated to cache per PE count, in sweep order.
    pub cached: Vec<usize>,
    /// IPRs with positive `ΔR` (the population competing for cache).
    pub competing: Vec<usize>,
}

/// Runs Figure 6 over a benchmark suite.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn run(config: &ExperimentConfig, suite: &[Benchmark]) -> Result<Vec<Fig6Row>, CoreError> {
    let _span = paraconv_obs::span("experiment.fig6", "experiment");
    let mut points = Vec::with_capacity(suite.len() * config.pe_counts.len());
    for &bench in suite {
        for &pes in &config.pe_counts {
            points.push(config.sweep_point(bench, pes)?);
        }
    }
    let results = sweep::run_all_with(&points, config.effective_jobs())?;
    let rows = suite
        .iter()
        .zip(results.chunks(config.pe_counts.len().max(1)))
        .map(|(bench, chunk)| Fig6Row {
            name: bench.name().to_owned(),
            total_iprs: bench.edges(),
            cached: chunk.iter().map(|r| r.outcome.cached_iprs()).collect(),
            competing: chunk
                .iter()
                .map(|r| {
                    r.outcome
                        .analysis
                        .cases()
                        .filter(|(_, case)| case.competes_for_cache())
                        .count()
                })
                .collect(),
        })
        .collect();
    Ok(rows)
}

/// Renders the series as an aligned text table.
#[must_use]
pub fn render(config: &ExperimentConfig, rows: &[Fig6Row]) -> TextTable {
    let mut headers = vec!["benchmark".to_owned(), "#IPRs".to_owned()];
    for &pes in &config.pe_counts {
        headers.push(format!("cached@{pes}"));
    }
    headers.push("competing(max)".to_owned());
    let mut table = TextTable::new(headers);
    for row in rows {
        let mut cells = vec![row.name.clone(), row.total_iprs.to_string()];
        cells.extend(row.cached.iter().map(usize::to_string));
        cells.push(row.competing.iter().copied().max().unwrap_or(0).to_string());
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_suite;

    #[test]
    fn cached_counts_bounded_by_totals() {
        let config = ExperimentConfig {
            pe_counts: vec![16, 64],
            iterations: 4,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..3]).unwrap();
        for row in &rows {
            for (&cached, &competing) in row.cached.iter().zip(&row.competing) {
                // `competing` uses the clamped Figure 4 classification
                // and can undercount edges whose unclamped ΔR is
                // positive, so it is context, not an upper bound.
                assert!(cached <= row.total_iprs, "{}", row.name);
                assert!(competing <= row.total_iprs, "{}", row.name);
            }
            // More aggregate cache never caches fewer IPRs when the
            // competing population is unchanged; with the period also
            // changing the count may shift, so only sanity-check > 0
            // capacity usage on the larger machine.
            assert!(row.cached[1] > 0, "{}", row.name);
        }
    }

    #[test]
    fn render_shape() {
        let config = ExperimentConfig {
            pe_counts: vec![16],
            iterations: 4,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..1]).unwrap();
        let text = render(&config, &rows).to_string();
        assert!(text.contains("cached@16"));
        assert!(text.contains("#IPRs"));
    }
}
