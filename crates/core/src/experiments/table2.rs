//! Table 2: the maximum retiming value of Para-CONV on 16, 32 and 64
//! processing elements.

use paraconv_synth::Benchmark;

use crate::sweep;
use crate::{CoreError, ExperimentConfig, TextTable};

/// One benchmark row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// `R_max` per PE count, in sweep order.
    pub rmax: Vec<u64>,
    /// The row average, as printed in the paper.
    pub average: f64,
}

/// Runs Table 2 over a benchmark suite.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn run(config: &ExperimentConfig, suite: &[Benchmark]) -> Result<Vec<Table2Row>, CoreError> {
    let _span = paraconv_obs::span("experiment.table2", "experiment");
    let mut points = Vec::with_capacity(suite.len() * config.pe_counts.len());
    for &bench in suite {
        for &pes in &config.pe_counts {
            points.push(config.sweep_point(bench, pes)?);
        }
    }
    let results = sweep::run_all_with(&points, config.effective_jobs())?;
    let rows = suite
        .iter()
        .zip(results.chunks(config.pe_counts.len().max(1)))
        .map(|(bench, chunk)| {
            let rmax: Vec<u64> = chunk.iter().map(|r| r.outcome.rmax()).collect();
            let average = rmax.iter().sum::<u64>() as f64 / rmax.len().max(1) as f64;
            Table2Row {
                name: bench.name().to_owned(),
                rmax,
                average,
            }
        })
        .collect();
    Ok(rows)
}

/// Renders the rows as an aligned text table shaped like the paper's.
#[must_use]
pub fn render(config: &ExperimentConfig, rows: &[Table2Row]) -> TextTable {
    let mut headers = vec!["benchmark".to_owned()];
    for &pes in &config.pe_counts {
        headers.push(format!("{pes}-core"));
    }
    headers.push("Average".to_owned());
    let mut table = TextTable::new(headers);
    for row in rows {
        let mut cells = vec![row.name.clone()];
        cells.extend(row.rmax.iter().map(u64::to_string));
        cells.push(format!("{:.1}", row.average));
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_suite;

    #[test]
    fn rows_report_rmax_per_pe_count() {
        let config = ExperimentConfig {
            pe_counts: vec![4, 16],
            iterations: 4,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..2]).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.rmax.len(), 2);
            let expect = row.rmax.iter().sum::<u64>() as f64 / 2.0;
            assert!((row.average - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn render_shape() {
        let config = ExperimentConfig {
            pe_counts: vec![16],
            iterations: 4,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..1]).unwrap();
        let text = render(&config, &rows).to_string();
        assert!(text.contains("16-core"));
        assert!(text.contains("Average"));
        assert!(text.contains("cat"));
    }
}
