//! The paper's evaluation, experiment by experiment.
//!
//! Each submodule regenerates one table or figure of §4:
//!
//! * [`table1`] — total execution time, SPARTA vs Para-CONV on 16, 32
//!   and 64 PEs, with the per-benchmark IMP(%) column;
//! * [`table2`] — the maximum retiming value `R_max` of Para-CONV;
//! * [`fig5`] — per-iteration execution time, normalized to the
//!   baseline on 64 PEs;
//! * [`fig6`] — intermediate processing results allocated to the
//!   on-chip cache;
//! * [`ablation`] — studies beyond the paper: allocation-policy
//!   comparison, eDRAM-penalty sweep and cache-capacity sweep.
//!
//! All experiments share an [`ExperimentConfig`] and run on the pinned
//! [`paraconv_synth::benchmarks`] suite, so results are deterministic.

pub mod ablation;
pub mod cases;
pub mod energy;
pub mod fig5;
pub mod fig6;
pub mod scalability;
pub mod table1;
pub mod table2;
pub mod zoo;

use paraconv_pim::{PimConfig, PimConfigBuilder};
use paraconv_synth::Benchmark;

use crate::sweep::SweepPoint;
use crate::CoreError;

/// Shared knobs for the evaluation harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// PE counts to sweep (the paper uses 16, 32 and 64).
    pub pe_counts: Vec<usize>,
    /// Logical iterations per run (frames of the periodic dataflow).
    pub iterations: u64,
    /// Per-PE data-cache capacity in IPR units.
    pub per_pe_cache_units: u64,
    /// eDRAM latency/energy penalty (2–10×).
    pub edram_penalty: u64,
    /// Per-edge vault queuing cost (0 disables TSV contention).
    pub vault_queue_cost: u64,
    /// Worker-pool width for the sweep engine. `None` (the default)
    /// resolves through [`crate::sweep::max_jobs`]: the
    /// `PARACONV_JOBS` environment variable if set, otherwise the
    /// host's available parallelism. `Some(1)` forces the sequential
    /// path.
    pub jobs: Option<usize>,
    /// Re-check every emitted plan and simulator report with the
    /// independent auditor ([`paraconv_pim::audit`]). Off by default
    /// (the auditor roughly doubles validation work); the
    /// `paraconv audit` subcommand and the CI audit job turn it on.
    pub audit: bool,
    /// Statically verify every Para-CONV plan the sweep emits
    /// ([`paraconv_verify::verify_run`]): retiming legality,
    /// steady-state occupancy bounds within capacity, and bound
    /// dominance over the simulator's observed peaks. Off by default;
    /// the `paraconv verify` subcommand and the CI static-analysis job
    /// turn it on.
    pub verify: bool,
    /// Replay every Para-CONV run under this deterministic fault
    /// campaign (degradation-curve experiments; see
    /// [`crate::sweep::SweepPoint::fault`]). `None` (the default)
    /// keeps all experiments fault-free and byte-identical to a build
    /// without the fault layer.
    pub fault: Option<paraconv_fault::FaultSpec>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            pe_counts: vec![16, 32, 64],
            iterations: 50,
            per_pe_cache_units: 4,
            edram_penalty: 4,
            vault_queue_cost: 0,
            jobs: None,
            audit: false,
            verify: false,
            fault: None,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for quick test runs: the three smallest
    /// benchmarks would still take the full sweep, so tests usually
    /// pair this with a benchmark subset.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            iterations: 10,
            ..ExperimentConfig::default()
        }
    }

    /// Materializes the PIM configuration for one PE count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if the knobs are out of range.
    pub fn pim_config(&self, pes: usize) -> Result<PimConfig, CoreError> {
        Ok(self.builder(pes).build()?)
    }

    fn builder(&self, pes: usize) -> PimConfigBuilder {
        PimConfig::builder(pes)
            .per_pe_cache_units(self.per_pe_cache_units)
            .edram_penalty(self.edram_penalty)
            .vault_queue_cost(self.vault_queue_cost)
    }

    /// The sweep-engine worker count this harness runs with.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(crate::sweep::max_jobs).max(1)
    }

    /// Builds one sweep point for a benchmark and PE count, carrying
    /// this harness's iteration count and audit opt-in. All experiment
    /// modules route their points through here so `audit: true`
    /// re-checks every plan they emit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if the knobs are out of range.
    pub fn sweep_point(&self, benchmark: Benchmark, pes: usize) -> Result<SweepPoint, CoreError> {
        let mut point = SweepPoint::new(benchmark, self.pim_config(pes)?, self.iterations)
            .with_audit(self.audit)
            .with_verify(self.verify);
        if let Some(spec) = &self.fault {
            point = point.with_faults(spec.clone());
        }
        Ok(point)
    }
}

/// The full Table 1 suite.
#[must_use]
pub fn full_suite() -> Vec<Benchmark> {
    paraconv_synth::benchmarks::all()
}

/// The small-prefix suite used by quick runs and tests.
#[must_use]
pub fn quick_suite() -> Vec<Benchmark> {
    paraconv_synth::benchmarks::all()
        .into_iter()
        .take(4)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper_sweep() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.pe_counts, vec![16, 32, 64]);
        assert_eq!(cfg.edram_penalty, 4);
    }

    #[test]
    fn pim_config_materializes() {
        let cfg = ExperimentConfig::default();
        let pim = cfg.pim_config(32).unwrap();
        assert_eq!(pim.num_pes(), 32);
        assert_eq!(pim.total_cache_units(), 128);
    }

    #[test]
    fn suites_are_prefixes() {
        let full = full_suite();
        let quick = quick_suite();
        assert_eq!(full.len(), 12);
        assert_eq!(quick.len(), 4);
        assert_eq!(full[..4], quick[..]);
    }
}
