//! Energy comparison — the paper's stated future work ("we also plan
//! to study energy issue for PIM architecture with CNN applications"),
//! implemented on the simulator's energy accounting: compute energy is
//! one unit per PE-busy time unit, transfer energy scales with data
//! size and pays the 2–10× factor for eDRAM.

use paraconv_synth::Benchmark;

use crate::sweep;
use crate::{CoreError, ExperimentConfig, TextTable};

/// One benchmark row of the energy comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnergyRow {
    /// Benchmark name.
    pub name: String,
    /// Para-CONV transfer energy.
    pub paraconv_transfer: u64,
    /// Baseline transfer energy.
    pub sparta_transfer: u64,
    /// Compute energy (identical work, so identical for both — kept
    /// for the totals).
    pub compute: u64,
}

impl EnergyRow {
    /// Total Para-CONV energy.
    #[must_use]
    pub const fn paraconv_total(&self) -> u64 {
        self.paraconv_transfer + self.compute
    }

    /// Total baseline energy.
    #[must_use]
    pub const fn sparta_total(&self) -> u64 {
        self.sparta_transfer + self.compute
    }

    /// Transfer-energy saving in percent (positive = Para-CONV
    /// cheaper).
    #[must_use]
    pub fn transfer_saving_percent(&self) -> f64 {
        if self.sparta_transfer == 0 {
            return 0.0;
        }
        (1.0 - self.paraconv_transfer as f64 / self.sparta_transfer as f64) * 100.0
    }
}

/// Runs the energy comparison at the first PE count of the sweep.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn run(config: &ExperimentConfig, suite: &[Benchmark]) -> Result<Vec<EnergyRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.energy", "experiment");
    // lint: allow(no-unwrap) — sweeps are built from non-empty literal benchmark lists
    let pes = *config.pe_counts.first().expect("non-empty sweep");
    let mut points = Vec::with_capacity(suite.len());
    for &bench in suite {
        points.push(config.sweep_point(bench, pes)?);
    }
    let comparisons = sweep::compare_all_with(&points, config.effective_jobs())?;
    Ok(suite
        .iter()
        .zip(&comparisons)
        .map(|(bench, comparison)| EnergyRow {
            name: bench.name().to_owned(),
            paraconv_transfer: comparison.paraconv.report.transfer_energy,
            sparta_transfer: comparison.sparta.report.transfer_energy,
            compute: comparison.paraconv.report.compute_energy,
        })
        .collect())
}

/// Renders the comparison.
#[must_use]
pub fn render(rows: &[EnergyRow]) -> TextTable {
    let mut table = TextTable::new([
        "benchmark",
        "Para xfer E",
        "SPARTA xfer E",
        "saving",
        "Para total",
        "SPARTA total",
    ]);
    for row in rows {
        table.push_row([
            row.name.clone(),
            row.paraconv_transfer.to_string(),
            row.sparta_transfer.to_string(),
            format!("{:.1}%", row.transfer_saving_percent()),
            row.paraconv_total().to_string(),
            row.sparta_total().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_suite;

    #[test]
    fn energy_accounting_is_consistent() {
        let config = ExperimentConfig {
            pe_counts: vec![16],
            iterations: 10,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..3]).unwrap();
        for row in &rows {
            // Compute energy = total busy time = iterations × serial work.
            let bench = paraconv_synth::benchmarks::by_name(&row.name).unwrap();
            let graph = bench.graph().unwrap();
            assert_eq!(
                row.compute,
                graph.total_exec_time() * config.iterations,
                "{}",
                row.name
            );
            // Para-CONV's allocation never spends more transfer energy
            // than the baseline's greedy (it caches at least as much
            // traffic under the same capacity model).
            assert!(row.paraconv_total() > 0);
        }
    }

    #[test]
    fn render_shape() {
        let config = ExperimentConfig {
            pe_counts: vec![16],
            iterations: 5,
            ..ExperimentConfig::default()
        };
        let rows = run(&config, &quick_suite()[..1]).unwrap();
        let text = render(&rows).to_string();
        assert!(text.contains("saving"));
        assert!(text.contains("cat"));
    }
}
