//! Real-CNN evaluation: the Table 1 comparison repeated on graphs
//! lowered from actual network descriptions (the paper's "several
//! real-life CNN applications are obtained from benchmark GoogLeNet
//! ConvNet" route), rather than from the synthetic generator.

use paraconv_cnn::{partition, PartitionConfig};

use crate::sweep;
use crate::{CoreError, ExperimentConfig, ParaConv, TextTable};

/// One network row of the real-CNN comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooRow {
    /// Application class the network represents.
    pub class: String,
    /// Network name.
    pub network: String,
    /// Task-graph vertices after partitioning.
    pub vertices: usize,
    /// Task-graph edges (IPRs) after partitioning.
    pub edges: usize,
    /// IMP(%) per PE count, in sweep order.
    pub imp_percent: Vec<f64>,
}

/// Runs the comparison over the whole model zoo.
///
/// # Errors
///
/// Propagates network construction, partitioning, configuration,
/// scheduling and simulation errors.
pub fn run(config: &ExperimentConfig) -> Result<Vec<ZooRow>, CoreError> {
    let _span = paraconv_obs::span("experiment.zoo", "experiment");
    let zoo = paraconv_cnn::zoo::all()?;
    let jobs = config.effective_jobs();
    // The zoo graphs come from the CNN partitioner, not a `Benchmark`,
    // so each (network, PE count) pair is one irregular job over the
    // pre-partitioned graph.
    let graphs = sweep::parallel_map(&zoo, jobs, |(_, network)| {
        Ok(partition(network, PartitionConfig::default())?)
    });
    let graphs = graphs.into_iter().collect::<Result<Vec<_>, CoreError>>()?;
    let mut points = Vec::with_capacity(zoo.len() * config.pe_counts.len());
    for graph in &graphs {
        for &pes in &config.pe_counts {
            points.push((graph, config.pim_config(pes)?));
        }
    }
    let imps = sweep::parallel_map(&points, jobs, |(graph, pim)| {
        Ok(ParaConv::new(pim.clone())
            .with_audit(config.audit)
            .with_verify(config.verify)
            .compare(graph, config.iterations)?
            .improvement_percent())
    });
    let imps = imps.into_iter().collect::<Result<Vec<f64>, CoreError>>()?;
    Ok(zoo
        .iter()
        .zip(&graphs)
        .zip(imps.chunks(config.pe_counts.len().max(1)))
        .map(|(((class, network), graph), imp)| ZooRow {
            class: (*class).to_owned(),
            network: network.name().to_owned(),
            vertices: graph.node_count(),
            edges: graph.edge_count(),
            imp_percent: imp.to_vec(),
        })
        .collect())
}

/// Renders the comparison.
#[must_use]
pub fn render(config: &ExperimentConfig, rows: &[ZooRow]) -> TextTable {
    let mut headers = vec![
        "class".to_owned(),
        "network".to_owned(),
        "#vertex".to_owned(),
        "#edge".to_owned(),
    ];
    for &pes in &config.pe_counts {
        headers.push(format!("IMP%@{pes}"));
    }
    let mut table = TextTable::new(headers);
    for row in rows {
        let mut cells = vec![
            row.class.clone(),
            row.network.clone(),
            row.vertices.to_string(),
            row.edges.to_string(),
        ];
        cells.extend(row.imp_percent.iter().map(|i| format!("{i:.1}")));
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_comparison_runs_end_to_end() {
        let config = ExperimentConfig {
            pe_counts: vec![16],
            iterations: 20,
            ..ExperimentConfig::default()
        };
        let rows = run(&config).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.vertices > 0, "{}", row.network);
            assert_eq!(row.imp_percent.len(), 1);
            // Width-1 chains (sequence MLP, autoencoder) are the worst
            // case for Para-CONV at modest iteration counts: the
            // steady-state win is real but the prologue (R_max grows
            // with chain depth) amortizes slowly, so allow up to 1.5x
            // here; branch-rich networks win outright.
            assert!(
                row.imp_percent[0] < 150.0,
                "{}: {:?}",
                row.network,
                row.imp_percent
            );
        }
        let text = render(&config, &rows).to_string();
        assert!(text.contains("googlenet-3"));
        assert!(text.contains("lenet5"));
    }
}
