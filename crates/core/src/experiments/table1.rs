//! Table 1: total execution time of SPARTA and Para-CONV on 16, 32
//! and 64 processing elements.

use paraconv_synth::Benchmark;

use crate::sweep;
use crate::{CoreError, ExperimentConfig, TextTable};

/// One PE-count cell of a Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Cell {
    /// Processing engines used.
    pub pes: usize,
    /// SPARTA total execution time (time units).
    pub sparta_time: u64,
    /// Para-CONV total execution time (time units).
    pub paraconv_time: u64,
    /// The paper's IMP(%): Para-CONV time as a percentage of SPARTA's.
    pub imp_percent: f64,
}

/// One benchmark row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// "# of vertex".
    pub vertices: usize,
    /// "# of edge".
    pub edges: usize,
    /// One cell per PE count, in sweep order.
    pub cells: Vec<Table1Cell>,
}

/// Runs Table 1 over a benchmark suite.
///
/// # Errors
///
/// Propagates configuration, generation, scheduling and simulation
/// errors.
pub fn run(config: &ExperimentConfig, suite: &[Benchmark]) -> Result<Vec<Table1Row>, CoreError> {
    let _span = paraconv_obs::span("experiment.table1", "experiment");
    let mut points = Vec::with_capacity(suite.len() * config.pe_counts.len());
    for &bench in suite {
        for &pes in &config.pe_counts {
            points.push(config.sweep_point(bench, pes)?);
        }
    }
    let comparisons = sweep::compare_all_with(&points, config.effective_jobs())?;
    let rows = suite
        .iter()
        .zip(comparisons.chunks(config.pe_counts.len().max(1)))
        .map(|(bench, chunk)| Table1Row {
            name: bench.name().to_owned(),
            vertices: bench.vertices(),
            edges: bench.edges(),
            cells: config
                .pe_counts
                .iter()
                .zip(chunk)
                .map(|(&pes, comparison)| Table1Cell {
                    pes,
                    sparta_time: comparison.sparta.report.total_time,
                    paraconv_time: comparison.paraconv.report.total_time,
                    imp_percent: comparison.improvement_percent(),
                })
                .collect(),
        })
        .collect();
    Ok(rows)
}

/// Mean IMP(%) per PE count (the table's "Average" row), in sweep
/// order.
#[must_use]
pub fn averages(rows: &[Table1Row]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let sweeps = rows[0].cells.len();
    (0..sweeps)
        .map(|i| rows.iter().map(|r| r.cells[i].imp_percent).sum::<f64>() / rows.len() as f64)
        .collect()
}

/// Renders the rows as an aligned text table shaped like the paper's.
#[must_use]
pub fn render(rows: &[Table1Row]) -> TextTable {
    let mut headers = vec![
        "benchmark".to_owned(),
        "#vertex".to_owned(),
        "#edge".to_owned(),
    ];
    if let Some(first) = rows.first() {
        for cell in &first.cells {
            headers.push(format!("SPARTA@{}", cell.pes));
            headers.push(format!("Para-CONV@{}", cell.pes));
            headers.push(format!("IMP%@{}", cell.pes));
        }
    }
    let mut table = TextTable::new(headers);
    for row in rows {
        let mut cells = vec![
            row.name.clone(),
            row.vertices.to_string(),
            row.edges.to_string(),
        ];
        for c in &row.cells {
            cells.push(c.sparta_time.to_string());
            cells.push(c.paraconv_time.to_string());
            cells.push(format!("{:.2}", c.imp_percent));
        }
        table.push_row(cells);
    }
    if !rows.is_empty() {
        let mut avg_row = vec!["Average".to_owned(), String::new(), String::new()];
        for avg in averages(rows) {
            avg_row.push(String::new());
            avg_row.push(String::new());
            avg_row.push(format!("{avg:.2}"));
        }
        table.push_row(avg_row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_suite;

    fn quick_rows() -> Vec<Table1Row> {
        let config = ExperimentConfig {
            pe_counts: vec![16, 32],
            iterations: 8,
            ..ExperimentConfig::default()
        };
        run(&config, &quick_suite()[..2]).unwrap()
    }

    #[test]
    fn rows_cover_suite_and_sweep() {
        let rows = quick_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "cat");
        assert_eq!(rows[0].cells.len(), 2);
        for row in &rows {
            for cell in &row.cells {
                assert!(cell.sparta_time > 0);
                assert!(cell.paraconv_time > 0);
                assert!(cell.imp_percent > 0.0);
            }
        }
    }

    #[test]
    fn imp_is_ratio_of_times() {
        for row in quick_rows() {
            for c in &row.cells {
                let expected = c.paraconv_time as f64 / c.sparta_time as f64 * 100.0;
                assert!((c.imp_percent - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn render_includes_average_row() {
        let rows = quick_rows();
        let text = render(&rows).to_string();
        assert!(text.contains("Average"));
        assert!(text.contains("cat"));
        assert!(text.contains("SPARTA@16"));
    }

    #[test]
    fn averages_have_one_entry_per_pe_count() {
        let rows = quick_rows();
        assert_eq!(averages(&rows).len(), 2);
        assert!(averages(&[]).is_empty());
    }
}
