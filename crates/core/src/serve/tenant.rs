//! Per-tenant quotas, fairness accounting, and circuit breaking.
//!
//! Two protections, both deterministic (counted in requests, never
//! wall-clock):
//!
//! * **In-flight quota** — at most `max_inflight` requests per tenant
//!   admitted at once, so one chatty tenant cannot monopolize the
//!   worker pool; the `quota` rejection is the fairness backpressure.
//! * **Circuit breaker** — `threshold` *consecutive* poisoned requests
//!   trip the tenant's breaker open; while open, requests are rejected
//!   with `circuit_open` until `cooldown` rejections have passed, then
//!   one half-open probe is admitted. A successful probe closes the
//!   breaker, a poisoned one re-opens it.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Why a tenant's request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant is at its in-flight quota.
    QuotaExceeded,
    /// The tenant's circuit breaker is open.
    CircuitOpen,
}

/// How a tenant's request ended, for breaker accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Planned (or served from cache) successfully.
    Served,
    /// Poisoned: invalid inputs or a planning failure attributable to
    /// the request itself. Feeds the breaker.
    Poisoned,
    /// Neither success nor the tenant's fault (deadline expiry, shed,
    /// internal error): in-flight is released, the breaker is
    /// untouched.
    Aborted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed,
    /// Open; admits again after `remaining` further rejections.
    Open {
        remaining: u64,
    },
    /// One probe is in flight; its outcome decides open vs closed.
    HalfOpen,
}

#[derive(Debug)]
struct TenantState {
    inflight: u64,
    consecutive_poisoned: u64,
    breaker: Breaker,
    served: u64,
    poisoned: u64,
    rejected: u64,
}

impl TenantState {
    fn new() -> TenantState {
        TenantState {
            inflight: 0,
            consecutive_poisoned: 0,
            breaker: Breaker::Closed,
            served: 0,
            poisoned: 0,
            rejected: 0,
        }
    }
}

/// Fairness counters for one tenant (a [`TenantGovernor::stats`] row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Requests served successfully.
    pub served: u64,
    /// Requests that ended poisoned.
    pub poisoned: u64,
    /// Requests refused admission (quota or open circuit).
    pub rejected: u64,
    /// Whether the breaker is currently open or half-open.
    pub circuit_open: bool,
}

/// The per-tenant governor: quotas and circuit breakers behind one
/// lock (tenant counts are small; the planning work dwarfs this).
#[derive(Debug)]
pub struct TenantGovernor {
    tenants: Mutex<BTreeMap<String, TenantState>>,
    max_inflight: u64,
    threshold: u64,
    cooldown: u64,
}

impl TenantGovernor {
    /// A governor admitting `max_inflight` concurrent requests per
    /// tenant, tripping breakers after `threshold` consecutive
    /// poisoned requests, and half-opening after `cooldown` further
    /// rejections.
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight` or `threshold` is zero.
    #[must_use]
    pub fn new(max_inflight: u64, threshold: u64, cooldown: u64) -> TenantGovernor {
        assert!(max_inflight > 0, "quota must admit at least one request");
        assert!(threshold > 0, "breaker threshold must be positive");
        TenantGovernor {
            tenants: Mutex::new(BTreeMap::new()),
            max_inflight,
            threshold,
            cooldown,
        }
    }

    /// Tries to admit one request for `tenant`; on success the
    /// tenant's in-flight count is incremented and the caller **must**
    /// later call [`complete`](Self::complete) exactly once.
    ///
    /// # Errors
    ///
    /// [`AdmitError::QuotaExceeded`] or [`AdmitError::CircuitOpen`].
    pub fn admit(&self, tenant: &str) -> Result<(), AdmitError> {
        let mut tenants = self.lock();
        let state = tenants
            .entry(tenant.to_owned())
            .or_insert_with(TenantState::new);
        match state.breaker {
            Breaker::Open { remaining } => {
                if remaining > 1 {
                    state.breaker = Breaker::Open {
                        remaining: remaining - 1,
                    };
                    state.rejected += 1;
                    return Err(AdmitError::CircuitOpen);
                }
                // Cooldown elapsed: admit this one request as the probe.
                state.breaker = Breaker::HalfOpen;
            }
            Breaker::HalfOpen => {
                // The probe is still out; keep everyone else away.
                state.rejected += 1;
                return Err(AdmitError::CircuitOpen);
            }
            Breaker::Closed => {}
        }
        if state.inflight >= self.max_inflight {
            // A failed quota check must not consume the half-open
            // probe admission.
            if state.breaker == Breaker::HalfOpen {
                state.breaker = Breaker::Open { remaining: 1 };
            }
            state.rejected += 1;
            return Err(AdmitError::QuotaExceeded);
        }
        state.inflight += 1;
        Ok(())
    }

    /// Releases one admitted request and feeds the breaker.
    pub fn complete(&self, tenant: &str, outcome: RequestOutcome) {
        let mut tenants = self.lock();
        let Some(state) = tenants.get_mut(tenant) else {
            return;
        };
        state.inflight = state.inflight.saturating_sub(1);
        match outcome {
            RequestOutcome::Served => {
                state.served += 1;
                state.consecutive_poisoned = 0;
                if state.breaker == Breaker::HalfOpen {
                    state.breaker = Breaker::Closed;
                }
            }
            RequestOutcome::Poisoned => {
                state.poisoned += 1;
                state.consecutive_poisoned += 1;
                if state.breaker == Breaker::HalfOpen
                    || state.consecutive_poisoned >= self.threshold
                {
                    state.breaker = Breaker::Open {
                        remaining: self.cooldown.max(1),
                    };
                    state.consecutive_poisoned = 0;
                    paraconv_obs::counter_add("serve.circuit_trips", 1);
                }
            }
            RequestOutcome::Aborted => {
                if state.breaker == Breaker::HalfOpen {
                    // The probe never reached a verdict; stay cautious.
                    state.breaker = Breaker::Open { remaining: 1 };
                }
            }
        }
    }

    /// Records a validation failure that never reached admission (the
    /// request was poisoned on its face). Feeds the breaker exactly
    /// like a poisoned planning attempt.
    pub fn record_poisoned(&self, tenant: &str) {
        let mut tenants = self.lock();
        let state = tenants
            .entry(tenant.to_owned())
            .or_insert_with(TenantState::new);
        state.poisoned += 1;
        state.consecutive_poisoned += 1;
        if state.consecutive_poisoned >= self.threshold {
            state.breaker = Breaker::Open {
                remaining: self.cooldown.max(1),
            };
            state.consecutive_poisoned = 0;
            paraconv_obs::counter_add("serve.circuit_trips", 1);
        }
    }

    /// Per-tenant fairness counters, sorted by tenant name.
    #[must_use]
    pub fn stats(&self) -> Vec<TenantStats> {
        self.lock()
            .iter()
            .map(|(tenant, state)| TenantStats {
                tenant: tenant.clone(),
                served: state.served,
                poisoned: state.poisoned,
                rejected: state.rejected,
                circuit_open: state.breaker != Breaker::Closed,
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, TenantState>> {
        self.tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_caps_inflight_per_tenant() {
        let gov = TenantGovernor::new(2, 3, 4);
        gov.admit("a").unwrap();
        gov.admit("a").unwrap();
        assert_eq!(gov.admit("a"), Err(AdmitError::QuotaExceeded));
        // An unrelated tenant is unaffected — that is the fairness.
        gov.admit("b").unwrap();
        gov.complete("a", RequestOutcome::Served);
        gov.admit("a").unwrap();
    }

    #[test]
    fn breaker_trips_after_consecutive_poisons_and_recovers() {
        let gov = TenantGovernor::new(8, 3, 2);
        for _ in 0..3 {
            gov.admit("t").unwrap();
            gov.complete("t", RequestOutcome::Poisoned);
        }
        // Open: the next `cooldown - 1` admissions are rejected.
        assert_eq!(gov.admit("t"), Err(AdmitError::CircuitOpen));
        // Cooldown elapsed: one half-open probe goes through.
        gov.admit("t").unwrap();
        // While the probe is out, others are still rejected.
        assert_eq!(gov.admit("t"), Err(AdmitError::CircuitOpen));
        // A served probe closes the breaker for good.
        gov.complete("t", RequestOutcome::Served);
        gov.admit("t").unwrap();
        gov.complete("t", RequestOutcome::Served);
    }

    #[test]
    fn poisoned_probe_reopens() {
        let gov = TenantGovernor::new(8, 2, 2);
        for _ in 0..2 {
            gov.admit("t").unwrap();
            gov.complete("t", RequestOutcome::Poisoned);
        }
        // cooldown=2: one rejection, then the probe goes through.
        assert_eq!(gov.admit("t"), Err(AdmitError::CircuitOpen));
        gov.admit("t").unwrap();
        gov.complete("t", RequestOutcome::Poisoned);
        // A poisoned probe re-opens for a full cooldown.
        assert_eq!(gov.admit("t"), Err(AdmitError::CircuitOpen));
    }

    #[test]
    fn successes_reset_the_consecutive_count() {
        let gov = TenantGovernor::new(8, 3, 2);
        for _ in 0..2 {
            gov.admit("t").unwrap();
            gov.complete("t", RequestOutcome::Poisoned);
        }
        gov.admit("t").unwrap();
        gov.complete("t", RequestOutcome::Served);
        // Two more poisons still do not trip (count was reset).
        for _ in 0..2 {
            gov.admit("t").unwrap();
            gov.complete("t", RequestOutcome::Poisoned);
        }
        gov.admit("t").unwrap();
    }

    #[test]
    fn facial_poisons_feed_the_breaker_too() {
        let gov = TenantGovernor::new(8, 3, 2);
        for _ in 0..3 {
            gov.record_poisoned("t");
        }
        assert_eq!(gov.admit("t"), Err(AdmitError::CircuitOpen));
    }

    #[test]
    fn stats_report_per_tenant() {
        let gov = TenantGovernor::new(1, 3, 2);
        gov.admit("a").unwrap();
        gov.complete("a", RequestOutcome::Served);
        gov.admit("b").unwrap();
        assert_eq!(gov.admit("b"), Err(AdmitError::QuotaExceeded));
        let stats = gov.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].tenant, "a");
        assert_eq!(stats[0].served, 1);
        assert_eq!(stats[1].tenant, "b");
        assert_eq!(stats[1].rejected, 1);
    }
}
