//! The line/JSONL serving protocol.
//!
//! One JSON object per line in each direction. Requests:
//!
//! ```text
//! {"op":"plan","id":"r1","tenant":"acme","benchmark":"cat","pes":16,"iterations":8}
//! {"op":"ping","id":"r2"}
//! {"op":"stats","id":"r3"}
//! {"op":"drain","id":"r4"}
//! ```
//!
//! Optional `plan` fields: `policy` (`dp` | `greedy` | `all-edram`,
//! default `dp`) and `deadline_ms` (planning budget; `0` means
//! already-expired, useful for deterministic deadline tests).
//!
//! Responses always echo `id` and carry a `status`; a successful plan
//! carries the registry `key` (the artifact is content-addressed, the
//! client fetches bytes by key) and whether it was served from cache:
//!
//! ```text
//! {"cached":true,"id":"r1","key":"3b7e…","status":"ok"}
//! {"id":"r5","status":"overloaded","detail":"queue full"}
//! ```
//!
//! Every parse failure is a typed [`ProtocolError`]; hostile lines can
//! never panic the daemon.

use serde_json::{Map, Number, Value};

use paraconv_sched::AllocationPolicy;

/// A malformed protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// What was wrong, suitable for an `invalid` response detail.
    pub detail: String,
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "protocol error: {}", self.detail)
    }
}

impl std::error::Error for ProtocolError {}

fn err(detail: impl Into<String>) -> ProtocolError {
    ProtocolError {
        detail: detail.into(),
    }
}

/// A plan request, as parsed off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// Tenant the request is accounted against.
    pub tenant: String,
    /// Named synthetic benchmark to plan (see `paraconv list`).
    pub benchmark: String,
    /// PE count of the target architecture.
    pub pes: usize,
    /// Iterations the plan covers.
    pub iterations: u64,
    /// Allocation policy.
    pub policy: AllocationPolicy,
    /// Planning budget in milliseconds; `None` means no deadline,
    /// `Some(0)` is treated as already expired.
    pub deadline_ms: Option<u64>,
}

/// One parsed client line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Plan (or fetch from cache) a request.
    Plan(PlanRequest),
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: String,
    },
    /// Serving counters snapshot.
    Stats {
        /// Correlation id.
        id: String,
    },
    /// Graceful drain: stop accepting, finish in-flight, then report.
    Drain {
        /// Correlation id.
        id: String,
    },
}

/// Response statuses — the wire-level exit-code contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeStatus {
    /// Planned or served from cache; `key` addresses the artifact.
    Ok,
    /// Shed by admission control: the queue was full.
    Overloaded,
    /// The request itself was malformed or named unknown inputs.
    Invalid,
    /// The per-request deadline expired before the plan completed.
    Deadline,
    /// The tenant exceeded its in-flight quota.
    Quota,
    /// The tenant's circuit breaker is open (repeated poisoned
    /// requests); retry after the cooldown.
    CircuitOpen,
    /// The daemon is draining and no longer accepts work.
    Draining,
    /// An internal error; the request was not served.
    Error,
    /// Reply to `ping`.
    Pong,
    /// Reply to `stats`/`drain`; `detail` carries the payload.
    Report,
}

impl ServeStatus {
    /// The wire token for the status.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ServeStatus::Ok => "ok",
            ServeStatus::Overloaded => "overloaded",
            ServeStatus::Invalid => "invalid",
            ServeStatus::Deadline => "deadline",
            ServeStatus::Quota => "quota",
            ServeStatus::CircuitOpen => "circuit_open",
            ServeStatus::Draining => "draining",
            ServeStatus::Error => "error",
            ServeStatus::Pong => "pong",
            ServeStatus::Report => "report",
        }
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    /// Echo of the request id.
    pub id: String,
    /// Outcome.
    pub status: ServeStatus,
    /// Registry key of the served artifact (`ok` only).
    pub key: Option<String>,
    /// Whether the artifact came from the cache (`ok` only).
    pub cached: Option<bool>,
    /// Human-oriented detail (errors) or report payload.
    pub detail: Option<String>,
}

impl ServeResponse {
    /// A minimal response with just a status.
    #[must_use]
    pub fn status(id: impl Into<String>, status: ServeStatus) -> ServeResponse {
        ServeResponse {
            id: id.into(),
            status,
            key: None,
            cached: None,
            detail: None,
        }
    }

    /// A response with a detail string.
    #[must_use]
    pub fn with_detail(
        id: impl Into<String>,
        status: ServeStatus,
        detail: impl Into<String>,
    ) -> ServeResponse {
        ServeResponse {
            id: id.into(),
            status,
            key: None,
            cached: None,
            detail: Some(detail.into()),
        }
    }

    /// A successful plan response.
    #[must_use]
    pub fn ok(id: impl Into<String>, key: impl Into<String>, cached: bool) -> ServeResponse {
        ServeResponse {
            id: id.into(),
            status: ServeStatus::Ok,
            key: Some(key.into()),
            cached: Some(cached),
            detail: None,
        }
    }

    /// The canonical single-line JSON encoding (alphabetical keys, no
    /// trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = Map::new();
        if let Some(cached) = self.cached {
            obj.insert("cached".into(), Value::Bool(cached));
        }
        if let Some(detail) = &self.detail {
            obj.insert("detail".into(), Value::String(detail.clone()));
        }
        obj.insert("id".into(), Value::String(self.id.clone()));
        if let Some(key) = &self.key {
            obj.insert("key".into(), Value::String(key.clone()));
        }
        obj.insert(
            "status".into(),
            Value::String(self.status.as_str().to_owned()),
        );
        serde_json::to_string(&Value::Object(obj))
    }

    /// Parses a response line (the client side of the protocol).
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] for anything but a well-formed response.
    pub fn parse(line: &str) -> Result<ServeResponse, ProtocolError> {
        let value = serde_json::from_str(line.trim())
            .map_err(|e| err(format!("invalid JSON at byte {}: {e}", e.offset())))?;
        let obj = value.as_object().ok_or_else(|| err("expected an object"))?;
        let id = str_field(obj, "id")?;
        let status = match str_field(obj, "status")?.as_str() {
            "ok" => ServeStatus::Ok,
            "overloaded" => ServeStatus::Overloaded,
            "invalid" => ServeStatus::Invalid,
            "deadline" => ServeStatus::Deadline,
            "quota" => ServeStatus::Quota,
            "circuit_open" => ServeStatus::CircuitOpen,
            "draining" => ServeStatus::Draining,
            "error" => ServeStatus::Error,
            "pong" => ServeStatus::Pong,
            "report" => ServeStatus::Report,
            other => return Err(err(format!("unknown status `{other}`"))),
        };
        Ok(ServeResponse {
            id,
            status,
            key: obj.get("key").and_then(Value::as_str).map(str::to_owned),
            cached: obj.get("cached").and_then(Value::as_bool),
            detail: obj.get("detail").and_then(Value::as_str).map(str::to_owned),
        })
    }
}

fn str_field(obj: &Map, field: &str) -> Result<String, ProtocolError> {
    obj.get(field)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| err(format!("missing or non-string `{field}`")))
}

fn u64_field(obj: &Map, field: &str) -> Result<u64, ProtocolError> {
    obj.get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| err(format!("missing or non-integer `{field}`")))
}

/// Parses one client line into a [`ClientOp`].
///
/// # Errors
///
/// [`ProtocolError`] describing the first problem found; the daemon
/// maps it to an `invalid` response (with the request's `id` when one
/// could be extracted).
pub fn parse_client_line(line: &str) -> Result<ClientOp, ProtocolError> {
    let value = serde_json::from_str(line.trim())
        .map_err(|e| err(format!("invalid JSON at byte {}: {e}", e.offset())))?;
    let obj = value.as_object().ok_or_else(|| err("expected an object"))?;
    let op = obj
        .get("op")
        .and_then(Value::as_str)
        .unwrap_or("plan")
        .to_owned();
    let id = str_field(obj, "id")?;
    match op.as_str() {
        "ping" => Ok(ClientOp::Ping { id }),
        "stats" => Ok(ClientOp::Stats { id }),
        "drain" => Ok(ClientOp::Drain { id }),
        "plan" => {
            let policy = match obj.get("policy").and_then(Value::as_str).unwrap_or("dp") {
                "dp" => AllocationPolicy::DynamicProgram,
                "greedy" => AllocationPolicy::GreedyByDensity,
                "all-edram" => AllocationPolicy::AllEdram,
                other => return Err(err(format!("unknown policy `{other}`"))),
            };
            let pes =
                usize::try_from(u64_field(obj, "pes")?).map_err(|_| err("`pes` out of range"))?;
            Ok(ClientOp::Plan(PlanRequest {
                id,
                tenant: str_field(obj, "tenant")?,
                benchmark: str_field(obj, "benchmark")?,
                pes,
                iterations: u64_field(obj, "iterations")?,
                policy,
                deadline_ms: obj.get("deadline_ms").and_then(Value::as_u64),
            }))
        }
        other => Err(err(format!("unknown op `{other}`"))),
    }
}

/// Extracts a request id from a line even when full parsing fails, so
/// `invalid` responses can still be correlated.
#[must_use]
pub fn extract_id(line: &str) -> String {
    serde_json::from_str(line.trim())
        .ok()
        .as_ref()
        .and_then(Value::as_object)
        .and_then(|obj| obj.get("id"))
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_owned()
}

/// The canonical request line for a [`PlanRequest`] (used by the load
/// generator and the scripted CI client).
#[must_use]
pub fn plan_line(request: &PlanRequest) -> String {
    let mut obj = Map::new();
    obj.insert("benchmark".into(), Value::String(request.benchmark.clone()));
    if let Some(ms) = request.deadline_ms {
        obj.insert("deadline_ms".into(), Value::Number(Number::from_u64(ms)));
    }
    obj.insert("id".into(), Value::String(request.id.clone()));
    obj.insert(
        "iterations".into(),
        Value::Number(Number::from_u64(request.iterations)),
    );
    obj.insert("op".into(), Value::String("plan".into()));
    obj.insert(
        "pes".into(),
        Value::Number(Number::from_u64(request.pes as u64)),
    );
    let policy = match request.policy {
        AllocationPolicy::DynamicProgram => "dp",
        AllocationPolicy::GreedyByDensity => "greedy",
        AllocationPolicy::AllEdram => "all-edram",
    };
    obj.insert("policy".into(), Value::String(policy.into()));
    obj.insert("tenant".into(), Value::String(request.tenant.clone()));
    serde_json::to_string(&Value::Object(obj))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_line_round_trips() {
        let request = PlanRequest {
            id: "r1".into(),
            tenant: "acme".into(),
            benchmark: "cat".into(),
            pes: 16,
            iterations: 8,
            policy: AllocationPolicy::DynamicProgram,
            deadline_ms: Some(250),
        };
        let line = plan_line(&request);
        assert_eq!(parse_client_line(&line).unwrap(), ClientOp::Plan(request));
    }

    #[test]
    fn ops_parse() {
        for (line, expected) in [
            (
                "{\"op\":\"ping\",\"id\":\"a\"}",
                ClientOp::Ping { id: "a".into() },
            ),
            (
                "{\"op\":\"stats\",\"id\":\"b\"}",
                ClientOp::Stats { id: "b".into() },
            ),
            (
                "{\"op\":\"drain\",\"id\":\"c\"}",
                ClientOp::Drain { id: "c".into() },
            ),
        ] {
            assert_eq!(parse_client_line(line).unwrap(), expected);
        }
    }

    #[test]
    fn hostile_lines_are_typed_errors() {
        for line in [
            "",
            "not json",
            "[1,2,3]",
            "{\"op\":\"plan\"}",
            "{\"op\":\"explode\",\"id\":\"x\"}",
            "{\"op\":\"plan\",\"id\":\"x\",\"tenant\":\"t\",\"benchmark\":\"cat\",\"pes\":-4,\"iterations\":1}",
            "{\"op\":\"plan\",\"id\":\"x\",\"tenant\":\"t\",\"benchmark\":\"cat\",\"pes\":4,\"iterations\":1,\"policy\":\"magic\"}",
        ] {
            assert!(parse_client_line(line).is_err(), "accepted `{line}`");
        }
    }

    #[test]
    fn extract_id_survives_partial_garbage() {
        assert_eq!(extract_id("{\"id\":\"r9\",\"op\":\"explode\"}"), "r9");
        assert_eq!(extract_id("not json"), "");
    }

    #[test]
    fn response_round_trips() {
        let ok = ServeResponse::ok("r1", "ab".repeat(32), true);
        assert_eq!(ServeResponse::parse(&ok.to_json()).unwrap(), ok);
        let shed = ServeResponse::with_detail("r2", ServeStatus::Overloaded, "queue full");
        assert_eq!(ServeResponse::parse(&shed.to_json()).unwrap(), shed);
        // Alphabetical keys: canonical across processes.
        assert_eq!(
            shed.to_json(),
            "{\"detail\":\"queue full\",\"id\":\"r2\",\"status\":\"overloaded\"}"
        );
    }
}
