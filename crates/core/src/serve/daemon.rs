//! The TCP front end for [`ServeCore`](super::ServeCore): one
//! listener, one thread per connection, one JSON object per line in
//! each direction.
//!
//! The daemon owns nothing the engine does not already guarantee — it
//! only translates lines into [`submit`](super::ServeCore::submit)
//! calls and tickets back into lines. A `drain` op (or
//! [`DaemonHandle::shutdown`]) stops the listener, drains the engine
//! (every accepted request is still answered), and joins every
//! connection thread before returning the final counters.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use super::{
    parse_client_line, ClientOp, ServeConfig, ServeCore, ServeResponse, ServeStats, ServeStatus,
    Submission,
};
use paraconv_registry::ArtifactError;

/// A running daemon: the bound address plus the handles needed to
/// drain it.
#[derive(Debug)]
pub struct DaemonHandle {
    core: Arc<ServeCore>,
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), starts the
/// engine's workers, and serves until [`DaemonHandle::shutdown`] or a
/// client sends `drain`.
///
/// # Errors
///
/// [`ArtifactError`] if the registry cannot be opened, or an
/// IO-flavoured error if the socket cannot be bound.
pub fn serve(addr: &str, config: ServeConfig) -> Result<DaemonHandle, ArtifactError> {
    let listener = TcpListener::bind(addr).map_err(|e| {
        ArtifactError::Io(std::io::Error::new(e.kind(), format!("bind `{addr}`: {e}")))
    })?;
    let local = listener.local_addr().map_err(ArtifactError::Io)?;
    let core = Arc::new(ServeCore::new(config)?);
    core.start();

    let stopping = Arc::new(AtomicBool::new(false));
    let connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
        Arc::new(Mutex::new(Vec::new()));

    let accept_core = Arc::clone(&core);
    let accept_stop = Arc::clone(&stopping);
    let accept_conns = Arc::clone(&connections);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let core = Arc::clone(&accept_core);
            let stop = Arc::clone(&accept_stop);
            let handle = std::thread::spawn(move || {
                serve_connection(&core, stream, &stop);
                paraconv_obs::flush_thread();
            });
            lock(&accept_conns).push(handle);
        }
    });

    Ok(DaemonHandle {
        core,
        addr: local,
        stopping,
        accept_thread: Mutex::new(Some(accept_thread)),
        connections,
    })
}

impl DaemonHandle {
    /// The bound address (useful with port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the socket (for stats and tests).
    #[must_use]
    pub fn core(&self) -> &ServeCore {
        &self.core
    }

    /// Blocks until a client's `drain` op (or a concurrent
    /// [`shutdown`](Self::shutdown)) flips the stopping flag. The CLI
    /// parks here so the daemon's lifetime is client-controlled.
    pub fn wait_for_drain(&self) {
        while !self.stopping.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }

    /// Graceful shutdown: stop accepting connections, drain the
    /// engine (queued work still completes), join every thread, and
    /// return the final counters. Idempotent.
    pub fn shutdown(&self) -> ServeStats {
        self.stopping.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection; it
        // checks the flag before handing the stream to a worker.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = lock(&self.accept_thread).take() {
            let _ = thread.join();
        }
        let stats = self.core.drain();
        let conns = std::mem::take(&mut *lock(&self.connections));
        for conn in conns {
            let _ = conn.join();
        }
        stats
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Drives one client connection line-by-line until EOF, a write
/// failure, or a `drain` op.
fn serve_connection(core: &ServeCore, stream: TcpStream, stopping: &AtomicBool) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if stopping.load(Ordering::Acquire) {
            let id = super::extract_id(&line);
            let response =
                ServeResponse::with_detail(id, ServeStatus::Draining, "daemon is draining");
            if write_line(&mut writer, &response).is_err() {
                break;
            }
            continue;
        }
        let (response, drain_after) = dispatch(core, &line);
        if write_line(&mut writer, &response).is_err() {
            break;
        }
        if drain_after {
            stopping.store(true, Ordering::Release);
            break;
        }
    }
}

/// Turns one request line into one response; the bool asks the caller
/// to begin a daemon-wide drain after writing the response.
fn dispatch(core: &ServeCore, line: &str) -> (ServeResponse, bool) {
    match parse_client_line(line) {
        Err(e) => (
            ServeResponse::with_detail(super::extract_id(line), ServeStatus::Invalid, e.detail),
            false,
        ),
        Ok(ClientOp::Ping { id }) => (ServeResponse::status(id, ServeStatus::Pong), false),
        Ok(ClientOp::Stats { id }) => (
            ServeResponse::with_detail(id, ServeStatus::Report, core.stats().to_json()),
            false,
        ),
        Ok(ClientOp::Drain { id }) => (
            ServeResponse::with_detail(id, ServeStatus::Report, "draining"),
            true,
        ),
        Ok(ClientOp::Plan(request)) => match core.submit(request) {
            Submission::Accepted(ticket) => (ticket.wait(), false),
            Submission::Rejected(response) => (response, false),
        },
    }
}

fn write_line(
    writer: &mut std::io::BufWriter<TcpStream>,
    response: &ServeResponse,
) -> std::io::Result<()> {
    writer.write_all(response.to_json().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
