//! The two-level plan cache: in-memory map over the content-addressed
//! registry, with single-flight coalescing.
//!
//! * **Read path** — memory first, then the registry (read-through:
//!   a disk hit is promoted into memory). Either level counts as
//!   `serve.hits`; only a computation counts as `serve.misses`.
//! * **Single flight** — concurrent requests for the same cold key
//!   elect one leader; the followers block on the leader's result and
//!   count as hits. A storm of `k` identical cold requests therefore
//!   records **exactly** 1 miss and `k − 1` hits at any worker count,
//!   which is what the serve-storm tests assert byte-for-byte.
//! * **Write-through** — the leader lands the artifact in the registry
//!   (atomic rename, so a crash can never leave a torn object) and
//!   only then in memory. A failed disk write (`serve.cache_write_failed`)
//!   degrades to memory-only service — the request is still answered.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use paraconv_registry::Registry;

/// Where a served artifact came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheRole {
    /// In-memory hit.
    Hit,
    /// Registry (disk) hit, promoted into memory.
    DiskHit,
    /// Coalesced behind another request's in-flight computation.
    Coalesced,
    /// This request led the computation.
    Miss,
}

type FlightResult = Result<Arc<Vec<u8>>, String>;

#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<Option<FlightResult>>,
    done: Condvar,
}

/// The serving cache. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct PlanCache {
    memory: Mutex<HashMap<String, Arc<Vec<u8>>>>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    registry: Option<Registry>,
}

impl PlanCache {
    /// A cache over an optional persistent registry (memory-only when
    /// `None`).
    #[must_use]
    pub fn new(registry: Option<Registry>) -> PlanCache {
        PlanCache {
            memory: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// The backing registry, if any.
    #[must_use]
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// Returns the artifact for `key`, computing it at most once
    /// process-wide per cold key. `compute` runs only on the elected
    /// leader; `write_through` is false when a disk-full fault is
    /// being injected on this request (the artifact is still served,
    /// only the persistence is skipped and counted).
    ///
    /// # Errors
    ///
    /// The leader's `compute` error, verbatim (followers receive a
    /// clone of the same message).
    pub fn get_or_compute(
        &self,
        key: &str,
        write_through: bool,
        compute: impl FnOnce() -> Result<Vec<u8>, String>,
    ) -> (FlightResult, CacheRole) {
        if let Some(bytes) = self.lock_memory().get(key).cloned() {
            paraconv_obs::counter_add("serve.hits", 1);
            return (Ok(bytes), CacheRole::Hit);
        }

        // Join an existing flight or become the leader.
        let (flight, leader) = {
            let mut inflight = self.lock_inflight();
            // Re-check memory under the inflight lock: a leader that
            // finished between our two lock acquisitions has already
            // removed its flight entry and filled memory.
            if let Some(bytes) = self.lock_memory().get(key).cloned() {
                paraconv_obs::counter_add("serve.hits", 1);
                return (Ok(bytes), CacheRole::Hit);
            }
            match inflight.get(key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight::default());
                    inflight.insert(key.to_owned(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if !leader {
            let mut slot = flight
                .slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while slot.is_none() {
                slot = flight
                    .done
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            // lint: allow(no-unwrap) — the loop above guarantees Some.
            let result = slot.clone().unwrap();
            paraconv_obs::counter_add("serve.hits", 1);
            return (result, CacheRole::Coalesced);
        }

        // Leader: read through to the registry before computing.
        let (result, role) = match self.read_registry(key) {
            Some(bytes) => {
                paraconv_obs::counter_add("serve.hits", 1);
                paraconv_obs::counter_add("serve.disk_hits", 1);
                (Ok(Arc::new(bytes)), CacheRole::DiskHit)
            }
            None => {
                paraconv_obs::counter_add("serve.misses", 1);
                match compute() {
                    Ok(bytes) => {
                        if write_through {
                            if let Some(registry) = &self.registry {
                                if registry.put(key, &bytes).is_err() {
                                    paraconv_obs::counter_add("serve.cache_write_failed", 1);
                                }
                            }
                        } else {
                            paraconv_obs::counter_add("serve.cache_write_failed", 1);
                        }
                        (Ok(Arc::new(bytes)), CacheRole::Miss)
                    }
                    Err(e) => (Err(e), CacheRole::Miss),
                }
            }
        };

        if let Ok(bytes) = &result {
            self.lock_memory().insert(key.to_owned(), Arc::clone(bytes));
        }

        // Publish to followers and retire the flight. Removal happens
        // under the inflight lock *before* the notify, so a late
        // arrival either joins this (already-resolved) flight or
        // starts fresh against a now-filled memory cache.
        self.lock_inflight().remove(key);
        *flight
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result.clone());
        flight.done.notify_all();
        (result, role)
    }

    /// Artifacts currently resident in memory.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.lock_memory().len()
    }

    /// The resident artifact for `key`, if any. The chaos campaign
    /// uses this to prove every `ok` response maps to one decodable,
    /// byte-stable artifact even when disk writes were failed.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        self.lock_memory().get(key).cloned()
    }

    fn read_registry(&self, key: &str) -> Option<Vec<u8>> {
        // A corrupt object (bit rot caught by the registry's read-side
        // verification) is treated as a miss: the plan is recomputed
        // and the object overwritten — never served.
        self.registry
            .as_ref()
            .and_then(|r| r.get(key).ok().flatten())
    }

    fn lock_memory(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Vec<u8>>>> {
        self.memory
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_inflight(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Flight>>> {
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_only_cache_computes_once() {
        let cache = PlanCache::new(None);
        let (first, role) = cache.get_or_compute("k", true, || Ok(vec![1, 2, 3]));
        assert_eq!(*first.unwrap(), vec![1, 2, 3]);
        assert_eq!(role, CacheRole::Miss);
        let (second, role) = cache.get_or_compute("k", true, || panic!("must not recompute"));
        assert_eq!(*second.unwrap(), vec![1, 2, 3]);
        assert_eq!(role, CacheRole::Hit);
    }

    #[test]
    fn storm_on_one_cold_key_computes_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = Arc::new(PlanCache::new(None));
        let computes = Arc::new(AtomicU64::new(0));
        const CLIENTS: usize = 16;
        let threads: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                std::thread::spawn(move || {
                    let (result, _) = cache.get_or_compute("cold", true, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window so followers coalesce.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(vec![7; 64])
                    });
                    result.unwrap()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(*t.join().unwrap(), vec![7; 64]);
        }
        assert_eq!(computes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn leader_error_propagates_to_followers() {
        let cache = PlanCache::new(None);
        let (result, _) = cache.get_or_compute("bad", true, || Err("poisoned".into()));
        assert_eq!(result.unwrap_err(), "poisoned");
        // A failed computation is not cached: the next request retries.
        let (retry, role) = cache.get_or_compute("bad", true, || Ok(vec![9]));
        assert_eq!(*retry.unwrap(), vec![9]);
        assert_eq!(role, CacheRole::Miss);
    }
}
