//! Planning-as-a-service: the hardened `paraconv serve` engine.
//!
//! [`ServeCore`] is the in-process heart of the daemon: a bounded
//! admission [queue](BoundedQueue) feeding a worker pool, a
//! two-level single-flight [plan cache](PlanCache) over the
//! content-addressed registry, and a per-tenant
//! [governor](TenantGovernor) (quotas + circuit breakers). The TCP
//! front end ([`daemon`]) and the load generator both drive this same
//! engine, so every robustness property is testable without a socket.
//!
//! The robustness contract:
//!
//! * **Admission control** — a full queue sheds with a typed
//!   `overloaded` response; memory use is bounded by construction.
//! * **Deadlines** — each request carries a [`CancelToken`] armed by a
//!   watchdog; the scheduler and DP fill poll it cooperatively, so an
//!   expired request stops burning CPU within one phase.
//! * **No accepted request is lost** — every accepted request is
//!   answered exactly once, even across simulated worker kills
//!   (killed jobs are re-queued, keyed by attempt so the retry
//!   survives) and graceful drain (queued work finishes first).
//! * **No torn artifact** — the registry writes atomically and
//!   re-verifies `content_hash` on every read; a disk-full write
//!   degrades to memory-only service, never to a partial object.
//! * **Crash recovery** — [`ServeCore::new`] replays the registry
//!   (removing stranded temp files and corrupt objects), so warm-key
//!   hit rates survive a kill.

mod cache;
pub mod daemon;
mod protocol;
mod queue;
mod tenant;

pub use cache::{CacheRole, PlanCache};
pub use protocol::{
    extract_id, parse_client_line, plan_line, ClientOp, PlanRequest, ProtocolError, ServeResponse,
    ServeStatus,
};
pub use queue::{BoundedQueue, PushError};
pub use tenant::{AdmitError, RequestOutcome, TenantGovernor, TenantStats};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use paraconv_fault::FaultSpec;
use paraconv_obs::{CancelScope, CancelToken};
use paraconv_registry::{request_key, ArtifactError, PlanBundle, PlanPolicy, Registry};
use paraconv_sched::{ParaConvScheduler, SchedError};
use serde_json::{Map, Number, Value};

/// Tuning knobs for a [`ServeCore`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool width.
    pub jobs: usize,
    /// Admission-queue capacity; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Registry directory backing the cache (`None` = memory only).
    pub registry_path: Option<PathBuf>,
    /// Max in-flight requests per tenant.
    pub quota: u64,
    /// Consecutive poisoned requests tripping a tenant's breaker.
    pub breaker_threshold: u64,
    /// Rejections an open breaker holds before half-opening.
    pub breaker_cooldown: u64,
    /// Fault campaign injected into the serving path (chaos mode).
    pub fault: Option<FaultSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: crate::sweep::max_jobs(),
            queue_capacity: 64,
            registry_path: None,
            quota: 16,
            breaker_threshold: 3,
            breaker_cooldown: 8,
            fault: None,
        }
    }
}

/// A one-shot response slot the submitter blocks on.
#[derive(Debug, Default)]
pub struct Ticket {
    slot: Mutex<Option<ServeResponse>>,
    done: Condvar,
}

impl Ticket {
    /// Blocks until the worker answers.
    #[must_use]
    pub fn wait(&self) -> ServeResponse {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = self
                .done
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn fulfil(&self, response: ServeResponse) {
        *self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(response);
        self.done.notify_all();
    }
}

/// What [`ServeCore::submit`] produced.
#[derive(Debug)]
pub enum Submission {
    /// Accepted: the answer arrives through the ticket.
    Accepted(Arc<Ticket>),
    /// Rejected (shed / invalid / quota / circuit / draining): the
    /// response is already final.
    Rejected(ServeResponse),
}

impl Submission {
    /// The final response, blocking on the ticket if accepted.
    #[must_use]
    pub fn wait(self) -> ServeResponse {
        match self {
            Submission::Accepted(ticket) => ticket.wait(),
            Submission::Rejected(response) => response,
        }
    }
}

/// Serving counters (the `stats` op payload). All counts are exact:
/// every submitted request lands in exactly one terminal counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests shed by admission control (queue full).
    pub shed: u64,
    /// Requests rejected because the daemon is draining.
    pub draining: u64,
    /// Facially-invalid requests (unknown benchmark, zero sizes).
    pub invalid: u64,
    /// Requests rejected by tenant quota.
    pub quota: u64,
    /// Requests rejected by an open circuit breaker.
    pub circuit_open: u64,
    /// Accepted requests answered `ok`.
    pub served: u64,
    /// Cache hits among served requests (memory, disk, or coalesced).
    pub hits: u64,
    /// Cold computations among served requests.
    pub misses: u64,
    /// Accepted requests that missed their deadline.
    pub deadline: u64,
    /// Accepted requests that failed in planning (poisoned).
    pub failed: u64,
    /// Simulated worker kills survived (request re-queued).
    pub worker_kills: u64,
    /// Slow-request delays injected.
    pub slow_injected: u64,
}

impl ServeStats {
    /// Canonical single-line JSON (alphabetical keys).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = Map::new();
        for (name, value) in [
            ("accepted", self.accepted),
            ("circuit_open", self.circuit_open),
            ("deadline", self.deadline),
            ("draining", self.draining),
            ("failed", self.failed),
            ("hits", self.hits),
            ("invalid", self.invalid),
            ("misses", self.misses),
            ("quota", self.quota),
            ("served", self.served),
            ("shed", self.shed),
            ("slow_injected", self.slow_injected),
            ("worker_kills", self.worker_kills),
        ] {
            obj.insert(name.into(), Value::Number(Number::from_u64(value)));
        }
        serde_json::to_string(&Value::Object(obj))
    }
}

#[derive(Debug, Default)]
struct StatsCells {
    accepted: AtomicU64,
    shed: AtomicU64,
    draining: AtomicU64,
    invalid: AtomicU64,
    quota: AtomicU64,
    circuit_open: AtomicU64,
    served: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    deadline: AtomicU64,
    failed: AtomicU64,
    worker_kills: AtomicU64,
    slow_injected: AtomicU64,
}

/// One queued unit of work.
#[derive(Debug)]
struct Job {
    request: PlanRequest,
    seq: u64,
    attempt: u32,
    token: CancelToken,
    ticket: Arc<Ticket>,
    created: Instant,
}

/// Deadline watchdog: arms `(expiry, token)` pairs and cancels them
/// from one background thread. Wall-clock by necessity — tests that
/// need determinism use `deadline_ms = 0`, which cancels at submit.
#[derive(Debug, Default)]
struct Watchdog {
    armed: Mutex<Vec<(Instant, CancelToken)>>,
    changed: Condvar,
}

impl Watchdog {
    fn arm(&self, expiry: Instant, token: CancelToken) {
        self.lock().push((expiry, token));
        self.changed.notify_all();
    }

    fn shutdown(&self) {
        // An empty sentinel expiry in the past wakes the thread; the
        // drain flag it checks lives in ServeInner.
        self.changed.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(Instant, CancelToken)>> {
        self.armed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[derive(Debug)]
struct ServeInner {
    config: ServeConfig,
    queue: BoundedQueue<Job>,
    tenants: TenantGovernor,
    cache: PlanCache,
    seq: AtomicU64,
    stats: StatsCells,
    watchdog: Watchdog,
    stopping: std::sync::atomic::AtomicBool,
}

/// The serving engine. See the [module docs](self) for the contract.
#[derive(Debug)]
pub struct ServeCore {
    inner: Arc<ServeInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ServeCore {
    /// Builds the engine: opens (and crash-recovers) the registry and
    /// sets up the queue, governor and cache. Workers do not run until
    /// [`start`](Self::start) — tests exploit that to fill the queue
    /// deterministically.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] if the registry cannot be opened or swept.
    pub fn new(config: ServeConfig) -> Result<ServeCore, ArtifactError> {
        let registry = match &config.registry_path {
            Some(path) => {
                let registry = Registry::open(path)?;
                let report = registry.recover()?;
                paraconv_obs::counter_add("serve.recovered_keys", report.intact.len() as u64);
                paraconv_obs::counter_add("serve.recovered_tmp", report.tmp_removed);
                paraconv_obs::counter_add("serve.recovered_corrupt", report.corrupt_removed);
                Some(registry)
            }
            None => None,
        };
        let inner = Arc::new(ServeInner {
            queue: BoundedQueue::new(config.queue_capacity),
            tenants: TenantGovernor::new(
                config.quota,
                config.breaker_threshold,
                config.breaker_cooldown,
            ),
            cache: PlanCache::new(registry),
            seq: AtomicU64::new(0),
            stats: StatsCells::default(),
            watchdog: Watchdog::default(),
            stopping: std::sync::atomic::AtomicBool::new(false),
            config,
        });
        Ok(ServeCore {
            inner,
            workers: Mutex::new(Vec::new()),
        })
    }

    /// Spawns the worker pool (idempotent) and the deadline watchdog.
    pub fn start(&self) {
        let mut workers = self.lock_workers();
        if !workers.is_empty() {
            return;
        }
        for _ in 0..self.inner.config.jobs.max(1) {
            let inner = Arc::clone(&self.inner);
            workers.push(std::thread::spawn(move || {
                while let Some(job) = inner.queue.pop() {
                    inner.process(job);
                }
                paraconv_obs::flush_thread();
            }));
        }
        let inner = Arc::clone(&self.inner);
        workers.push(std::thread::spawn(move || inner.watchdog_loop()));
    }

    /// Validates, admits and enqueues one request. Any rejection is
    /// final and immediate; an acceptance always produces exactly one
    /// response through the ticket.
    pub fn submit(&self, request: PlanRequest) -> Submission {
        let inner = &self.inner;
        // Facial validation happens before admission so poisoned
        // requests never touch the queue or the cache — and still feed
        // the tenant's circuit breaker.
        if let Err(detail) = validate(&request) {
            inner.tenants.record_poisoned(&request.tenant);
            inner.stats.invalid.fetch_add(1, Ordering::Relaxed);
            paraconv_obs::counter_add("serve.invalid", 1);
            return Submission::Rejected(ServeResponse::with_detail(
                request.id,
                ServeStatus::Invalid,
                detail,
            ));
        }
        match inner.tenants.admit(&request.tenant) {
            Err(AdmitError::QuotaExceeded) => {
                inner.stats.quota.fetch_add(1, Ordering::Relaxed);
                paraconv_obs::counter_add("serve.quota_rejected", 1);
                return Submission::Rejected(ServeResponse::with_detail(
                    request.id,
                    ServeStatus::Quota,
                    "tenant in-flight quota exceeded",
                ));
            }
            Err(AdmitError::CircuitOpen) => {
                inner.stats.circuit_open.fetch_add(1, Ordering::Relaxed);
                paraconv_obs::counter_add("serve.circuit_rejected", 1);
                return Submission::Rejected(ServeResponse::with_detail(
                    request.id,
                    ServeStatus::CircuitOpen,
                    "circuit breaker open for tenant",
                ));
            }
            Ok(()) => {}
        }
        let token = CancelToken::new();
        match request.deadline_ms {
            Some(0) => token.cancel(),
            Some(ms) => inner.watchdog.arm(
                Instant::now() + std::time::Duration::from_millis(ms),
                token.clone(),
            ),
            None => {}
        }
        let ticket = Arc::new(Ticket::default());
        let job = Job {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            attempt: 0,
            token,
            ticket: Arc::clone(&ticket),
            created: Instant::now(),
            request,
        };
        match inner.queue.push(job) {
            Ok(()) => {
                inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                paraconv_obs::counter_add("serve.accepted", 1);
                Submission::Accepted(ticket)
            }
            Err(PushError::Overloaded(job)) => {
                inner
                    .tenants
                    .complete(&job.request.tenant, RequestOutcome::Aborted);
                inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                paraconv_obs::counter_add("serve.shed", 1);
                Submission::Rejected(ServeResponse::with_detail(
                    job.request.id,
                    ServeStatus::Overloaded,
                    "admission queue full",
                ))
            }
            Err(PushError::Draining(job)) => {
                inner
                    .tenants
                    .complete(&job.request.tenant, RequestOutcome::Aborted);
                inner.stats.draining.fetch_add(1, Ordering::Relaxed);
                paraconv_obs::counter_add("serve.rejected_draining", 1);
                Submission::Rejected(ServeResponse::with_detail(
                    job.request.id,
                    ServeStatus::Draining,
                    "daemon is draining",
                ))
            }
        }
    }

    /// Graceful drain: stop accepting, finish every queued and
    /// in-flight request, stop the workers and the watchdog. Returns
    /// the final counters. Idempotent.
    pub fn drain(&self) -> ServeStats {
        self.inner
            .stopping
            .store(true, std::sync::atomic::Ordering::Release);
        self.inner.queue.drain();
        self.inner.watchdog.shutdown();
        let workers = std::mem::take(&mut *self.lock_workers());
        for worker in workers {
            let _ = worker.join();
        }
        self.stats()
    }

    /// Current counters (exact; see [`ServeStats`]).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let cells = &self.inner.stats;
        let get = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        ServeStats {
            accepted: get(&cells.accepted),
            shed: get(&cells.shed),
            draining: get(&cells.draining),
            invalid: get(&cells.invalid),
            quota: get(&cells.quota),
            circuit_open: get(&cells.circuit_open),
            served: get(&cells.served),
            hits: get(&cells.hits),
            misses: get(&cells.misses),
            deadline: get(&cells.deadline),
            failed: get(&cells.failed),
            worker_kills: get(&cells.worker_kills),
            slow_injected: get(&cells.slow_injected),
        }
    }

    /// Per-tenant fairness counters.
    #[must_use]
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.inner.tenants.stats()
    }

    /// The cache (for tests and the load generator).
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.inner.cache
    }

    fn lock_workers(&self) -> std::sync::MutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
        self.workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Facial request validation — everything checkable without planning.
fn validate(request: &PlanRequest) -> Result<(), String> {
    if crate::synth::benchmarks::by_name(&request.benchmark).is_none() {
        return Err(format!("unknown benchmark `{}`", request.benchmark));
    }
    if request.pes == 0 {
        return Err("pes must be positive".into());
    }
    if request.iterations == 0 {
        return Err("iterations must be positive".into());
    }
    if request.tenant.is_empty() {
        return Err("tenant must be non-empty".into());
    }
    Ok(())
}

impl ServeInner {
    fn watchdog_loop(&self) {
        let mut armed = self.watchdog.lock();
        loop {
            if self.stopping.load(std::sync::atomic::Ordering::Acquire) {
                // Cancel whatever is still armed: draining workers
                // answer `deadline` rather than run past shutdown.
                for (_, token) in armed.drain(..) {
                    token.cancel();
                }
                return;
            }
            let now = Instant::now();
            armed.retain(|(expiry, token)| {
                if *expiry <= now {
                    token.cancel();
                    false
                } else {
                    true
                }
            });
            let wait = armed
                .iter()
                .map(|(expiry, _)| expiry.saturating_duration_since(now))
                .min()
                .unwrap_or(std::time::Duration::from_millis(50));
            let (guard, _) = self
                .watchdog
                .changed
                .wait_timeout(armed, wait.min(std::time::Duration::from_millis(50)))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            armed = guard;
        }
    }

    fn process(&self, job: Job) {
        let fault = self.config.fault.clone().unwrap_or_else(|| {
            // lint: allow(no-unwrap) — the quiet spec always builds.
            FaultSpec::quiet(0)
        });

        // Deadline already expired (or drain cancelled it): answer
        // without planning. Not the tenant's fault — no breaker food.
        if job.token.is_cancelled() {
            self.stats.deadline.fetch_add(1, Ordering::Relaxed);
            paraconv_obs::counter_add("serve.deadline", 1);
            self.tenants
                .complete(&job.request.tenant, RequestOutcome::Aborted);
            job.ticket.fulfil(ServeResponse::with_detail(
                job.request.id.clone(),
                ServeStatus::Deadline,
                "deadline expired before planning",
            ));
            return;
        }

        // Simulated worker kill: this worker "dies" mid-plan. The job
        // is re-queued (new attempt) before any response is written,
        // so the request is never lost — exactly the invariant the
        // chaos campaign asserts.
        if fault.worker_kill(job.seq, job.attempt) {
            self.stats.worker_kills.fetch_add(1, Ordering::Relaxed);
            paraconv_obs::counter_add("serve.worker_killed", 1);
            paraconv_obs::flight_record("serve", "worker.kill", job.seq, u64::from(job.attempt));
            self.queue.requeue(Job {
                attempt: job.attempt + 1,
                ..job
            });
            return;
        }

        // Slow-request injection: latency, not failure.
        let slow = fault.slow_request_delay_ms(job.seq);
        if slow > 0 {
            self.stats.slow_injected.fetch_add(1, Ordering::Relaxed);
            paraconv_obs::counter_add("serve.slow_injected", 1);
            std::thread::sleep(std::time::Duration::from_millis(slow));
        }

        let write_through = !fault.cache_write_fails(job.seq);
        let outcome = self.plan(&job, write_through);
        let tenant = job.request.tenant.clone();
        match outcome {
            Ok((key, role)) => {
                self.stats.served.fetch_add(1, Ordering::Relaxed);
                paraconv_obs::counter_add("serve.served", 1);
                if role == CacheRole::Miss {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                }
                let micros = u64::try_from(job.created.elapsed().as_micros()).unwrap_or(u64::MAX);
                paraconv_obs::observe("serve.latency_us", micros);
                self.tenants.complete(&tenant, RequestOutcome::Served);
                job.ticket.fulfil(ServeResponse::ok(
                    job.request.id.clone(),
                    key,
                    role != CacheRole::Miss,
                ));
            }
            Err(PlanFailure::Cancelled) => {
                self.stats.deadline.fetch_add(1, Ordering::Relaxed);
                paraconv_obs::counter_add("serve.deadline", 1);
                self.tenants.complete(&tenant, RequestOutcome::Aborted);
                job.ticket.fulfil(ServeResponse::with_detail(
                    job.request.id.clone(),
                    ServeStatus::Deadline,
                    "deadline expired during planning",
                ));
            }
            Err(PlanFailure::Poisoned(detail)) => {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                paraconv_obs::counter_add("serve.failed", 1);
                self.tenants.complete(&tenant, RequestOutcome::Poisoned);
                job.ticket.fulfil(ServeResponse::with_detail(
                    job.request.id.clone(),
                    ServeStatus::Error,
                    detail,
                ));
            }
        }
    }

    /// Builds the request's graph/config (failures are poisoned
    /// *before* the cache is consulted), then serves through the
    /// single-flight cache.
    fn plan(&self, job: &Job, write_through: bool) -> Result<(String, CacheRole), PlanFailure> {
        let request = &job.request;
        // lint: allow(no-unwrap) — validate() checked the name exists.
        let benchmark = crate::synth::benchmarks::by_name(&request.benchmark).unwrap();
        let graph = benchmark
            .graph()
            .map_err(|e| PlanFailure::Poisoned(format!("benchmark generation failed: {e}")))?;
        let config = crate::pim::PimConfig::neurocube(request.pes)
            .map_err(|e| PlanFailure::Poisoned(format!("invalid architecture: {e}")))?;
        let policy = PlanPolicy {
            allocation: request.policy,
            iterations: request.iterations,
        };
        let key = request_key(&graph, &config, &policy);
        let token = job.token.clone();
        let iterations = request.iterations;
        let (result, role) = self.cache.get_or_compute(&key, write_through, move || {
            let _scope = CancelScope::enter(token);
            let outcome = ParaConvScheduler::new(config.clone())
                .with_policy(policy.allocation)
                .schedule(&graph, iterations)
                .map_err(|e| match e {
                    SchedError::Cancelled => CANCELLED_SENTINEL.to_owned(),
                    other => format!("scheduling failed: {other}"),
                })?;
            crate::verify::verify_outcome(&graph, &outcome, &config)
                .map_err(|e| format!("refusing to serve an unprovable plan: {e}"))?;
            Ok(PlanBundle {
                graph,
                config,
                policy,
                outcome,
            }
            .encode())
        });
        match result {
            Ok(_) => Ok((key, role)),
            Err(e) if e == CANCELLED_SENTINEL => Err(PlanFailure::Cancelled),
            Err(e) => Err(PlanFailure::Poisoned(e)),
        }
    }
}

const CANCELLED_SENTINEL: &str = "__cancelled__";

#[derive(Debug)]
enum PlanFailure {
    Cancelled,
    Poisoned(String),
}
