//! The bounded admission queue: MPMC, non-blocking producers, blocking
//! consumers, and a drain flag for graceful shutdown.
//!
//! Admission control happens at `push`: a full queue rejects with a
//! typed [`PushError::Overloaded`] carrying the item back — the daemon
//! never buffers unboundedly, it sheds. Workers block in `pop` until
//! an item arrives or the queue is drained empty, at which point every
//! worker wakes and exits.
//!
//! The wait/notify protocol (one mutex, one condvar, a `draining`
//! flag checked under the lock) is exactly the model the
//! `serve-queue` harness in `paraconv-analyze` explores schedule-
//! exhaustively; the seeded `serve-queue-lost-wakeup` fixture shows
//! why the flag must be read under the same lock the sleeper holds.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back so the caller
    /// can shed it with a typed response instead of dropping it.
    Overloaded(T),
    /// The queue is draining; no new work is admitted.
    Draining(T),
}

/// A bounded MPMC queue with explicit load-shedding and drain.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    draining: bool,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a queue that can never admit work
    /// would shed everything).
    #[must_use]
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                draining: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking admission: enqueues `item` or refuses with a typed
    /// error carrying it back. Never waits — backpressure is the
    /// caller's signal to shed.
    ///
    /// # Errors
    ///
    /// [`PushError::Overloaded`] at capacity, [`PushError::Draining`]
    /// after [`drain`](Self::drain).
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.draining {
            return Err(PushError::Draining(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Overloaded(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking consume: the next item in admission order, or `None`
    /// once the queue is draining **and** empty (the worker-exit
    /// signal). In-flight items are always finished before workers see
    /// `None` — drain never abandons admitted work.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.draining {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Re-admits work that was **already accepted** and then lost its
    /// worker (a simulated mid-plan kill). Bypasses both the capacity
    /// bound and the drain flag — an accepted request is never shed
    /// and never abandoned — and lands at the front so the retry does
    /// not pay the queue again.
    pub fn requeue(&self, item: T) {
        self.lock().items.push_front(item);
        self.available.notify_one();
    }

    /// Stops admission and wakes every blocked consumer. Items already
    /// queued are still handed out; only then do consumers see `None`.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.available.notify_all();
    }

    /// Whether [`drain`](Self::drain) has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Items currently queued (racy by nature; for stats only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy; for stats only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_admission_order() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn overflow_returns_the_item_typed() {
        let q = BoundedQueue::new(2);
        q.push(10).unwrap();
        q.push(11).unwrap();
        assert_eq!(q.push(12), Err(PushError::Overloaded(12)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_rejects_new_work_but_hands_out_queued_items() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.drain();
        assert!(q.is_draining());
        assert_eq!(q.push(2), Err(PushError::Draining(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_drain() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give consumers a chance to block, then drain.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.drain();
        for c in consumers {
            assert_eq!(c.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PRODUCERS: usize = 4;
        const ITEMS_EACH: usize = 256;
        let q = Arc::new(BoundedQueue::<usize>::new(8));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut landed = 0usize;
                    for i in 0..ITEMS_EACH {
                        let mut item = p * ITEMS_EACH + i;
                        // Spin on backpressure: the test wants every
                        // item through, a real caller would shed.
                        loop {
                            match q.push(item) {
                                Ok(()) => break,
                                Err(PushError::Overloaded(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Draining(_)) => unreachable!(),
                            }
                        }
                        landed += 1;
                    }
                    landed
                })
            })
            .collect();
        let mut sent = 0;
        for p in producers {
            sent += p.join().unwrap();
        }
        q.drain();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(sent, PRODUCERS * ITEMS_EACH);
        assert_eq!(all.len(), sent, "every admitted item is consumed once");
        all.dedup();
        assert_eq!(all.len(), sent, "no item is consumed twice");
    }
}
