//! High-level entry points: schedule, simulate and compare in one call.

use paraconv_alloc::IncrementalDp;
use paraconv_fault::FaultSpec;
use paraconv_graph::TaskGraph;
use paraconv_pim::{
    audit, simulate, simulate_with_faults, FaultOutcome, PimConfig, SimError, SimReport,
};
use paraconv_sched::{
    AllocationPolicy, ParaConvOutcome, ParaConvScheduler, SpartaOutcome, SpartaScheduler,
};

use crate::CoreError;

/// A Para-CONV schedule together with its validated simulation report.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The scheduler's full output (plan, kernel, retiming,
    /// allocation, analysis).
    pub outcome: ParaConvOutcome,
    /// The simulator's report for the emitted plan.
    pub report: SimReport,
}

/// The result of a fault-injected chaos run: the final (possibly
/// degraded) plan, its fault-perturbed report, and the recovery
/// history.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// The scheduler's output for the final surviving-PE set.
    pub outcome: ParaConvOutcome,
    /// The fault-perturbed simulation report of the final plan.
    pub report: SimReport,
    /// Injection and recovery statistics for the final replay.
    pub faults: FaultOutcome,
    /// PEs that fail-stopped during the campaign (sorted by index).
    pub failed_pes: Vec<u32>,
    /// Number of degraded-mode replans the campaign forced.
    pub replans: u64,
    /// The degraded architecture the final plan targets (equals the
    /// runner's config when nothing fail-stopped).
    pub config: PimConfig,
}

/// A SPARTA-baseline schedule together with its simulation report.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The baseline scheduler's output.
    pub outcome: SpartaOutcome,
    /// The simulator's report for the emitted plan.
    pub report: SimReport,
}

/// A side-by-side run of Para-CONV and the SPARTA baseline on the same
/// graph, architecture and iteration count.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The Para-CONV run.
    pub paraconv: RunResult,
    /// The baseline run.
    pub sparta: BaselineResult,
}

impl Comparison {
    /// The paper's "IMP (%)" column: Para-CONV's total execution time
    /// as a percentage of SPARTA's (lower is better; the paper's
    /// reported 53.42% average corresponds to a 1.87× speedup).
    #[must_use]
    pub fn improvement_percent(&self) -> f64 {
        if self.sparta.report.total_time == 0 {
            return 100.0;
        }
        self.paraconv.report.total_time as f64 / self.sparta.report.total_time as f64 * 100.0
    }

    /// Throughput acceleration `SPARTA time / Para-CONV time`.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.paraconv.report.total_time == 0 {
            return 1.0;
        }
        self.sparta.report.total_time as f64 / self.paraconv.report.total_time as f64
    }
}

/// The one-stop Para-CONV runner: owns an architecture configuration
/// and produces validated runs.
///
/// # Examples
///
/// ```
/// use paraconv::ParaConv;
/// use paraconv_graph::examples;
/// use paraconv_pim::PimConfig;
///
/// let runner = ParaConv::new(PimConfig::neurocube(16)?);
/// let comparison = runner.compare(&examples::motivational(), 50)?;
/// // Para-CONV never loses to the baseline on the motivational graph.
/// assert!(comparison.speedup() >= 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParaConv {
    config: PimConfig,
    policy: AllocationPolicy,
    audit: bool,
    verify: bool,
}

impl ParaConv {
    /// Creates a runner for the given architecture.
    #[must_use]
    pub fn new(config: PimConfig) -> Self {
        ParaConv {
            config,
            policy: AllocationPolicy::DynamicProgram,
            audit: false,
            verify: false,
        }
    }

    /// Overrides the allocation policy (ablation studies).
    #[must_use]
    pub fn with_policy(mut self, policy: AllocationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the independent plan auditor: every emitted plan and
    /// every simulator report is re-checked by
    /// [`paraconv_pim::audit`], and any violation surfaces as
    /// [`CoreError::Audit`].
    #[must_use]
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Enables the static plan verifier: every Para-CONV outcome is
    /// proved retiming-legal with steady-state occupancy bounds within
    /// capacity, the bounds are checked against the simulator's
    /// observed high-water marks, and any violation surfaces as
    /// [`CoreError::Verify`]. The SPARTA baseline is not a retimed
    /// plan and is never statically verified.
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// The architecture this runner targets.
    #[must_use]
    pub const fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Schedules `iterations` iterations with Para-CONV and replays
    /// the plan on the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for zero iterations or if the emitted plan
    /// fails validation (a bug, surfaced rather than hidden).
    pub fn run(&self, graph: &TaskGraph, iterations: u64) -> Result<RunResult, CoreError> {
        let _span = paraconv_obs::span("run.paraconv", "run");
        let outcome = ParaConvScheduler::new(self.config.clone())
            .with_policy(self.policy)
            .schedule(graph, iterations)?;
        let report = simulate(graph, &outcome.plan, &self.config)?;
        if self.audit {
            let _audit_span = paraconv_obs::span("run.audit", "run");
            audit(graph, &outcome.plan, &self.config, &report)?;
        }
        if self.verify {
            let _verify_span = paraconv_obs::span("run.verify", "run");
            paraconv_verify::verify_run(graph, &outcome, &self.config, &report)?;
        }
        Ok(RunResult { outcome, report })
    }

    /// Runs a deterministic fault campaign: schedule, replay under
    /// `spec`'s injected faults, and recover.
    ///
    /// Transient faults (vault retries, congestion, IPR corruption)
    /// are absorbed inside the replay; a PE fail-stop aborts it, after
    /// which the runner degrades the architecture
    /// ([`PimConfig::degrade`]), remaps the dead PE's rotation slots
    /// onto the survivors, incrementally re-solves the allocation DP
    /// under the reduced cache budget (through one persistent
    /// [`paraconv_alloc::IncrementalDp`] session threaded into
    /// [`paraconv_sched::ParaConvScheduler::reschedule`] — refilling
    /// only the rows the degradation perturbed while staying
    /// byte-identical to a cold solve), and replays again. The loop
    /// terminates because each replan retires one PE for good: either
    /// a plan completes or no PEs survive.
    ///
    /// When auditing/verification are enabled they run against the
    /// *clean* replay of the final degraded plan — the paper's
    /// invariants are properties of the plan, not of the fault
    /// campaign perturbing it.
    ///
    /// # Errors
    ///
    /// [`CoreError::Sim`] for unrecoverable faults
    /// ([`SimError::RetryExhausted`], [`SimError::WatchdogExceeded`]),
    /// [`CoreError::Config`] when the last PE dies
    /// ([`paraconv_pim::ConfigError::NoSurvivingPes`]), plus
    /// everything [`run`](Self::run) can return.
    pub fn run_chaos(
        &self,
        graph: &TaskGraph,
        iterations: u64,
        spec: &FaultSpec,
    ) -> Result<ChaosResult, CoreError> {
        let _span = paraconv_obs::span("run.chaos", "run");
        let mut config = self.config.clone();
        // One DP session for the whole campaign: the first reschedule
        // primes it (a cold fill), every replan after a fail-stop
        // refills only the perturbed suffix rows. reallocate() is
        // byte-identical to allocate(), so quiet campaigns still match
        // plain runs exactly.
        let mut session = IncrementalDp::new();
        let mut replans = 0u64;
        loop {
            let scheduler = ParaConvScheduler::new(config.clone()).with_policy(self.policy);
            let outcome = scheduler.reschedule(graph, iterations, &mut session)?;
            match simulate_with_faults(graph, &outcome.plan, &config, spec) {
                Ok((report, faults)) => {
                    if self.audit {
                        let _audit_span = paraconv_obs::span("run.audit", "run");
                        let clean = simulate(graph, &outcome.plan, &config)?;
                        audit(graph, &outcome.plan, &config, &clean)?;
                    }
                    if self.verify {
                        let _verify_span = paraconv_obs::span("run.verify", "run");
                        paraconv_verify::verify_outcome(graph, &outcome, &config)?;
                    }
                    return Ok(ChaosResult {
                        outcome,
                        report,
                        faults,
                        failed_pes: config.failed_pes().to_vec(),
                        replans,
                        config,
                    });
                }
                Err(SimError::PeFailStop { pe, cycle, .. }) => {
                    paraconv_obs::counter_add(paraconv_fault::metrics::REPLANS, 1);
                    replans += 1;
                    paraconv_obs::flight_record("chaos", "replan", cycle, pe.index() as u64);
                    config = config.degrade(&[pe.index() as u32])?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Schedules `iterations` iterations with the SPARTA baseline and
    /// replays the plan on the simulator.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_baseline(
        &self,
        graph: &TaskGraph,
        iterations: u64,
    ) -> Result<BaselineResult, CoreError> {
        let _span = paraconv_obs::span("run.sparta", "run");
        let outcome = SpartaScheduler::new(self.config.clone()).schedule(graph, iterations)?;
        let report = simulate(graph, &outcome.plan, &self.config)?;
        if self.audit {
            let _audit_span = paraconv_obs::span("run.audit", "run");
            audit(graph, &outcome.plan, &self.config, &report)?;
        }
        Ok(BaselineResult { outcome, report })
    }

    /// Runs both schedulers on identical inputs.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn compare(&self, graph: &TaskGraph, iterations: u64) -> Result<Comparison, CoreError> {
        Ok(Comparison {
            paraconv: self.run(graph, iterations)?,
            sparta: self.run_baseline(graph, iterations)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraconv_graph::examples;

    #[test]
    fn comparison_metrics_are_consistent() {
        let runner = ParaConv::new(PimConfig::neurocube(8).unwrap());
        let cmp = runner.compare(&examples::fork_join(12), 20).unwrap();
        let imp = cmp.improvement_percent();
        let speedup = cmp.speedup();
        assert!((imp / 100.0 - 1.0 / speedup).abs() < 1e-9);
        assert!(cmp.paraconv.report.iterations == 20);
        assert!(cmp.sparta.report.iterations == 20);
    }

    #[test]
    fn run_results_expose_reports() {
        let runner = ParaConv::new(PimConfig::neurocube(4).unwrap());
        let r = runner.run(&examples::motivational(), 10).unwrap();
        assert_eq!(r.report.iterations, 10);
        assert_eq!(r.outcome.plan.iterations(), 10);
        let b = runner.run_baseline(&examples::motivational(), 10).unwrap();
        assert_eq!(b.report.iterations, 10);
    }

    #[test]
    fn audited_runs_match_unaudited_runs() {
        let plain = ParaConv::new(PimConfig::neurocube(8).unwrap());
        let audited = plain.clone().with_audit(true);
        let g = examples::fork_join(12);
        let a = audited.compare(&g, 10).unwrap();
        let b = plain.compare(&g, 10).unwrap();
        assert_eq!(a.paraconv.report, b.paraconv.report);
        assert_eq!(a.sparta.report, b.sparta.report);
    }

    #[test]
    fn quiet_chaos_matches_a_plain_run() {
        let runner = ParaConv::new(PimConfig::neurocube(8).unwrap());
        let g = examples::fork_join(12);
        let plain = runner.run(&g, 10).unwrap();
        let chaos = runner
            .run_chaos(&g, 10, &paraconv_fault::FaultSpec::quiet(1))
            .unwrap();
        assert_eq!(plain.report, chaos.report);
        assert_eq!(chaos.replans, 0);
        assert!(chaos.failed_pes.is_empty());
        assert_eq!(chaos.faults.injected, 0);
    }

    #[test]
    fn pe_fail_stop_triggers_a_degraded_replan() {
        let runner = ParaConv::new(PimConfig::neurocube(4).unwrap())
            .with_audit(true)
            .with_verify(true);
        let g = examples::fork_join(12);
        // Kill PE1 at cycle 0: every task it would run fails, forcing
        // an immediate remap onto the three survivors.
        let spec = paraconv_fault::FaultSpec::builder(7)
            .kill_pe(1, 0)
            .build()
            .unwrap();
        let chaos = runner.run_chaos(&g, 10, &spec).unwrap();
        assert_eq!(chaos.replans, 1);
        assert_eq!(chaos.failed_pes, vec![1]);
        assert_eq!(chaos.config.active_pes(), 3);
        for t in chaos.outcome.plan.tasks() {
            assert_ne!(t.pe.index(), 1, "task on the killed PE");
        }
    }

    #[test]
    fn killing_every_pe_is_a_typed_config_error() {
        let runner = ParaConv::new(PimConfig::neurocube(4).unwrap());
        let g = examples::motivational();
        let mut builder = paraconv_fault::FaultSpec::builder(9);
        for pe in 0..4 {
            builder = builder.kill_pe(pe, 0);
        }
        let spec = builder.build().unwrap();
        assert!(matches!(
            runner.run_chaos(&g, 5, &spec).unwrap_err(),
            CoreError::Config(paraconv_pim::ConfigError::NoSurvivingPes)
        ));
    }

    #[test]
    fn zero_iterations_surface_as_core_error() {
        let runner = ParaConv::new(PimConfig::neurocube(4).unwrap());
        assert!(matches!(
            runner.run(&examples::motivational(), 0).unwrap_err(),
            CoreError::Sched(_)
        ));
    }
}
