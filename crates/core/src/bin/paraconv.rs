//! The `paraconv` command-line interface.
//!
//! ```console
//! $ paraconv list
//! $ paraconv show cat
//! $ paraconv dot flower > flower.dot
//! $ paraconv run protein --pes 64 --iters 100
//! $ paraconv compare speech-1 --pes 32
//! $ paraconv gantt cat --pes 4 --window 40
//! $ paraconv audit cat --pes 16 --iters 100
//! ```

use std::process::ExitCode;

use paraconv::graph::TaskGraph;
use paraconv::pim::PimConfig;
use paraconv::synth::benchmarks;
use paraconv::ParaConv;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  paraconv list                         list the benchmark suite
  paraconv show <benchmark>             structural summary of a benchmark
  paraconv dot <benchmark>              Graphviz DOT on stdout
  paraconv run <benchmark> [opts]       schedule + simulate with Para-CONV
  paraconv compare <benchmark> [opts]   Para-CONV vs the SPARTA baseline
  paraconv gantt <benchmark> [opts]     ASCII Gantt of the Para-CONV plan
  paraconv audit <benchmark> [opts]     audit both schedulers' plans

options:
  --pes <n>      processing engines (default 16)
  --iters <n>    iterations (default 50)
  --window <n>   gantt window length in time units (default 60)";

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "list" => {
            println!("{:<16} {:>8} {:>7}", "benchmark", "vertices", "edges");
            for b in benchmarks::all() {
                println!("{:<16} {:>8} {:>7}", b.name(), b.vertices(), b.edges());
            }
            Ok(())
        }
        "show" => {
            let graph = load(args.get(1))?;
            let s = graph.summary();
            println!("name:            {}", s.name);
            println!(
                "vertices:        {} ({} conv-like, {} pool)",
                s.vertices, s.conv_ops, s.pool_ops
            );
            println!("edges (IPRs):    {}", s.edges);
            println!("depth:           {}", s.depth);
            println!("peak width:      {}", s.max_width);
            println!("serial work:     {}", s.total_exec_time);
            println!("critical path:   {}", s.critical_path);
            Ok(())
        }
        "dot" => {
            let graph = load(args.get(1))?;
            print!("{}", graph.to_dot());
            Ok(())
        }
        "run" => {
            let graph = load(args.get(1))?;
            let (pes, iters, _) = options(args)?;
            let runner = ParaConv::new(config(pes)?);
            let result = runner.run(&graph, iters).map_err(|e| e.to_string())?;
            println!(
                "kernel p = {} ({} iters/kernel), R_max = {}, prologue = {}",
                result.outcome.period(),
                result.outcome.unroll(),
                result.outcome.rmax(),
                result.outcome.prologue_time()
            );
            println!(
                "{} of {} IPRs cached; case histogram (1..6): {:?}",
                result.outcome.cached_iprs(),
                graph.edge_count(),
                result.outcome.analysis.case_histogram()
            );
            println!("{}", result.report);
            Ok(())
        }
        "compare" => {
            let graph = load(args.get(1))?;
            let (pes, iters, _) = options(args)?;
            let runner = ParaConv::new(config(pes)?);
            let cmp = runner.compare(&graph, iters).map_err(|e| e.to_string())?;
            println!(
                "Para-CONV: {}   SPARTA: {}   IMP: {:.2}%   speedup: {:.2}x",
                cmp.paraconv.report.total_time,
                cmp.sparta.report.total_time,
                cmp.improvement_percent(),
                cmp.speedup()
            );
            Ok(())
        }
        "gantt" => {
            let graph = load(args.get(1))?;
            let (pes, iters, window) = options(args)?;
            let cfg = config(pes)?;
            let result = ParaConv::new(cfg.clone())
                .run(&graph, iters)
                .map_err(|e| e.to_string())?;
            print!(
                "{}",
                paraconv::pim::gantt(&graph, &result.outcome.plan, &cfg, 0, window)
            );
            Ok(())
        }
        "audit" => {
            let graph = load(args.get(1))?;
            let (pes, iters, _) = options(args)?;
            let cfg = config(pes)?;
            let runner = ParaConv::new(cfg.clone());
            let result = runner.run(&graph, iters).map_err(|e| e.to_string())?;
            let para = paraconv::pim::audit(&graph, &result.outcome.plan, &cfg, &result.report)
                .map_err(|e| format!("Para-CONV plan failed audit: {e}"))?;
            println!("Para-CONV plan: PASS");
            println!("{para}");
            let baseline = runner
                .run_baseline(&graph, iters)
                .map_err(|e| e.to_string())?;
            let sparta =
                paraconv::pim::audit(&graph, &baseline.outcome.plan, &cfg, &baseline.report)
                    .map_err(|e| format!("SPARTA plan failed audit: {e}"))?;
            println!();
            println!("SPARTA plan: PASS");
            println!("{sparta}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load(name: Option<&String>) -> Result<TaskGraph, String> {
    let name = name.ok_or("missing benchmark name")?;
    let bench = benchmarks::by_name(name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `paraconv list`)"))?;
    bench.graph().map_err(|e| e.to_string())
}

fn config(pes: usize) -> Result<PimConfig, String> {
    PimConfig::neurocube(pes).map_err(|e| e.to_string())
}

/// Parses `--pes`, `--iters` and `--window` with defaults.
fn options(args: &[String]) -> Result<(usize, u64, u64), String> {
    let mut pes = 16usize;
    let mut iters = 50u64;
    let mut window = 60u64;
    let mut i = 2;
    while i < args.len() {
        let flag = &args[i];
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--pes" => pes = value.parse().map_err(|_| format!("bad --pes `{value}`"))?,
            "--iters" => {
                iters = value
                    .parse()
                    .map_err(|_| format!("bad --iters `{value}`"))?
            }
            "--window" => {
                window = value
                    .parse()
                    .map_err(|_| format!("bad --window `{value}`"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok((pes, iters, window))
}
